"""Figure 12 (Appendix B.3): normalized throughput of TPC-DS queries
across batch sizes, single-tuple execution as baseline.

Paper shapes: single-tuple processing often wins (simpler maintenance
code); four queries gain up to ~5x from batch filtering/projection.
Nothing reaches the 1,000x-range gains of the TPC-H right panel.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, normalized_sweep
from repro.workloads import TPCDS_QUERIES

from benchmarks.conftest import BATCH_SIZES, LOCAL_SF


def _sweep(name: str) -> dict[int, float]:
    return normalized_sweep(
        TPCDS_QUERIES[name],
        batch_sizes=BATCH_SIZES,
        workload="tpcds",
        sf=LOCAL_SF,
        max_batches=80,
    )


@pytest.mark.paper_experiment("fig12")
@pytest.mark.parametrize("name", sorted(TPCDS_QUERIES))
def test_fig12_tpcds_normalized_throughput(benchmark, name):
    series = benchmark.pedantic(_sweep, args=(name,), rounds=1, iterations=1)
    rows = [(name, bs, round(v, 3)) for bs, v in sorted(series.items())]
    print()
    print(
        format_table(
            ("query", "batch size", "normalized throughput"),
            rows,
            title=f"Figure 12 — {name} (baseline: single-tuple = 1.0)",
        )
    )
    assert all(v > 0 for v in series.values())


@pytest.mark.paper_experiment("fig12")
def test_fig12_gains_are_moderate():
    """TPC-DS batching gains stay moderate (paper: up to ~5x), far
    from the TPC-H log-panel explosions."""
    peaks = {}
    for name in sorted(TPCDS_QUERIES):
        peaks[name] = max(_sweep(name).values())
    print()
    print(
        format_table(
            ("query", "peak normalized throughput"),
            [(n, round(p, 2)) for n, p in sorted(peaks.items())],
            title="Figure 12 — peak batching gains per TPC-DS query",
        )
    )
    # Some queries benefit from batching...
    assert any(p > 1.2 for p in peaks.values())
    # ...but for a good share single-tuple remains competitive.
    competitive = sum(1 for p in peaks.values() if p < 2.0)
    assert competitive >= len(peaks) // 3, peaks
