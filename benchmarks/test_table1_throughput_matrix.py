"""Table 1: the full strategy x batch-size x query throughput matrix.

The paper's Table 1 reports tuples/second for re-evaluation and
classical IVM (PostgreSQL) and recursive IVM (generated C++, plus the
Single column) for all 22 TPC-H and 13 TPC-DS queries at batch sizes
1-100,000.  Headline: "in all but four cases, recursive view
maintenance outperforms classical view maintenance by orders of
magnitude, even when processing large batches".

The full matrix at paper batch sizes takes hours in Python, so the
default bench covers a representative query subset at scaled batch
sizes; set ``REPRO_TABLE1_FULL=1`` to sweep every query.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import format_table, strategy_matrix
from repro.workloads import TPCDS_QUERIES, TPCH_QUERIES

from benchmarks.conftest import LOCAL_SF

BATCHES = (1, 10, 100, 1_000)

#: representative rows: cheap flat query, join pipelines, nested aggs
DEFAULT_TPCH = ("Q1", "Q3", "Q4", "Q6", "Q12", "Q14", "Q17", "Q22")
DEFAULT_TPCDS = ("DS3", "DS42", "DS52")


def _selected():
    if os.environ.get("REPRO_TABLE1_FULL"):
        tpch = sorted(TPCH_QUERIES)
        tpcds = sorted(TPCDS_QUERIES)
    else:
        tpch = [q for q in DEFAULT_TPCH if q in TPCH_QUERIES]
        tpcds = [q for q in DEFAULT_TPCDS if q in TPCDS_QUERIES]
    return [("tpch", q) for q in tpch] + [("tpcds", q) for q in tpcds]


@pytest.mark.paper_experiment("table1")
@pytest.mark.parametrize("workload,name", _selected())
def test_table1_row(benchmark, workload, name):
    """One Table 1 row-group: three strategies x batch sizes."""
    spec = (TPCH_QUERIES if workload == "tpch" else TPCDS_QUERIES)[name]

    def run():
        # Warm store (DESIGN.md §1): the paper's numbers reflect base
        # tables far larger than one batch; classical IVM's delta joins
        # and re-evaluation then pay realistic full-table costs.
        return strategy_matrix(
            spec,
            batch_sizes=BATCHES,
            strategies=("reeval", "civm", "rivm-batch"),
            workload=workload,
            sf=LOCAL_SF,
            max_batches=60,
            warm_fraction=0.6,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (r.query, r.strategy, r.batch_label, round(r.throughput))
        for r in results
    ]
    print()
    print(
        format_table(
            ("query", "strategy", "batch", "tuples/s"),
            rows,
            title=f"Table 1 — {name} throughput by strategy and batch size",
        )
    )

    by = {(r.strategy, r.batch_size): r for r in results}
    # Recursive IVM must dominate classical IVM for every batch size
    # (the paper's exceptions are re-evaluation-bound queries like
    # Q11/Q15, which the default subset deliberately leaves out of the
    # strict assertion).
    lenient = name in ("Q11", "Q15")
    for bs in BATCHES:
        rivm = by[("rivm-batch", bs)].virtual_throughput
        civm = by[("civm", bs)].virtual_throughput
        if not lenient:
            assert rivm >= civm, (
                f"{name} batch {bs}: RIVM ({rivm:.3g}) below classical "
                f"IVM ({civm:.3g})"
            )


@pytest.mark.paper_experiment("table1")
def test_table1_orders_of_magnitude_summary():
    """Across the selected queries, median RIVM/classical-IVM gain at
    batch 100 is at least one order of magnitude (paper: 2-4 orders)."""
    gains = []
    for workload, name in _selected():
        spec = (TPCH_QUERIES if workload == "tpch" else TPCDS_QUERIES)[name]
        results = strategy_matrix(
            spec,
            batch_sizes=(100,),
            strategies=("civm", "rivm-batch"),
            workload=workload,
            sf=LOCAL_SF,
            include_single=False,
            max_batches=40,
            warm_fraction=0.6,
        )
        by = {r.strategy: r for r in results}
        gains.append(
            (
                name,
                by["rivm-batch"].virtual_throughput
                / by["civm"].virtual_throughput,
            )
        )
    print()
    print(
        format_table(
            ("query", "RIVM / classical-IVM gain at batch 100"),
            [(n, round(g, 1)) for n, g in gains],
            title="Table 1 summary — recursive vs classical IVM",
        )
    )
    ordered = sorted(g for _, g in gains)
    median = ordered[len(ordered) // 2]
    assert median > 10.0, f"median gain only {median:.1f}x"
