"""Design-choice ablations (DESIGN.md §8) — benches beyond the paper's
figures that isolate each of the system's key mechanisms.

* domain extraction (Section 3.2.2): without it, nested-aggregate
  deltas use the recompute-twice rule;
* batch pre-aggregation (Section 3.3): the mechanism behind the
  Figure 7 right panel;
* index specialization (Section 5.2.1): "the benefit of creating
  these indexes greatly outperforms their maintenance overheads".

Each ablation also asserts result equality between the ON and OFF
variants, so the knobs are semantics-preserving by construction.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    domain_extraction_ablation,
    format_table,
    preaggregation_ablation,
    specialization_ablation,
)
from repro.workloads import MICRO_QUERIES, TPCH_QUERIES

from benchmarks.conftest import LOCAL_SF


@pytest.mark.paper_experiment("ablation")
@pytest.mark.parametrize(
    "name,floor",
    [("M2", 1.5), ("M3", 1.2)],
)
def test_ablation_domain_extraction_micro(benchmark, name, floor):
    """Unguarded correlated nested aggregates (the paper's Examples
    3.1/3.2): domain-restricted deltas beat the recompute-twice rule.
    Run warm — the advantage is |batch domain| vs |state|."""

    def run():
        return domain_extraction_ablation(
            MICRO_QUERIES[name],
            batch_size=20,
            workload="micro",
            sf=0.3,
            max_batches=6,
            warm_fraction=0.9,
        )

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("query", "knob", "ON vinstr", "OFF vinstr", "speedup"),
            [
                (
                    r.query,
                    r.knob,
                    r.on_virtual_instructions,
                    r.off_virtual_instructions,
                    round(r.virtual_speedup, 2),
                )
            ],
            title=f"Ablation — domain extraction on {name}",
        )
    )
    assert r.virtual_speedup > floor, (
        f"{name}: domain extraction did not pay off ({r.virtual_speedup:.2f}x)"
    )


@pytest.mark.paper_experiment("ablation")
@pytest.mark.parametrize("name", ["Q17", "Q22"])
def test_ablation_domain_extraction_tpch_not_harmful(name):
    """On TPC-H nested-aggregate queries the highly selective static
    predicates (e.g. Q17's brand/container) already prune the outer
    scan before the nested aggregate is reached, masking the domain
    advantage at bench scale; the revised rule must at least not
    regress materially."""
    r = domain_extraction_ablation(
        TPCH_QUERIES[name], batch_size=50, sf=LOCAL_SF, max_batches=20,
        warm_fraction=0.5,
    )
    assert r.virtual_speedup > 0.5, (
        f"{name}: domain extraction regressed {1/r.virtual_speedup:.1f}x"
    )


@pytest.mark.paper_experiment("ablation")
def test_ablation_batch_preaggregation_pays_off(benchmark):
    """Filtering/join-pipeline cases: pre-aggregation wins.

    Q19's static predicates prune the batch during pre-aggregation;
    M1's batch collapses onto the small join-key domain.  (The paper's
    Q20/Q22-style multi-thousand-x gains rely on per-tuple generated
    code with no cross-tuple sharing; our reference evaluator's
    statement-level CSE already harvests the key-dedup saving, so the
    on/off gap here is the *residual* benefit — see EXPERIMENTS.md.)
    """

    def run():
        q19 = preaggregation_ablation(
            TPCH_QUERIES["Q19"], batch_size=500, sf=LOCAL_SF, max_batches=12
        )
        m1 = preaggregation_ablation(
            MICRO_QUERIES["M1"], batch_size=500, workload="micro",
            sf=0.5, max_batches=10,
        )
        return q19, m1

    q19, m1 = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("query", "ON vinstr", "OFF vinstr", "speedup"),
            [
                (
                    r.query,
                    r.on_virtual_instructions,
                    r.off_virtual_instructions,
                    round(r.virtual_speedup, 2),
                )
                for r in (q19, m1)
            ],
            title="Ablation — batch pre-aggregation",
        )
    )
    assert q19.virtual_speedup > 1.1, "Q19: pre-aggregation did not pay off"
    assert m1.virtual_speedup > 1.1, "M1: pre-aggregation did not pay off"


@pytest.mark.paper_experiment("ablation")
@pytest.mark.parametrize("name", ["Q4", "Q22"])
def test_ablation_preaggregation_overhead_case(name):
    """Key-preserving queries (Section 3.3): pre-aggregation cannot
    collapse the batch, so the paper observes pure materialization
    overhead.  The overhead must stay bounded (no large regression) and
    no large win should appear out of nowhere."""
    r = preaggregation_ablation(
        TPCH_QUERIES[name], batch_size=500, sf=LOCAL_SF, max_batches=12
    )
    assert 0.5 < r.virtual_speedup < 5.0, (
        f"{name}: unexpected pre-aggregation effect "
        f"({r.virtual_speedup:.2f}x)"
    )


@pytest.mark.paper_experiment("ablation")
@pytest.mark.parametrize("name", ["Q3", "Q10"])
def test_ablation_index_specialization(benchmark, name):
    """Slice-heavy queries: automatic non-unique indexes beat
    full-scan fallback."""

    def run():
        return specialization_ablation(
            TPCH_QUERIES[name], batch_size=200, sf=LOCAL_SF, max_batches=15
        )

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("query", "ON vinstr", "OFF vinstr", "speedup"),
            [
                (
                    r.query,
                    r.on_virtual_instructions,
                    r.off_virtual_instructions,
                    round(r.virtual_speedup, 2),
                )
            ],
            title=f"Ablation — index specialization on {name}",
        )
    )
    assert r.virtual_speedup >= 1.0, f"{name}: indexes made things worse"
