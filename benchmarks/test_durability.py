"""Durability cost model: what the WAL charges ingest, and what
recovery pays per logged batch.

Two sweeps, both written to ``BENCH_wal.json`` at the repo root:

* **ingest throughput** — the same randomized stream into a plain
  ``ViewService`` (no WAL) and a ``DurableViewService`` under each
  fsync policy.  ``off`` shows the pure framing+encode cost,
  ``interval`` the default deployment point, ``always`` the full
  fsync-per-ack price (dominated by device sync latency, so expect an
  order of magnitude, not percents).
* **recovery time vs tail length** — re-opening a WAL directory whose
  checkpoint covers nothing, so recovery replays the whole tail;
  recovery time should scale roughly linearly in replayed batches.

Shapes are asserted (recovery is correct and linear-ish; WAL-off
throughput is within a sane factor of no-WAL), absolute numbers are
environment-stamped and reported.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.durability import DurableViewService
from repro.harness import bench_environment, format_table
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b")}
SQL = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"

N_BATCHES = 600
ROWS_PER_BATCH = 20
TAIL_LENGTHS = (100, 400, 800)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_wal.json"


def _stream(n_batches: int) -> list[GMR]:
    rng = random.Random(1789)
    return [
        GMR({
            (rng.randint(1, 500), rng.randint(1, 10_000)): 1
            for _ in range(ROWS_PER_BATCH)
        })
        for _ in range(n_batches)
    ]


def _ingest(service, batches) -> float:
    start = time.perf_counter()
    for batch in batches:
        service.on_batch("R", GMR(dict(batch.data)))
    service.drain()
    return time.perf_counter() - start


@pytest.mark.paper_experiment("durability: WAL fsync policy cost + recovery")
def test_wal_throughput_and_recovery(tmp_path):
    batches = _stream(N_BATCHES)
    n_tuples = N_BATCHES * ROWS_PER_BATCH
    payload = {
        "bench": "wal_durability",
        "unit": "tuples/s ingest; seconds recovery",
        "n_batches": N_BATCHES,
        "rows_per_batch": ROWS_PER_BATCH,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "ingest": {},
        "recovery": [],
    }

    # -- ingest sweep ---------------------------------------------------
    rows = []
    plain = ViewService(catalog=CATALOG)
    plain.create_view("cnt", SQL, backend="rivm-batch")
    base_s = _ingest(plain, batches)
    plain.drop_view("cnt")
    payload["ingest"]["no-wal"] = {
        "seconds": base_s, "tuples_per_s": n_tuples / base_s,
    }
    rows.append(("no-wal", round(base_s, 3),
                 round(n_tuples / base_s), "1.000"))

    snapshots = {}
    for policy in ("off", "interval", "always"):
        wal_dir = tmp_path / f"ingest-{policy}"
        svc = DurableViewService(
            str(wal_dir), catalog=CATALOG, checkpoint_every=0,
            fsync=policy,
        )
        svc.create_view("cnt", SQL, backend="rivm-batch")
        elapsed = _ingest(svc, batches)
        snapshots[policy] = svc.snapshot("cnt")
        svc.close()
        payload["ingest"][f"wal-{policy}"] = {
            "seconds": elapsed,
            "tuples_per_s": n_tuples / elapsed,
            "slowdown_vs_no_wal": elapsed / base_s,
        }
        rows.append((f"wal-{policy}", round(elapsed, 3),
                     round(n_tuples / elapsed),
                     f"{elapsed / base_s:.3f}"))

    # Every mode computes the same view (the WAL is pure overhead).
    assert snapshots["off"] == snapshots["always"] == snapshots["interval"]

    # -- recovery sweep -------------------------------------------------
    recovery_rows = []
    per_batch = []
    for tail in TAIL_LENGTHS:
        wal_dir = str(tmp_path / f"recover-{tail}")
        svc = DurableViewService(str(wal_dir), catalog=CATALOG,
                                 checkpoint_every=0, fsync="off")
        svc.create_view("cnt", SQL, backend="rivm-batch")
        for batch in _stream(tail):
            svc.on_batch("R", batch)
        svc.drain()
        expected = svc.snapshot("cnt")
        seq = svc.seq
        svc.close()

        start = time.perf_counter()
        recovered = DurableViewService(str(wal_dir), catalog=CATALOG,
                                       checkpoint_every=0, fsync="off")
        elapsed = time.perf_counter() - start
        assert recovered.seq == seq
        assert recovered.recovered["replayed"] == tail
        assert recovered.snapshot("cnt") == expected
        recovered.close()
        payload["recovery"].append({
            "tail_batches": tail,
            "seconds": elapsed,
            "ms_per_batch": 1000 * elapsed / tail,
        })
        per_batch.append(elapsed / tail)
        recovery_rows.append((tail, round(elapsed, 3),
                              round(1000 * elapsed / tail, 3)))

    # Replay cost per batch should be flat-ish (linear total): the
    # longest tail must not pay more than 5x the shortest per batch.
    assert max(per_batch) <= 5 * min(per_batch), per_batch
    # Framing+encode without syncing must stay in the same decade as
    # no WAL at all (~2x here; 10x would mean the encode path broke).
    assert payload["ingest"]["wal-off"]["slowdown_vs_no_wal"] <= 10

    print()
    print(format_table(
        ("mode", "seconds", "tuples/s", "vs no-wal"),
        rows,
        title=f"WAL ingest cost ({N_BATCHES} batches x "
              f"{ROWS_PER_BATCH} rows)",
    ))
    print(format_table(
        ("tail (batches)", "recovery (s)", "ms/batch"),
        recovery_rows,
        title="recovery time vs WAL tail length",
    ))
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
