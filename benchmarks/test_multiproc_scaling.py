"""Process-parallel scaling: multiproc workers vs one compiled process.

Throughput of the `multiproc` backend at 1/2/4 workers on TPC-H
Q1/Q6/Q17, on **both data planes** (``pickle``: whole GMRs pickled
through pipes; ``shm``: columnar blocks in shared memory, descriptors
through pipes), against the single-process compiled engine
(`rivm-batch`) on the identical stream.  Results are asserted identical
across every configuration — the backend is a distribution of the same
maintenance program, not an approximation.

Two throughputs are reported per configuration:

* ``wall`` — measured wall-clock.  Meaningful only when the machine
  has at least ``workers`` free cores; CI boxes usually don't.
* ``scaleout`` — the critical-path estimate from
  :class:`~repro.parallel.ParallelMetrics`: wall time minus the
  oversubscription penalty of each distributed block, computed from
  the workers' self-reported per-block CPU times on their real
  partitions.  This is the number a genuinely parallel deployment
  would see, and the scaling assertion below uses it (the repo's
  precedent: virtual instructions for noise-free ratios, the simulated
  cluster for modeled latency).  Coordinator-side data movement counts
  *fully* in both numbers — which is exactly what the shm plane
  attacks.

The ROADMAP targets (Q1 scaleout >= 3.2x at 4 workers; 4-worker wall
throughput at least single-process on Q1/Q6) are recorded in the
payload with ``met`` flags; the wall-parity target is hard-asserted
only where it is physically observable (cpu_count >= 4 — on a 1-core
runner all four workers time-share one core, so wall clock measures
the OS scheduler, not the data plane).

Measurements land in ``BENCH_multiproc.json`` at the repo root so the
scale-out trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.exec import create_backend
from repro.harness import (
    bench_environment,
    format_table,
    prepare_stream,
    run_engine,
)
from repro.workloads import TPCH_QUERIES

WORKER_COUNTS = (1, 2, 4)
DATA_PLANES = ("pickle", "shm")

#: per-query stream parameters: Q17's distributed plan is repartition-
#: heavy (nested aggregate over co-partitioned views), so its stream is
#: kept small to bound bench runtime on 1-core boxes
PARAMS = {
    "Q1": dict(batch_size=4000, sf=0.015, max_batches=4),
    "Q6": dict(batch_size=4000, sf=0.015, max_batches=4),
    "Q17": dict(batch_size=300, sf=0.001, max_batches=3),
}

#: ROADMAP targets for the shm plane at 4 workers
TARGET_Q1_SCALEOUT = 3.2
WALL_PARITY_QUERIES = ("Q1", "Q6")

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiproc.json"


@pytest.mark.paper_experiment("process-parallel scale-out")
def test_multiproc_scaling_vs_single_process():
    rows = []
    payload = {
        "bench": "multiproc_scaling",
        "unit": "tuples_per_second",
        "throughput_semantics": (
            "scaleout = critical-path estimate (wall minus per-block "
            "oversubscription penalty from worker-reported CPU times); "
            "wall = raw wall clock, core-count limited"
        ),
        "worker_counts": list(WORKER_COUNTS),
        "data_planes": list(DATA_PLANES),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "queries": {},
    }
    best_shm_speedup = 0.0
    for name, params in PARAMS.items():
        prepared = prepare_stream(
            TPCH_QUERIES[name],
            params["batch_size"],
            sf=params["sf"],
            max_batches=params["max_batches"],
        )
        n = prepared.n_tuples
        baseline = run_engine(prepared, "rivm-batch")
        entry = {
            "params": params,
            "n_tuples": n,
            "single_process_tps": baseline.throughput,
            "planes": {},
        }
        reference = baseline.result
        for plane in DATA_PLANES:
            plane_entry = {"workers": {}}
            scaleout_at = {}
            wall_at = {}
            for w in WORKER_COUNTS:
                backend = create_backend(
                    "multiproc", prepared.spec, n_workers=w,
                    data_plane=plane,
                )
                try:
                    backend.initialize(prepared.fresh_static())
                    for relation, batch in prepared.batches:
                        backend.on_batch(relation, batch)
                    assert backend.snapshot() == reference, (
                        f"{name}@{w} workers ({plane}) diverged from the "
                        "single-process engine"
                    )
                    m = backend.metrics
                    wall_at[w] = n / m.total_wall_s
                    scaleout_at[w] = n / m.total_scaleout_s
                    plane_entry["workers"][str(w)] = {
                        "wall_tps": wall_at[w],
                        "scaleout_tps": scaleout_at[w],
                        "balance": m.balance(),
                    }
                finally:
                    backend.close()
            speedup = scaleout_at[4] / scaleout_at[1]
            plane_entry["scaleout_speedup_4w_vs_1w"] = speedup
            plane_entry["wall_tps_4w_over_single"] = (
                wall_at[4] / baseline.throughput
            )
            entry["planes"][plane] = plane_entry
            if plane == "shm":
                best_shm_speedup = max(best_shm_speedup, speedup)
            rows.append(
                (
                    name,
                    plane,
                    f"{baseline.throughput:,.0f}",
                    *(f"{scaleout_at[w]:,.0f}" for w in WORKER_COUNTS),
                    f"{speedup:.2f}x",
                    f"{wall_at[4]:,.0f}",
                )
            )
        payload["queries"][name] = entry

    shm_q1 = payload["queries"]["Q1"]["planes"]["shm"]
    targets = {
        "q1_shm_scaleout_speedup_4w": {
            "target": TARGET_Q1_SCALEOUT,
            "achieved": shm_q1["scaleout_speedup_4w_vs_1w"],
            "met": shm_q1["scaleout_speedup_4w_vs_1w"] >= TARGET_Q1_SCALEOUT,
        },
        "wall_parity_4w": {
            "target": "wall_tps(4w, shm) >= single_process_tps on Q1/Q6",
            "observable": (os.cpu_count() or 1) >= 4,
            "achieved": {
                q: payload["queries"][q]["planes"]["shm"][
                    "wall_tps_4w_over_single"
                ]
                for q in WALL_PARITY_QUERIES
            },
        },
    }
    payload["roadmap_targets"] = targets
    payload["best_shm_scaleout_speedup_4w_vs_1w"] = best_shm_speedup
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        format_table(
            ("query", "plane", "1-proc t/s", "w1 t/s", "w2 t/s", "w4 t/s",
             "4w/1w", "w4 wall t/s"),
            rows,
            title="process-parallel scale-out (critical-path throughput)",
        )
    )

    # Scaling must come from the parallelism, not the plane: the
    # critical-path speedup is CPU-count independent, so it is asserted
    # everywhere.
    assert best_shm_speedup > 1.0, (
        "4 shm workers were no faster than 1 on every query "
        f"(best {best_shm_speedup:.2f}x)"
    )
    assert targets["q1_shm_scaleout_speedup_4w"]["met"], (
        "ROADMAP target missed: Q1 shm scaleout speedup at 4 workers is "
        f"{shm_q1['scaleout_speedup_4w_vs_1w']:.2f}x < "
        f"{TARGET_Q1_SCALEOUT}x"
    )
    # The shm plane exists to beat pickle where data movement dominates:
    # compare like against like at 4 workers on the big-batch queries.
    for q in WALL_PARITY_QUERIES:
        shm_wall = payload["queries"][q]["planes"]["shm"]["workers"]["4"][
            "wall_tps"
        ]
        pickle_wall = payload["queries"][q]["planes"]["pickle"]["workers"][
            "4"
        ]["wall_tps"]
        assert shm_wall >= pickle_wall * 0.9, (
            f"{q}: shm wall throughput at 4 workers regressed vs pickle "
            f"({shm_wall:,.0f} vs {pickle_wall:,.0f} t/s)"
        )
    # Wall parity with single-process needs real cores to be visible.
    if (os.cpu_count() or 1) >= 4:
        for q in WALL_PARITY_QUERIES:
            ratio = payload["queries"][q]["planes"]["shm"][
                "wall_tps_4w_over_single"
            ]
            assert ratio >= 1.0, (
                f"{q}: 4-worker shm wall throughput below single-process "
                f"({ratio:.2f}x)"
            )
