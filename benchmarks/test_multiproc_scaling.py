"""Process-parallel scaling: multiproc workers vs one compiled process.

Throughput of the `multiproc` backend at 1/2/4 workers on TPC-H
Q1/Q6/Q17, against the single-process compiled engine (`rivm-batch`)
on the identical stream.  Results are asserted identical across every
configuration — the backend is a distribution of the same maintenance
program, not an approximation.

Two throughputs are reported per configuration:

* ``wall`` — measured wall-clock.  Meaningful only when the machine
  has at least ``workers`` free cores; CI boxes usually don't.
* ``scaleout`` — the critical-path estimate from
  :class:`~repro.parallel.ParallelMetrics`: wall time minus the
  oversubscription penalty of each distributed block, computed from
  the workers' self-reported per-block CPU times on their real
  partitions.  This is the number a genuinely parallel deployment
  would see, and the scaling assertion below uses it (the repo's
  precedent: virtual instructions for noise-free ratios, the simulated
  cluster for modeled latency).

Measurements land in ``BENCH_multiproc.json`` at the repo root so the
scale-out trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.exec import create_backend
from repro.harness import format_table, prepare_stream, run_engine
from repro.workloads import TPCH_QUERIES

WORKER_COUNTS = (1, 2, 4)

#: per-query stream parameters: Q17's distributed plan is repartition-
#: heavy (nested aggregate over co-partitioned views), so its stream is
#: kept small to bound bench runtime on 1-core boxes
PARAMS = {
    "Q1": dict(batch_size=4000, sf=0.015, max_batches=4),
    "Q6": dict(batch_size=4000, sf=0.015, max_batches=4),
    "Q17": dict(batch_size=300, sf=0.001, max_batches=3),
}

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiproc.json"


@pytest.mark.paper_experiment("process-parallel scale-out")
def test_multiproc_scaling_vs_single_process():
    rows = []
    payload = {
        "bench": "multiproc_scaling",
        "unit": "tuples_per_second",
        "throughput_semantics": (
            "scaleout = critical-path estimate (wall minus per-block "
            "oversubscription penalty from worker-reported CPU times); "
            "wall = raw wall clock, core-count limited"
        ),
        "worker_counts": list(WORKER_COUNTS),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "queries": {},
    }
    best_speedup = 0.0
    for name, params in PARAMS.items():
        prepared = prepare_stream(
            TPCH_QUERIES[name],
            params["batch_size"],
            sf=params["sf"],
            max_batches=params["max_batches"],
        )
        n = prepared.n_tuples
        baseline = run_engine(prepared, "rivm-batch")
        entry = {
            "params": params,
            "n_tuples": n,
            "single_process_tps": baseline.throughput,
            "workers": {},
        }
        reference = baseline.result
        scaleout_at = {}
        for w in WORKER_COUNTS:
            backend = create_backend(
                "multiproc", prepared.spec, n_workers=w
            )
            try:
                backend.initialize(prepared.fresh_static())
                for relation, batch in prepared.batches:
                    backend.on_batch(relation, batch)
                assert backend.snapshot() == reference, (
                    f"{name}@{w} workers diverged from the single-process "
                    "engine"
                )
                m = backend.metrics
                wall_tps = n / m.total_wall_s
                scaleout_tps = n / m.total_scaleout_s
                scaleout_at[w] = scaleout_tps
                entry["workers"][str(w)] = {
                    "wall_tps": wall_tps,
                    "scaleout_tps": scaleout_tps,
                    "balance": m.balance(),
                }
            finally:
                backend.close()
        speedup = scaleout_at[4] / scaleout_at[1]
        entry["scaleout_speedup_4w_vs_1w"] = speedup
        best_speedup = max(best_speedup, speedup)
        payload["queries"][name] = entry
        rows.append(
            (
                name,
                f"{baseline.throughput:,.0f}",
                *(f"{scaleout_at[w]:,.0f}" for w in WORKER_COUNTS),
                f"{speedup:.2f}x",
            )
        )

    payload["best_scaleout_speedup_4w_vs_1w"] = best_speedup
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        format_table(
            ("query", "1-proc t/s", "w1 t/s", "w2 t/s", "w4 t/s",
             "4w/1w"),
            rows,
            title="process-parallel scale-out (critical-path throughput)",
        )
    )
    assert best_speedup > 1.0, (
        "4 workers were no faster than 1 on every query "
        f"(best {best_speedup:.2f}x)"
    )
