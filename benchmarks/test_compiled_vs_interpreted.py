"""Compile-once pipelines vs interpreted evaluation (the lowering bench).

Per-batch maintenance latency of the recursive IVM engine on TPC-H
Q1/Q6/Q17, with statements executed (a) through closure pipelines
lowered once at engine construction and (b) through the interpreted
reference evaluator.  Both paths run the identical maintenance program
over the identical stream; results are asserted equal, and the compiled
path must be at least as fast per batch.

Measurements land in ``BENCH_compiled.json`` at the repo root so the
performance trajectory of the lowering layer accumulates across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.harness import bench_environment, format_table, prepare_stream, run_engine
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import LOCAL_SF

QUERIES = ("Q1", "Q6", "Q17")
BATCH_SIZE = 100
MAX_BATCHES = 25
#: best-of-N wall-clock; single-core CI boxes are noisy
REPETITIONS = 3
#: the compiled path must be no slower; a small tolerance absorbs
#: scheduler noise without letting a real regression through
NOISE_TOLERANCE = 1.10

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_compiled.json"


def _best_run(prepared, use_compiled: bool):
    best = None
    for _ in range(REPETITIONS):
        outcome = run_engine(prepared, "rivm-batch", use_compiled=use_compiled)
        if best is None or outcome.elapsed_s < best.elapsed_s:
            best = outcome
    return best


@pytest.mark.paper_experiment("compile-once lowering")
def test_compiled_path_not_slower_than_interpreted():
    rows = []
    payload = {
        "bench": "compiled_vs_interpreted",
        "unit": "seconds_per_batch",
        "batch_size": BATCH_SIZE,
        "sf": LOCAL_SF,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "queries": {},
    }
    for name in QUERIES:
        prepared = prepare_stream(
            TPCH_QUERIES[name], BATCH_SIZE, sf=LOCAL_SF,
            max_batches=MAX_BATCHES,
        )
        n_batches = max(1, len(prepared.batches))
        compiled = _best_run(prepared, use_compiled=True)
        interpreted = _best_run(prepared, use_compiled=False)
        assert compiled.result == interpreted.result, (
            f"{name}: lowering changed the maintained view"
        )
        compiled_lat = compiled.elapsed_s / n_batches
        interpreted_lat = interpreted.elapsed_s / n_batches
        speedup = interpreted_lat / compiled_lat if compiled_lat > 0 else 1.0
        payload["queries"][name] = {
            "n_batches": n_batches,
            "compiled_s_per_batch": compiled_lat,
            "interpreted_s_per_batch": interpreted_lat,
            "speedup": speedup,
        }
        rows.append(
            (name, n_batches, f"{interpreted_lat * 1e3:.3f}",
             f"{compiled_lat * 1e3:.3f}", f"{speedup:.2f}x")
        )
        assert compiled_lat <= interpreted_lat * NOISE_TOLERANCE, (
            f"{name}: compiled path slower than interpreted "
            f"({compiled_lat * 1e3:.3f} ms vs {interpreted_lat * 1e3:.3f} ms "
            f"per batch)"
        )

    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        format_table(
            ("query", "batches", "interp ms/batch", "compiled ms/batch",
             "speedup"),
            rows,
            title="compile-once lowering — per-batch latency",
        )
    )
