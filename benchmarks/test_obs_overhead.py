"""Telemetry overhead guardrail: tracing must stay out of the hot path.

Streams TPC-H Q1/Q6/Q17 through a ``ViewService`` (synchronous
``rivm-batch`` views, one trivial subscriber so the publish stage runs)
under three trace sinks:

* **off** — ``Tracer(enabled=False)``: one attribute check per span
  site (the baseline);
* **ring** — the default in-memory ring buffer behind
  ``GET /trace/recent``;
* **ndjson** — ring plus the ``--trace-out`` NDJSON tee.

Runs are interleaved (off/ring/ndjson, repeated) so drift hits every
mode equally, and per-mode *minimums* are compared — the noise-robust
estimator for a CPU-bound loop, since scheduler jitter only ever adds
time.  The guardrail asserted here — ring-mode ingest time within 5%
of off — is the budget ISSUE 8 grants the always-on default; the
NDJSON tee is reported but unasserted (it pays a write+flush per span
by design).  Results land in ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.harness import bench_environment, format_table, prepare_stream
from repro.obs import Tracer
from repro.service import ViewService
from repro.workloads import TPCH_QUERIES

# Streams sized so one run takes a few hundred ms: the per-span cost
# is ~5µs, so short runs drown the signal in scheduler noise and the
# min-of-repeats estimator needs real work to converge on.
PARAMS = {
    "Q1": dict(batch_size=200, sf=0.01, max_batches=120),
    "Q6": dict(batch_size=200, sf=0.01, max_batches=120),
    "Q17": dict(batch_size=100, sf=0.002, max_batches=25),
}

REPEATS = 7

#: the ISSUE 8 budget for the always-on ring sink
RING_BUDGET = 1.05

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _run_once(prepared, tracer: Tracer) -> float:
    """Seconds to ingest the whole prepared stream under one sink."""
    service = ViewService(
        base=prepared.fresh_static(), track_base=False, tracer=tracer
    )
    service.create_view(prepared.spec.name, prepared.spec,
                        backend="rivm-batch")
    sub = service.subscribe(prepared.spec.name, lambda event: None)
    try:
        start = time.perf_counter()
        for relation, batch in prepared.batches:
            service.on_batch(relation, batch)
        elapsed = time.perf_counter() - start
    finally:
        sub.cancel()
        service.drop_view(prepared.spec.name)
    return elapsed


@pytest.mark.paper_experiment("telemetry overhead: trace sinks vs off")
def test_tracing_overhead_within_budget(tmp_path):
    payload = {
        "bench": "obs_overhead",
        "unit": "seconds (best ingest wall time over interleaved runs)",
        "modes": ["off", "ring", "ndjson"],
        "ring_budget": RING_BUDGET,
        "repeats": REPEATS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "queries": {},
    }
    rows = []
    for query, params in PARAMS.items():
        prepared = prepare_stream(TPCH_QUERIES[query], **params)

        def make_sinks():
            return {
                "off": Tracer(enabled=False),
                "ring": Tracer(),
                "ndjson": Tracer(
                    out=str(tmp_path / f"{query}.ndjson")
                ),
            }

        times: dict[str, list[float]] = {"off": [], "ring": [], "ndjson": []}
        _run_once(prepared, Tracer(enabled=False))  # warm caches
        for _ in range(REPEATS):
            sinks = make_sinks()
            for mode, tracer in sinks.items():
                times[mode].append(_run_once(prepared, tracer))
                tracer.close()
        best = {m: min(ts) for m, ts in times.items()}
        ratios = {m: best[m] / best["off"] for m in best}
        payload["queries"][query] = {
            "params": params,
            "n_tuples": prepared.n_tuples,
            "n_batches": len(prepared.batches),
            "best_s": best,
            "median_s": {
                m: statistics.median(ts) for m, ts in times.items()
            },
            "ratio_vs_off": ratios,
        }
        rows.append((
            query,
            len(prepared.batches),
            round(best["off"], 4),
            round(best["ring"], 4),
            round(best["ndjson"], 4),
            f"{ratios['ring']:.3f}",
            f"{ratios['ndjson']:.3f}",
        ))
        assert ratios["ring"] <= RING_BUDGET, (
            f"{query}: ring-buffer tracing cost {ratios['ring']:.3f}x "
            f"the disabled tracer (budget {RING_BUDGET}x)"
        )

    print()
    print(format_table(
        ("query", "batches", "off (s)", "ring (s)", "ndjson (s)",
         "ring/off", "ndjson/off"),
        rows,
        title="trace-sink overhead (best ingest time)",
    ))
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
