"""Figure 11 (Appendix C): strong scaling for 11 more TPC-H queries
(Q1, Q2, Q4, Q8, Q10, Q11, Q12, Q13, Q14, Q19, Q22).

Same protocol as Figure 10, smaller sweep per query.  The common shape
across all panels: latency decreases with workers for the largest
batch size, and larger batches sit above smaller ones at equal scale.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, strong_scaling
from repro.harness.scaling import paper_scale_cost_model
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import DIST_SF

QUERIES = ("Q1", "Q2", "Q4", "Q8", "Q10", "Q11", "Q12", "Q13", "Q14", "Q19", "Q22")
WORKERS = (2, 8, 32)
BATCHES = (500, 2_000)


def _run(name: str):
    return strong_scaling(
        TPCH_QUERIES[name],
        workers=WORKERS,
        batch_sizes=BATCHES,
        sf=DIST_SF,
        max_batches=2,
        cost_model=paper_scale_cost_model(),
    )


@pytest.mark.paper_experiment("fig11")
@pytest.mark.parametrize("name", QUERIES)
def test_fig11_strong_scaling_more_queries(benchmark, name):
    series = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)

    rows = [
        (bs, p.n_workers, round(p.median_latency_s, 4))
        for bs, points in sorted(series.items())
        for p in points
    ]
    print()
    print(
        format_table(
            ("batch size", "workers", "median latency (s)"),
            rows,
            title=f"Figure 11 — strong scaling of {name}",
        )
    )

    big = series[BATCHES[-1]]
    lat = [p.median_latency_s for p in big]
    assert min(lat) < lat[0] * 1.001, f"{name}: latency never improved"

    small_first = series[BATCHES[0]][0].median_latency_s
    big_first = series[BATCHES[-1]][0].median_latency_s
    assert big_first >= small_first, (
        f"{name}: larger batch not costlier at the smallest scale"
    )
