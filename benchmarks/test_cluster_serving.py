"""Sharded serving: scatter/gather router vs one ViewServer.

The cluster tier exists to spread maintenance across shards, so the
number that matters is how throughput moves with the shard count under
identical end-to-end semantics: the same micro join-maintenance
workload is run once against a single :class:`~repro.net.ViewServer`
(`measure_network_throughput` — the ``BENCH_net.json`` shape) and then
against a :class:`~repro.cluster.ClusterRouter` fronting 1, 2, and 4
in-process shard servers (`measure_cluster_throughput`), each at 1 and
4 concurrent producer connections.  Every window ends only when every
merged subscription stream has observed the router's cross-shard
barrier mark, so single-server and sharded elapsed times cover the
same work — ingestion, maintenance, push fan-out, and the barrier.

Every configuration asserts the delivery invariant (deltas accumulated
off the merged streams equal the gathered snapshot); measurements land
in ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.harness import (
    ViewDef,
    bench_environment,
    format_table,
    measure_cluster_throughput,
    measure_network_throughput,
)
from repro.workloads import MICRO_TABLES

#: the served view: R join S on b, grouped — co-partitionable on b, so
#: every shard maintains only its slice (the interesting scaling case).
SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)

PARAMS = dict(
    batch_size=250,
    workload="micro",
    sf=2.0,
    max_batches=48,
    catalog=MICRO_TABLES,
)

SHARD_COUNTS = (1, 2, 4)
CLIENT_COUNTS = (1, 4)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


@pytest.mark.paper_experiment("sharded serving: router scatter/gather scaling")
def test_cluster_serving_scaling():
    defs = [ViewDef("per_b", SQL_PER_B, "rivm-batch")]
    rows = []
    payload = {
        "bench": "cluster_serving",
        "unit": "seconds / tuples-per-second",
        "semantics": (
            "net_<c>c = measure_network_throughput against one "
            "ViewServer with c producer connections (the BENCH_net "
            "baseline shape); s<n>_<c>c = measure_cluster_throughput "
            "against a ClusterRouter fronting n shard servers with c "
            "producer connections posting to the router; every window "
            "includes the cross-shard drain barrier observed on every "
            "merged stream"
        ),
        "backend": "rivm-batch",
        "view": SQL_PER_B,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "configs": {},
    }

    baseline_tuples = None
    for n_clients in CLIENT_COUNTS:
        net = measure_network_throughput(
            defs, n_clients=n_clients, **PARAMS
        )
        assert all(v.consistent for v in net.views), (
            f"net_{n_clients}c: wire deltas diverged from snapshot"
        )
        baseline_tuples = net.n_tuples
        label = f"net_{n_clients}c"
        payload["configs"][label] = {
            "shards": 1,
            "router": False,
            "n_clients": n_clients,
            "elapsed_s": net.elapsed_s,
            "throughput_tuples_s": net.throughput,
            "n_batches": net.n_batches,
            "n_tuples": net.n_tuples,
        }
        rows.append(
            (label, "-", n_clients, round(net.elapsed_s, 4),
             round(net.throughput))
        )

    for n_shards in SHARD_COUNTS:
        for n_clients in CLIENT_COUNTS:
            res = measure_cluster_throughput(
                defs, n_shards=n_shards, n_clients=n_clients, **PARAMS
            )
            assert all(v.consistent for v in res.views), (
                f"{n_shards} shards / {n_clients} clients: merged "
                "deltas diverged from the gathered snapshot"
            )
            assert res.n_tuples == baseline_tuples, (
                f"{n_shards} shards: cluster run streamed a different "
                "workload than the single-server baseline"
            )
            label = f"s{n_shards}_{n_clients}c"
            base = payload["configs"][f"net_{n_clients}c"]
            payload["configs"][label] = {
                "shards": n_shards,
                "router": True,
                "n_clients": n_clients,
                "elapsed_s": res.elapsed_s,
                "throughput_tuples_s": res.throughput,
                "n_batches": res.n_batches,
                "n_tuples": res.n_tuples,
                "placement": res.placement,
                "speedup_vs_net_x": (
                    base["elapsed_s"] / res.elapsed_s
                    if res.elapsed_s > 0 else None
                ),
            }
            rows.append(
                (label, n_shards, n_clients, round(res.elapsed_s, 4),
                 round(res.throughput))
            )

    print()
    print(
        format_table(
            ("config", "shards", "clients", "elapsed (s)", "tuples/s"),
            rows,
            title="sharded serving: single server vs router tier",
        )
    )
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Sanity of the shape, not of absolute numbers (a router over
    # in-process shards on one machine pays scatter overhead before it
    # shows scaling): every config moved the same tuples, nothing
    # diverged (asserted above), and throughputs are positive.
    for config, stats in payload["configs"].items():
        assert stats["throughput_tuples_s"] > 0, config
