"""Shared configuration for the benchmark suite.

Every table and figure of the paper's evaluation has one module here
(see DESIGN.md §7 for the index).  Benchmarks run scaled-down
parameters so the full suite finishes in minutes; the *shapes* of the
paper's results — who wins, by roughly what factor, where crossovers
fall — are asserted, not the absolute numbers (our substrate is a
Python simulator, not the authors' testbed).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated paper-style tables).
"""

from __future__ import annotations

import pytest


#: scaled-down counterparts of the paper's batch-size sweep
BATCH_SIZES = (1, 10, 100, 1_000)

#: scale factor for single-node benchmark streams
LOCAL_SF = 0.0004

#: scale factor for distributed benchmark streams
DIST_SF = 0.002


@pytest.fixture(scope="session")
def batch_sizes():
    return BATCH_SIZES


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_experiment(name): maps a bench to a paper table/figure"
    )


_BENCH_DIR = __file__.rsplit("/", 1)[0]


def pytest_collection_modifyitems(items):
    # Every paper-figure benchmark is heavyweight: the whole directory
    # belongs to the slow tier (tier-1 deselects it via pytest.ini).
    # The hook sees the whole session's items, so scope by path.
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)
