"""Async ingestion: the paper's batch-size tradeoff, split and closed.

The fig7/fig12 sweeps show throughput rising with batch size while
per-update latency falls apart — but a synchronous harness can only
measure the *sum* of ingestion and maintenance.  This bench streams
TPC-H Q1/Q6/Q17 through ``async:rivm-batch`` under three batching
policies (fixed size, max delay, closed-loop adaptive) and reports the
two latencies separately:

* **ingestion** — enqueue wait (producer blocking) and queue residency
  (enqueue until the owning flush completes);
* **maintenance** — the inner engine's ``on_batch`` wall time per
  flush.

Every configuration is differential-tested against the synchronous
``rivm-batch`` run on the identical stream — the wrapper re-times
maintenance, never changes its result.  Measurements land in
``BENCH_async.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.harness import (
    bench_environment,
    format_table,
    measure_ingestion,
    prepare_stream,
    run_engine,
)
from repro.workloads import TPCH_QUERIES

#: producer-side stream chunking: small entries give every policy room
#: to coalesce (or not) according to its own rules
PARAMS = {
    "Q1": dict(batch_size=250, sf=0.004, max_batches=24),
    "Q6": dict(batch_size=250, sf=0.004, max_batches=24),
    "Q17": dict(batch_size=100, sf=0.001, max_batches=10),
}

POLICIES = {
    "fixed": dict(policy="fixed", max_batch=2000),
    "delay": dict(policy="delay", max_delay_s=0.005, max_batch=100_000),
    "adaptive": dict(
        policy="adaptive", target_latency_s=0.003, min_batch=50,
        max_delay_s=0.01,
    ),
}

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"


@pytest.mark.paper_experiment("async ingestion: split latency per policy")
def test_async_ingestion_split_latency():
    rows = []
    payload = {
        "bench": "async_ingestion",
        "unit": "seconds",
        "semantics": (
            "ingestion = enqueue wait (producer blocking) and queue "
            "residency (enqueue -> owning flush complete); maintenance "
            "= inner on_batch wall time per flush; all percentiles "
            "over one stream per (query, policy)"
        ),
        "inner_backend": "rivm-batch",
        "policies": {
            name: {k: v for k, v in opts.items()}
            for name, opts in POLICIES.items()
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "queries": {},
    }
    for query, params in PARAMS.items():
        prepared = prepare_stream(
            TPCH_QUERIES[query],
            params["batch_size"],
            sf=params["sf"],
            max_batches=params["max_batches"],
        )
        reference = run_engine(prepared, "rivm-batch")
        entry = {
            "params": params,
            "n_tuples": prepared.n_tuples,
            "sync_tps": reference.throughput,
            "policies": {},
        }
        for policy_name, options in POLICIES.items():
            result = measure_ingestion(prepared, "rivm-batch", **options)
            assert result.snapshot == reference.result, (
                f"{query}/{policy_name} diverged from the synchronous run"
            )
            summary = result.summary()
            entry["policies"][policy_name] = {
                "throughput_tps": result.throughput,
                "flushes": summary["flushes"],
                "mean_flush_size": summary["mean_flush_size"],
                "ingestion": {
                    "enqueue_wait_s": summary["enqueue_wait_s"],
                    "ingest_delay_s": summary["ingest_delay_s"],
                },
                "maintenance": summary["maintenance_s"],
            }
            enqueue_p50 = summary["enqueue_wait_s"]["p50"]
            maintenance_p50 = summary["maintenance_s"]["p50"]
            assert enqueue_p50 < maintenance_p50, (
                f"{query}/{policy_name}: ingestion (enqueue p50 "
                f"{enqueue_p50:.6f}s) should be decoupled from, and far "
                f"cheaper than, maintenance (p50 {maintenance_p50:.6f}s)"
            )
            rows.append(
                (
                    query,
                    policy_name,
                    summary["flushes"],
                    f"{summary['mean_flush_size']:.0f}",
                    f"{enqueue_p50 * 1e6:.1f}",
                    f"{summary['ingest_delay_s']['p50'] * 1e3:.2f}",
                    f"{maintenance_p50 * 1e3:.2f}",
                    f"{summary['maintenance_s']['p95'] * 1e3:.2f}",
                )
            )
        payload["queries"][query] = entry

    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        format_table(
            ("query", "policy", "flushes", "mean flush",
             "enq p50 (us)", "ingest p50 (ms)", "maint p50 (ms)",
             "maint p95 (ms)"),
            rows,
            title="async ingestion: ingestion vs maintenance latency",
        )
    )
