"""Figure 13 (Appendix C.2): the distributed-optimization ablation on
TPC-H Q3.

The paper stacks the optimizations: O0 naive -> O1 +simplification
rules -> O2 +block fusion -> O3 +CSE/DCE (and finally Spark-level
pipelining, which our synchronous simulator folds into O3).  Headline:
"merging together statements using the block fusion algorithm brings
largest performance boosts and enables scalable execution"; the
simplification rules cut latency ~35% and CSE/DCE ~11% at 400 workers.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, optimization_ablation
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import DIST_SF

WORKERS = (4, 8, 16, 32)


def _run():
    return optimization_ablation(
        TPCH_QUERIES["Q3"],
        workers=WORKERS,
        batch_size=1_000,
        sf=DIST_SF,
        max_batches=2,
    )


@pytest.mark.paper_experiment("fig13")
def test_fig13_optimization_ablation(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for label in ("O0-naive", "O1-simplify", "O2-fusion", "O3-cse-dce"):
        for p in series[label]:
            rows.append((label, p.n_workers, round(p.median_latency_s, 4), p.stages))
    print()
    print(
        format_table(
            ("level", "workers", "median latency (s)", "stages"),
            rows,
            title="Figure 13 — optimization effects on distributed Q3",
        )
    )

    def lat(label):
        return [p.median_latency_s for p in series[label]]

    o0, o1, o2, o3 = lat("O0-naive"), lat("O1-simplify"), lat("O2-fusion"), lat("O3-cse-dce")

    # Monotone improvement at every scale: each level is at least as
    # fast as the previous one.
    for i, n in enumerate(WORKERS):
        assert o1[i] <= o0[i] * 1.001, f"O1 slower than O0 at {n} workers"
        assert o2[i] <= o1[i] * 1.001, f"O2 slower than O1 at {n} workers"
        assert o3[i] <= o2[i] * 1.001, f"O3 slower than O2 at {n} workers"

    # Block fusion is the single largest win (the paper's headline).
    gain_simplify = min(a / b for a, b in zip(o0, o1))
    gain_fusion = max(a / b for a, b in zip(o1, o2))
    gain_cse = max(a / b for a, b in zip(o2, o3))
    assert gain_fusion > 1.5, f"block fusion gain only {gain_fusion:.2f}x"
    assert gain_fusion >= gain_cse, "fusion should dominate CSE/DCE"

    # Stage counts shrink with fusion.
    stages_o1 = series["O1-simplify"][0].stages
    stages_o2 = series["O2-fusion"][0].stages
    assert stages_o2 < stages_o1, "fusion did not reduce stage count"
