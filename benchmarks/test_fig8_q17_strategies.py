"""Figure 8: TPC-H Q17 throughput under three maintenance strategies.

The paper compares re-evaluation in PostgreSQL, classical IVM in
PostgreSQL (with the domain-extraction rewrite), and recursive IVM in
generated C++, across batch sizes plus the specialized single-tuple
engine.  Headline result: recursive IVM beats re-evaluation by
233x-14,181x and classical IVM by 120x-10,659x.

Our substitutes run all three strategies on the same evaluator
(DESIGN.md §1), so the ratios isolate the strategy exactly.  We assert
the ordering re-eval < classical IVM < recursive IVM and an
orders-of-magnitude gap at small batch sizes.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, strategy_matrix
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import BATCH_SIZES, LOCAL_SF


def _matrix():
    # Warm store: the paper's stream has accumulated far more state
    # than one batch when these numbers are taken, so re-evaluation
    # and classical IVM pay realistic full-table costs.
    return strategy_matrix(
        TPCH_QUERIES["Q17"],
        batch_sizes=BATCH_SIZES,
        strategies=("reeval", "civm", "rivm-batch"),
        sf=0.001,
        warm_fraction=0.85,
        max_batches=40,
    )


@pytest.mark.paper_experiment("fig8")
def test_fig8_q17_strategy_comparison(benchmark):
    results = benchmark.pedantic(_matrix, rounds=1, iterations=1)

    rows = [
        (r.strategy, r.batch_label, round(r.throughput), round(1e6 * r.virtual_throughput, 2))
        for r in results
    ]
    print()
    print(
        format_table(
            ("strategy", "batch", "tuples/s", "tuples/Mvinstr"),
            rows,
            title="Figure 8 — TPC-H Q17 view refresh rate by strategy",
        )
    )

    by = {(r.strategy, r.batch_size): r for r in results}

    # Recursive IVM dominates classical IVM at every batch size, and
    # re-evaluation while the batch is small relative to the store.
    # (At the largest bench batch the update is ~1/6 of the scaled
    # store, a regime the paper's 10 GB runs never enter — there batch
    # 100k is ~1/700 of the stream; re-evaluation's amortization
    # winning past that point is the very trend Fig. 8 plots.)
    incremental_regime = [bs for bs in BATCH_SIZES if bs <= 100]
    for bs in BATCH_SIZES:
        rivm = by[("rivm-batch", bs)].virtual_throughput
        civm = by[("civm", bs)].virtual_throughput
        assert rivm > civm, f"batch {bs}: RIVM did not beat classical IVM"
    for bs in incremental_regime:
        rivm = by[("rivm-batch", bs)].virtual_throughput
        reev = by[("reeval", bs)].virtual_throughput
        assert rivm > reev, f"batch {bs}: RIVM did not beat re-evaluation"

    # The RIVM/re-evaluation gap is widest at batch 1 and narrows
    # monotonically as batches grow (re-evaluation amortizes) —
    # the paper's 233x-14,181x spread compressed to simulator scale.
    gaps = [
        by[("rivm-batch", bs)].virtual_throughput
        / by[("reeval", bs)].virtual_throughput
        for bs in BATCH_SIZES
    ]
    assert gaps[0] > 2.0, f"RIVM/re-eval gap only {gaps[0]:.1f}x at batch 1"
    assert all(a >= b for a, b in zip(gaps, gaps[1:])), (
        f"gap did not narrow with batch size: {gaps}"
    )
