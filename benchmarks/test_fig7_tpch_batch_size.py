"""Figure 7: normalized throughput of batched recursive IVM on TPC-H
across batch sizes, with single-tuple execution as the baseline.

The paper's two panels split the queries by effect size:

* left panel (linear scale): for almost half the queries batching is
  at best marginally better than specialized single-tuple processing
  (Q4, Q5, Q9, Q12, Q13, Q16, Q18, Q21 ...); filtering queries gain
  from pre-aggregation (Q3, Q7, Q8, Q10, Q14); Q1 gains from its tiny
  aggregate domain;
* right panel (log scale): Q11, Q15, Q19, Q20, Q22 gain large factors
  — Q20/Q22 by 3+ orders of magnitude in the paper — because batch
  pre-aggregation collapses the update onto a small key domain.

The bench regenerates the normalized series for every TPC-H query and
asserts the headline shapes.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, normalized_sweep
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import BATCH_SIZES, LOCAL_SF

#: the paper's right-panel queries (log scale, large batching gains)
LOG_PANEL = ("Q11", "Q15", "Q19", "Q20", "Q22")

#: queries for which the paper reports batching near or below baseline
MODEST_QUERIES = ("Q4", "Q5", "Q9", "Q12", "Q13", "Q18")

#: sweeps are deterministic (virtual-instruction ratios), so they are
#: computed once per query and shared across this module's tests
_SWEEP_CACHE: dict[str, dict[int, float]] = {}


def _sweep(name: str) -> dict[int, float]:
    cached = _SWEEP_CACHE.get(name)
    if cached is None:
        cached = _SWEEP_CACHE[name] = normalized_sweep(
            TPCH_QUERIES[name],
            batch_sizes=BATCH_SIZES,
            sf=LOCAL_SF,
            max_batches=None,
        )
    return cached


@pytest.mark.paper_experiment("fig7")
@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_fig7_normalized_throughput(benchmark, name):
    """One bar group of Figure 7: normalized throughput per batch size."""
    series = benchmark.pedantic(_sweep, args=(name,), rounds=1, iterations=1)

    rows = [(name, bs, round(v, 3)) for bs, v in sorted(series.items())]
    print()
    print(
        format_table(
            ("query", "batch size", "normalized throughput"),
            rows,
            title=f"Figure 7 — {name} (baseline: single-tuple = 1.0)",
        )
    )
    # Every measurement must be positive and finite.
    assert all(v > 0 for v in series.values())


@pytest.mark.paper_experiment("fig7")
def test_fig7_log_panel_queries_are_the_outliers():
    """The right-panel queries gain far more from batching than the
    left-panel ones.

    Our single-tuple baseline is an interpreter (per-trigger dispatch is
    genuinely expensive), so *all* batching gains sit above the paper's
    absolute numbers; the reproducible shape is the relative ordering:
    the log-panel queries are the outliers, by a wide margin
    (EXPERIMENTS.md discusses the calibration).
    """
    log_gains = {name: max(_sweep(name).values()) for name in LOG_PANEL}
    modest_gains = {
        name: max(_sweep(name).values()) for name in MODEST_QUERIES
    }
    print()
    print(
        format_table(
            ("panel", "query", "peak normalized throughput"),
            [("log", n, round(g, 1)) for n, g in sorted(log_gains.items())]
            + [
                ("linear", n, round(g, 1))
                for n, g in sorted(modest_gains.items())
            ],
            title="Figure 7 — peak batching gains by panel",
        )
    )
    best_log = max(log_gains.values())
    median_modest = sorted(modest_gains.values())[len(modest_gains) // 2]
    assert best_log > 2 * median_modest, (
        f"log-panel peak {best_log:.0f}x not clearly above the "
        f"left-panel median {median_modest:.0f}x"
    )
    # Every log-panel query gains substantially from batching.
    for name, gain in log_gains.items():
        assert gain > 3.0, f"{name}: expected a large batching gain, got {gain:.2f}"


@pytest.mark.paper_experiment("fig7")
def test_fig7_modest_queries_keep_bounded_gains():
    """Left-panel queries: batching gains stay within the range the
    trigger-amortization baseline explains — far below the log-panel
    explosions (the paper's refutation of "batching always wins" shows
    up as this panel split)."""
    peaks = {name: max(_sweep(name).values()) for name in MODEST_QUERIES}
    # Q13-style simple two-way joins barely benefit even here.
    assert min(peaks.values()) < 30.0, peaks


@pytest.mark.paper_experiment("fig7")
def test_fig7_batch1_is_slower_than_specialized_single():
    """Batch size 1 pays materialization/looping overhead over the
    specialized single-tuple engine (normalized < 1 for most queries)."""
    below = 0
    total = 0
    for name in sorted(TPCH_QUERIES):
        series = _sweep(name)
        total += 1
        if series[1] < 1.0:
            below += 1
    # The paper's Table 1 shows batch-1 losing to Single nearly always.
    assert below >= total * 0.6, f"only {below}/{total} queries slower at batch 1"
