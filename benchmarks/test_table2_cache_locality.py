"""Table 2: cache locality of TPC-H Q3 across batch sizes.

The paper profiles generated Q3 code with perf: batch size 1 executes
almost 10x more instructions than batch size 1,000, and last-level
cache references/misses are lowest near batch size 1,000 (the U-shape
that motivates the 1,000-10,000 "best bite size").

Our substitute (DESIGN.md §1) counts virtual instructions and drives a
two-level LRU cache simulator from the record pools' access trace; the
bench asserts the same two shapes.
"""

from __future__ import annotations

import pytest

from repro.harness import cache_locality_run, format_table
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import LOCAL_SF

BATCHES = (1, 10, 100, 1_000)


def _rows():
    spec = TPCH_QUERIES["Q3"]
    rows = [
        cache_locality_run(spec, None, sf=LOCAL_SF)  # single-tuple
    ]
    rows.extend(
        cache_locality_run(spec, bs, sf=LOCAL_SF) for bs in BATCHES
    )
    return rows


@pytest.mark.paper_experiment("table2")
def test_table2_cache_locality(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)

    print()
    print(
        format_table(
            (
                "batch",
                "virtual instrs",
                "L1 refs",
                "L1 misses",
                "LLC refs",
                "LLC misses",
            ),
            [
                (
                    r.batch_label,
                    r.virtual_instructions,
                    r.l1_refs,
                    r.l1_misses,
                    r.llc_refs,
                    r.llc_misses,
                )
                for r in rows
            ],
            title="Table 2 — cache locality of TPC-H Q3",
        )
    )

    by = {r.batch_label: r for r in rows}

    # Shape 1: batch 1 executes several times more instructions than
    # batch 1,000 (paper: ~10x).
    ratio = (
        by["1"].virtual_instructions / by["1000"].virtual_instructions
    )
    assert ratio > 3.0, f"batch-1/batch-1000 instruction ratio only {ratio:.1f}x"

    # Shape 2: instruction counts decrease monotonically from batch 1
    # to batch 1,000 (amortized trigger overhead).
    instrs = [by[str(b)].virtual_instructions for b in BATCHES]
    assert all(a >= b for a, b in zip(instrs, instrs[1:])), instrs

    # Shape 3: data-cache traffic follows the same amortization — L1
    # references and misses at batch 1 dwarf batch 1,000's.  (The
    # paper's right arm of the U — LLC degradation at 100k-tuple
    # batches — needs working sets beyond the scaled bench: here the
    # state fits the simulated LLC, so LLC misses stay at the cold
    # footprint; we assert they never *grow* with batch size.)
    assert by["1"].l1_refs > 10 * by["1000"].l1_refs
    assert by["1"].l1_misses >= by["1000"].l1_misses
    llc = [by[str(b)].llc_misses for b in BATCHES]
    assert all(m <= llc[0] for m in llc), llc
