"""Figure 9: weak scalability of distributed IVM on Q6, Q17, Q3, Q7.

Each worker receives a fixed batch share (100,000 tuples in the paper;
scaled down here), so total batch size grows with the worker count.
Paper shapes:

* Q6 (single aggregate, one stage) isolates synchronization overhead —
  latency grows mildly and monotonically with worker count while
  throughput keeps rising to a mid-scale peak;
* Q17 / Q3 (two-three stages with shuffles) have higher baseline
  latency than Q6;
* Q7 (three jobs, most complex) has the fastest-growing latency, and
  its throughput peaks earliest.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, weak_scaling
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import DIST_SF

WORKERS = (2, 4, 8, 16, 32)
TUPLES_PER_WORKER = 100


def _run(name: str):
    return weak_scaling(
        TPCH_QUERIES[name],
        workers=WORKERS,
        tuples_per_worker=TUPLES_PER_WORKER,
        sf=DIST_SF,
        max_batches=3,
    )


@pytest.mark.paper_experiment("fig9")
@pytest.mark.parametrize("name", ["Q6", "Q17", "Q3", "Q7"])
def test_fig9_weak_scaling(benchmark, name):
    points = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)

    print()
    print(
        format_table(
            ("workers", "batch", "median latency (s)", "throughput (tup/s)", "shuffled B"),
            [
                (
                    p.n_workers,
                    p.batch_size,
                    round(p.median_latency_s, 4),
                    round(p.throughput_tuples_per_s),
                    p.shuffled_bytes,
                )
                for p in points
            ],
            title=f"Figure 9 — weak scaling of {name} "
            f"({TUPLES_PER_WORKER} tuples/worker)",
        )
    )

    lat = [p.median_latency_s for p in points]
    thr = [p.throughput_tuples_per_s for p in points]

    # Latency grows with worker count (synchronization term).
    assert lat[-1] > lat[0], f"{name}: latency did not grow with workers"
    # Throughput still improves from the smallest to some larger scale
    # (each worker brings its own batch share).
    assert max(thr) > thr[0], f"{name}: no weak-scaling throughput gain"


@pytest.mark.paper_experiment("fig9")
def test_fig9_q6_isolates_sync_overhead():
    """Q6 has the lowest latency of the four queries at every scale —
    it is the paper's probe for pure synchronization cost."""
    series = {name: _run(name) for name in ("Q6", "Q17", "Q3", "Q7")}
    for i, n in enumerate(WORKERS):
        q6 = series["Q6"][i].median_latency_s
        for other in ("Q17", "Q3", "Q7"):
            assert q6 <= series[other][i].median_latency_s, (
                f"Q6 not cheapest at {n} workers vs {other}"
            )


@pytest.mark.paper_experiment("fig9")
def test_fig9_q7_latency_grows_fastest():
    """Q7's latency growth factor across the sweep exceeds Q6's
    (three shuffle-heavy jobs vs one aggregate-only stage)."""
    q6 = _run("Q6")
    q7 = _run("Q7")
    growth_q6 = q6[-1].median_latency_s / q6[0].median_latency_s
    growth_q7 = q7[-1].median_latency_s / q7[0].median_latency_s
    assert q7[0].median_latency_s > q6[0].median_latency_s
    assert (
        q7[-1].median_latency_s > q6[-1].median_latency_s
    ), "Q7 should stay costlier than Q6 at scale"
