"""Cross-view sharing benchmark: maintenance cost vs view-set overlap.

Serves 10 / 100 / 1000 views whose definitions are ~90% overlapping —
alias/order re-spellings of three join+aggregate shapes, plus ~10%
genuinely unique queries (distinct filter literals) — and streams the
same insert+delete batch sequence through a ``sharing=True`` and a
``sharing=False`` service.  With sharing, each distinct shape is
maintained once by a shared node and the re-spelled views run only a
trivial re-key consumer program, so ingest cost should scale with the
number of *distinct* subplans, not the number of views.

The guardrail asserted here (the ISSUE 10 acceptance bar): at 100
views, shared ingest is at least 3x faster than unshared.  Results
land in ``BENCH_shared_views.json`` at the repo root.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.harness import bench_environment, format_table
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

#: the three shared shapes, as alias templates — distinct alias pairs
#: per view exercise the canonicalisation pass, not string identity
SHAPE_TEMPLATES = [
    "SELECT {x}.a, COUNT(*) FROM R {x}, S {y} "
    "WHERE {x}.b = {y}.b GROUP BY {x}.a",
    "SELECT {x}.b, COUNT(*) FROM S {y}, R {x} "
    "WHERE {x}.b = {y}.b GROUP BY {x}.b",
    "SELECT {y}.d, COUNT(*) FROM R {x}, T {y} "
    "WHERE {x}.a = {y}.a GROUP BY {y}.d",
]

#: per view-count: (n_batches, rows_per_batch, repeats)
RUNS = {10: (60, 40, 3), 100: (40, 40, 2), 1000: (8, 40, 1)}

#: the acceptance bar: shared vs unshared ingest at 100 views
SPEEDUP_FLOOR_AT_100 = 3.0

_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_shared_views.json"
)


def _view_defs(n: int) -> list[tuple[str, str]]:
    """~90% re-spellings of the shared shapes, ~10% unique queries."""
    defs = []
    for i in range(n):
        if i % 10 == 9:  # unique: a literal no other view uses
            sql = (
                f"SELECT a, COUNT(*) FROM R WHERE R.b > {i} GROUP BY a"
            )
        else:
            sql = SHAPE_TEMPLATES[i % 3].format(x=f"x{i}", y=f"y{i}")
        defs.append((f"view_{i}", sql))
    return defs


def _stream(n_batches: int, rows: int) -> list[tuple[str, GMR]]:
    rng = random.Random(1234)
    live = {"R": [], "S": [], "T": []}
    domains = {
        "R": lambda: (rng.randint(1, 50), rng.randint(1, 80)),
        "S": lambda: (rng.randint(1, 80), rng.randint(1, 10)),
        "T": lambda: (rng.randint(1, 50), rng.randint(1, 20)),
    }
    out = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict = {}
        for _ in range(rows):
            if live[relation] and rng.random() < 0.25:
                t = rng.choice(live[relation])
                live[relation].remove(t)
                data[t] = data.get(t, 0) - 1
            else:
                t = domains[relation]()
                live[relation].append(t)
                data[t] = data.get(t, 0) + 1
        data = {t: m for t, m in data.items() if m != 0}
        if data:
            out.append((relation, GMR(data)))
    return out


def _run(defs, stream, sharing: bool) -> tuple[float, int]:
    """(ingest seconds, maintenance programs) for one arm."""
    service = ViewService(catalog=CATALOG, sharing=sharing)
    for name, sql in defs:
        service.create_view(name, sql)
        service.subscribe(name, lambda event: None)
    programs = service.maintenance_programs()
    start = time.perf_counter()
    for relation, batch in stream:
        service.on_batch(relation, GMR(dict(batch.data)))
    elapsed = time.perf_counter() - start
    return elapsed, programs


@pytest.mark.paper_experiment(
    "cross-view sharing: ingest cost vs view overlap"
)
def test_shared_views_speedup():
    payload = {
        "bench": "shared_views",
        "unit": "seconds (best ingest wall time)",
        "overlap": "~90% of views re-spell 3 shared shapes",
        "speedup_floor_at_100": SPEEDUP_FLOOR_AT_100,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "sizes": {},
    }
    rows = []
    for n_views, (n_batches, batch_rows, repeats) in RUNS.items():
        defs = _view_defs(n_views)
        stream = _stream(n_batches, batch_rows)
        shared_times, unshared_times = [], []
        shared_programs = unshared_programs = 0
        for _ in range(repeats):
            t, shared_programs = _run(defs, stream, sharing=True)
            shared_times.append(t)
            t, unshared_programs = _run(defs, stream, sharing=False)
            unshared_times.append(t)
        best_shared = min(shared_times)
        best_unshared = min(unshared_times)
        speedup = best_unshared / best_shared
        payload["sizes"][str(n_views)] = {
            "n_batches": len(stream),
            "rows_per_batch": batch_rows,
            "repeats": repeats,
            "maintenance_programs": {
                "shared": shared_programs,
                "unshared": unshared_programs,
            },
            "best_s": {"shared": best_shared, "unshared": best_unshared},
            "speedup": speedup,
        }
        rows.append((
            n_views,
            f"{shared_programs}/{unshared_programs}",
            round(best_shared, 4),
            round(best_unshared, 4),
            f"{speedup:.2f}x",
        ))
        assert shared_programs < unshared_programs
        if n_views == 100:
            assert speedup >= SPEEDUP_FLOOR_AT_100, (
                f"sharing gave only {speedup:.2f}x at 100 views "
                f"(floor {SPEEDUP_FLOOR_AT_100}x)"
            )

    print()
    print(format_table(
        ("views", "programs (shared/unshared)", "shared (s)",
         "unshared (s)", "speedup"),
        rows,
        title="cross-view sharing ingest speedup (~90% overlap)",
    ))
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
