"""Figure 10: strong scalability of Q6, Q17, Q3, Q7 for fixed batch
sizes, plus the Spark-SQL re-evaluation comparator.

Paper shapes:

* latency falls as workers are added, until synchronization/shuffle
  overheads flatten (Q6) or even reverse (Q7 beyond 200 workers) the
  curve;
* larger batches create more parallelizable work and keep scaling to
  more workers;
* incremental maintenance beats Spark-SQL-style re-evaluation by large
  factors (Q3: 8.5x-20.9x; Q6: >100x).
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, strong_scaling
from repro.harness.scaling import paper_scale_cost_model, reeval_scaling
from repro.workloads import TPCH_QUERIES

from benchmarks.conftest import DIST_SF

WORKERS = (2, 4, 8, 16, 32)
BATCHES = (500, 1_000, 2_000, 4_000)


def _run(name: str):
    # paper_scale_cost_model restores the paper's compute/sync ratio at
    # scaled batch sizes (its 50M-400M batches give each worker seconds
    # of compute; ours would otherwise be pure synchronization).
    return strong_scaling(
        TPCH_QUERIES[name],
        workers=WORKERS,
        batch_sizes=BATCHES,
        sf=DIST_SF,
        max_batches=2,
        cost_model=paper_scale_cost_model(),
    )


@pytest.mark.paper_experiment("fig10")
@pytest.mark.parametrize("name", ["Q6", "Q17", "Q3", "Q7"])
def test_fig10_strong_scaling(benchmark, name):
    series = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)

    rows = []
    for bs, points in sorted(series.items()):
        for p in points:
            rows.append(
                (bs, p.n_workers, round(p.median_latency_s, 4))
            )
    print()
    print(
        format_table(
            ("batch size", "workers", "median latency (s)"),
            rows,
            title=f"Figure 10 — strong scaling of {name}",
        )
    )

    largest = series[BATCHES[-1]]
    lat = [p.median_latency_s for p in largest]
    # Adding workers reduces latency for the largest batch size.
    assert min(lat) < lat[0], f"{name}: no strong-scaling gain"
    # The biggest batch at the smallest scale is the slowest point.
    assert lat[0] == max(lat), f"{name}: unexpected latency maximum"

    # Larger batches take longer at equal worker counts.
    at_min_workers = {bs: series[bs][0].median_latency_s for bs in BATCHES}
    assert at_min_workers[BATCHES[-1]] > at_min_workers[BATCHES[0]]


@pytest.mark.paper_experiment("fig10")
@pytest.mark.parametrize("name", ["Q6", "Q3"])
def test_fig10_incremental_beats_sparksql_reeval(name):
    """RIVM vs the distributed re-evaluation baseline at the largest
    batch size (the SparkSQL 400M series of Figs. 10a/10c)."""
    spec = TPCH_QUERIES[name]
    batch = BATCHES[-1]
    ivm = strong_scaling(
        spec, workers=(8,), batch_sizes=(batch,), sf=DIST_SF, max_batches=2,
        cost_model=paper_scale_cost_model(),
    )[batch][0]
    reev = reeval_scaling(
        spec, workers=(8,), batch_size=batch, sf=DIST_SF, max_batches=2,
        cost_model=paper_scale_cost_model(),
    )[0]
    print()
    print(
        format_table(
            ("engine", "median latency (s)"),
            [
                ("incremental", round(ivm.median_latency_s, 4)),
                ("spark-sql-reeval", round(reev.median_latency_s, 4)),
            ],
            title=f"Figure 10 — {name}: incremental vs re-evaluation "
            f"(batch {batch}, 8 workers)",
        )
    )
    assert reev.median_latency_s > ivm.median_latency_s, (
        f"{name}: re-evaluation should be slower than incremental"
    )
