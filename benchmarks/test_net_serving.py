"""Network serving: in-process vs over-the-wire, and push fan-out.

The frontend exists to serve remote traffic, so the number that matters
is what the wire *costs*: the same single-view TPC-H maintenance
workload is run once on an in-process :class:`~repro.service.ViewService`
(`measure_service_throughput`) and once through a live
:class:`~repro.net.ViewServer` socket (`measure_network_throughput`)
with 1 and 4 concurrent producer connections — plus a fan-out point
where one view pushes every delta to 4 independent subscription
streams.  Each network window ends only when every stream has observed
the drain mark, so in-process and network elapsed times cover the same
end-to-end work.

Every configuration asserts the delivery invariant (deltas accumulated
off the wire equal the final snapshot); measurements land in
``BENCH_net.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.harness import (
    bench_environment,
    ViewDef,
    format_table,
    measure_network_throughput,
    measure_service_throughput,
)
from repro.workloads import TPCH_QUERIES

PARAMS = {
    "Q1": dict(batch_size=250, sf=0.002, max_batches=16),
    "Q6": dict(batch_size=250, sf=0.002, max_batches=16),
    "Q17": dict(batch_size=100, sf=0.001, max_batches=8),
}

#: (label, n_clients, subscribers_per_view) network configurations
NET_CONFIGS = (
    ("net_1c", 1, 1),
    ("net_4c", 4, 1),
    ("net_fanout4", 1, 4),
)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_net.json"


@pytest.mark.paper_experiment("network frontend: wire cost and fan-out")
def test_network_serving_overhead_and_fanout():
    rows = []
    payload = {
        "bench": "net_serving",
        "unit": "seconds / tuples-per-second",
        "semantics": (
            "inproc = measure_service_throughput (one view, one "
            "subscriber, in process); net_<n>c = measure_network_"
            "throughput with n concurrent producer connections; "
            "net_fanout4 = 1 producer, 4 push subscription streams on "
            "the one view; every network window includes the drain "
            "barrier observed on every stream"
        ),
        "backend": "rivm-batch",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": bench_environment(),
        "queries": {},
    }
    for query, params in PARAMS.items():
        defs = [ViewDef(query, TPCH_QUERIES[query], "rivm-batch")]
        inproc = measure_service_throughput(defs, **params)
        entry = {
            "inproc": {
                "elapsed_s": inproc.elapsed_s,
                "throughput_tuples_s": inproc.throughput,
                "n_batches": inproc.n_batches,
                "n_tuples": inproc.n_tuples,
            }
        }
        rows.append(
            (query, "inproc", 1, 1, round(inproc.elapsed_s, 4),
             round(inproc.throughput))
        )
        for label, n_clients, n_subs in NET_CONFIGS:
            net = measure_network_throughput(
                defs, n_clients=n_clients,
                subscribers_per_view=n_subs, **params,
            )
            assert all(v.consistent for v in net.views), (
                f"{query}/{label}: wire deltas diverged from snapshot"
            )
            assert net.n_tuples == inproc.n_tuples, (
                f"{query}/{label}: network run streamed a different "
                "workload than the in-process run"
            )
            entry[label] = {
                "elapsed_s": net.elapsed_s,
                "throughput_tuples_s": net.throughput,
                "n_clients": net.n_clients,
                "subscribers_per_view": net.subscribers_per_view,
                "deltas_received": net.views[0].deltas_received,
                "wire_overhead_x": (
                    net.elapsed_s / inproc.elapsed_s
                    if inproc.elapsed_s > 0 else None
                ),
            }
            rows.append(
                (query, label, n_clients, n_subs,
                 round(net.elapsed_s, 4), round(net.throughput))
            )
        payload["queries"][query] = entry

    print()
    print(
        format_table(
            ("query", "config", "clients", "subs/view", "elapsed (s)",
             "tuples/s"),
            rows,
            title="network serving: in-process vs over-the-wire",
        )
    )
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Sanity of the shape, not of absolute numbers: every config moved
    # real tuples and the wire did not corrupt anything (asserted
    # above); throughputs must be positive and finite.
    for query, entry in payload["queries"].items():
        for config, stats in entry.items():
            assert stats["throughput_tuples_s"] > 0, (query, config)
