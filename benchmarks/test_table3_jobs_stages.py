"""Table 3 (Appendix C.1): per-query job and stage counts in "Spark".

The paper reports, for each TPC-H query under the Section 6.2
partitioning heuristic, how many jobs and stages one update batch
needs: Q1/Q6 need one job with one stage; complex queries (Q7, Q9,
Q16) need up to 3 jobs and 6-7 stages.

The table is a pure compile-time artifact, so this bench both prints
and snapshots it: the counts are deterministic functions of the query
structure and the partitioning heuristic.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table, jobs_stages_table
from repro.workloads import TPCH_QUERIES

#: the paper's values for reference printing (jobs, stages)
PAPER_TABLE3 = {
    "Q1": (1, 1), "Q2": (1, 3), "Q3": (1, 3), "Q4": (1, 2), "Q5": (2, 5),
    "Q6": (1, 1), "Q7": (3, 6), "Q8": (2, 6), "Q9": (3, 7), "Q10": (1, 3),
    "Q11": (2, 4), "Q12": (1, 2), "Q13": (2, 4), "Q14": (1, 2),
    "Q15": (1, 3), "Q16": (3, 5), "Q17": (1, 2), "Q18": (1, 3),
    "Q19": (1, 2), "Q20": (1, 3), "Q21": (2, 4), "Q22": (2, 3),
}


def _rows():
    return jobs_stages_table(TPCH_QUERIES)


@pytest.mark.paper_experiment("table3")
def test_table3_jobs_and_stages(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)

    printable = []
    for r in rows:
        paper = PAPER_TABLE3.get(r.query, ("-", "-"))
        printable.append((r.query, r.jobs, r.stages, paper[0], paper[1]))
    print()
    print(
        format_table(
            ("query", "jobs", "stages", "paper jobs", "paper stages"),
            printable,
            title="Table 3 — view-maintenance complexity per TPC-H query",
        )
    )

    by = {r.query: r for r in rows}

    # Structural anchors from the paper: single-aggregate queries are
    # one job / one stage.
    assert by["Q1"].jobs == 1 and by["Q1"].stages == 1
    assert by["Q6"].jobs == 1 and by["Q6"].stages == 1

    # Every query processes a batch in a small, bounded number of
    # rounds (paper max: 3 jobs / 7 stages).
    for r in rows:
        assert 1 <= r.jobs <= 4, f"{r.query}: {r.jobs} jobs"
        assert 1 <= r.stages <= 9, f"{r.query}: {r.stages} stages"

    # Multi-join queries need more stages than the single-aggregate
    # ones — the ordering the paper's table exhibits.
    assert by["Q3"].stages > by["Q6"].stages
    assert by["Q7"].stages >= by["Q3"].stages


@pytest.mark.paper_experiment("table3")
def test_table3_is_deterministic():
    """Compile-time plans do not depend on run order or data."""
    a = {r.query: (r.jobs, r.stages) for r in jobs_stages_table(TPCH_QUERIES)}
    b = {r.query: (r.jobs, r.stages) for r in jobs_stages_table(TPCH_QUERIES)}
    assert a == b
