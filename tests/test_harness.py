"""The experiment harness: stream preparation, engine factories, and
the experiment runners (scaled far down — these are correctness tests,
the benchmarks measure)."""

import pytest

from repro.harness import (
    STRATEGIES,
    cache_locality_run,
    format_series,
    format_table,
    jobs_stages_table,
    make_engine,
    measure_throughput,
    normalized_sweep,
    prepare_stream,
    run_engine,
    strategy_matrix,
    weak_scaling,
)
from repro.harness.scaling import optimization_ablation, strong_scaling
from repro.workloads import MICRO_QUERIES, TPCH_QUERIES


# ----------------------------------------------------------------------
# prepare_stream
# ----------------------------------------------------------------------


def test_prepare_stream_batches_only_updatable():
    spec = TPCH_QUERIES["Q3"]
    prepared = prepare_stream(spec, 20, sf=0.0002)
    streamed = {rel for rel, _ in prepared.batches}
    assert streamed <= spec.updatable
    assert prepared.n_tuples > 0


def test_prepare_stream_static_holds_dimensions():
    spec = TPCH_QUERIES["Q3"]  # NATION etc. static
    prepared = prepare_stream(spec, 20, sf=0.0002)
    for name in prepared.static.views:
        assert name not in spec.updatable or prepared.static.views[name]


def test_prepare_stream_batch_sizes():
    spec = TPCH_QUERIES["Q6"]
    prepared = prepare_stream(spec, 25, sf=0.0002)
    sizes = [
        sum(abs(m) for m in batch.data.values())
        for _, batch in prepared.batches
    ]
    assert all(s <= 25 for s in sizes)
    assert sizes[:-1] == [25] * (len(sizes) - 1)


def test_prepare_stream_max_batches():
    spec = TPCH_QUERIES["Q6"]
    prepared = prepare_stream(spec, 10, sf=0.0002, max_batches=3)
    assert len(prepared.batches) == 3


def test_prepare_stream_warm_fraction_moves_rows_to_static():
    spec = TPCH_QUERIES["Q6"]
    cold = prepare_stream(spec, 50, sf=0.0002, warm_fraction=0.0)
    warm = prepare_stream(spec, 50, sf=0.0002, warm_fraction=0.8)
    assert warm.n_tuples < cold.n_tuples
    assert len(warm.static.get_view("LINEITEM")) > 0
    # Warm rows + streamed rows = all rows.
    streamed_warm = sum(
        sum(abs(m) for m in b.data.values()) for _, b in warm.batches
    )
    assert len(warm.static.get_view("LINEITEM")) + streamed_warm == (
        cold.n_tuples
    )


def test_prepare_stream_rejects_unknown_workload():
    with pytest.raises(ValueError):
        prepare_stream(TPCH_QUERIES["Q6"], 10, workload="nope")


def test_fresh_static_is_independent():
    spec = TPCH_QUERIES["Q3"]
    prepared = prepare_stream(spec, 20, sf=0.0002)
    a = prepared.fresh_static()
    b = prepared.fresh_static()
    a.get_view("NATION").add_tuple((99, 99), 1)
    assert a.get_view("NATION") != b.get_view("NATION")


# ----------------------------------------------------------------------
# Engines and timed runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_make_engine_all_strategies(strategy):
    engine = make_engine(TPCH_QUERIES["Q6"], strategy)
    assert hasattr(engine, "on_batch")
    assert hasattr(engine, "result")


def test_make_engine_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        make_engine(TPCH_QUERIES["Q6"], "magic")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_all_strategies_agree_on_q6(strategy):
    """Every strategy computes the same view over the same stream."""
    spec = TPCH_QUERIES["Q6"]
    prepared = prepare_stream(spec, 30, sf=0.0002)
    reference = run_engine(prepared, "reeval").result
    outcome = run_engine(prepared, strategy)
    assert outcome.result == reference, strategy


def test_run_engine_reports_tuples_and_time():
    spec = TPCH_QUERIES["Q6"]
    prepared = prepare_stream(spec, 30, sf=0.0002)
    outcome = run_engine(prepared, "rivm-batch")
    assert outcome.n_tuples == prepared.n_tuples
    assert outcome.elapsed_s > 0
    assert outcome.virtual_instructions > 0
    assert outcome.throughput > 0
    assert outcome.virtual_throughput > 0


# ----------------------------------------------------------------------
# Local experiment runners
# ----------------------------------------------------------------------


def test_measure_throughput_single_mode():
    r = measure_throughput(
        TPCH_QUERIES["Q6"], "rivm-single", None, sf=0.0002, max_batches=5
    )
    assert r.batch_size is None
    assert r.batch_label == "Single"
    assert r.throughput > 0


def test_normalized_sweep_keys_and_positivity():
    series = normalized_sweep(
        TPCH_QUERIES["Q6"], batch_sizes=(1, 50), sf=0.0001, max_batches=10
    )
    assert set(series) == {1, 50}
    assert all(v > 0 for v in series.values())


def test_strategy_matrix_shape():
    rows = strategy_matrix(
        TPCH_QUERIES["Q6"],
        batch_sizes=(10,),
        strategies=("reeval", "rivm-batch"),
        sf=0.0001,
        max_batches=5,
    )
    labels = [(r.strategy, r.batch_label) for r in rows]
    assert labels == [
        ("rivm-single", "Single"),
        ("reeval", "10"),
        ("rivm-batch", "10"),
    ]


# ----------------------------------------------------------------------
# Cache-locality runner
# ----------------------------------------------------------------------


def test_cache_locality_run_counts():
    row = cache_locality_run(
        TPCH_QUERIES["Q3"], 50, sf=0.0002, max_batches=5
    )
    assert row.batch_label == "50"
    assert row.virtual_instructions > 0
    assert row.l1_refs >= row.l1_misses >= 0
    assert row.llc_refs >= row.llc_misses >= 0
    assert 0.0 <= row.l1_miss_rate <= 1.0
    assert 0.0 <= row.llc_miss_rate <= 1.0


def test_cache_locality_llc_refs_are_l1_misses():
    """Two-level inclusive simulation: LLC sees only L1 misses."""
    row = cache_locality_run(
        TPCH_QUERIES["Q3"], 25, sf=0.0002, max_batches=5
    )
    assert row.llc_refs == row.l1_misses


# ----------------------------------------------------------------------
# Distributed experiment runners
# ----------------------------------------------------------------------


def test_weak_scaling_returns_one_point_per_worker_count():
    points = weak_scaling(
        TPCH_QUERIES["Q6"], workers=(2, 4), tuples_per_worker=30,
        sf=0.0005, max_batches=2,
    )
    assert [p.n_workers for p in points] == [2, 4]
    assert [p.batch_size for p in points] == [60, 120]
    assert all(p.median_latency_s > 0 for p in points)


def test_strong_scaling_series_per_batch_size():
    series = strong_scaling(
        TPCH_QUERIES["Q6"], workers=(2, 4), batch_sizes=(50, 100),
        sf=0.0005, max_batches=2,
    )
    assert set(series) == {50, 100}
    for points in series.values():
        assert [p.n_workers for p in points] == [2, 4]


def test_optimization_ablation_levels_and_ordering():
    out = optimization_ablation(
        TPCH_QUERIES["Q3"], workers=(4,), batch_size=200,
        sf=0.0005, max_batches=2,
    )
    assert set(out) == {"O0-naive", "O1-simplify", "O2-fusion", "O3-cse-dce"}
    o0 = out["O0-naive"][0].median_latency_s
    o3 = out["O3-cse-dce"][0].median_latency_s
    assert o3 <= o0 * 1.001


def test_jobs_stages_table_covers_all_queries():
    rows = jobs_stages_table(
        {k: TPCH_QUERIES[k] for k in ("Q1", "Q6", "Q3")}
    )
    names = [r.query for r in rows]
    assert names == ["Q1", "Q3", "Q6"]
    for r in rows:
        assert r.jobs >= 1
        assert r.stages >= 1
        assert r.per_trigger


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------


def test_format_table_alignment_and_title():
    out = format_table(
        ("a", "bb"), [(1, 2.5), (33, 0.0001)], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_series():
    out = format_series("s", [(1, 2.0), (2, 4.0)], x_label="n", y_label="v")
    assert out.splitlines()[0] == "s:"
    assert "n=1" in out and "v=4" in out
