"""Multi-producer safety of one ViewService session.

The network frontend (:mod:`repro.net`) hands every HTTP connection its
own thread, so several producers call ``on_batch`` on one shared
session concurrently.  The guarantee the frontend relies on — asserted
here — is that the service lock makes this indistinguishable from *some*
single-threaded interleaving: final snapshots equal a single-threaded
reference run over the same multiset of batches (GMR deltas are
additive, so the final state is order-independent), accumulated
subscription deltas equal the snapshot, and every subscriber observes
strictly increasing ``seq`` values.
"""

import random
import threading

import pytest

from repro.query.builder import join, rel, sum_over
from repro.ring import GMR
from repro.service import ViewService
from repro.workloads import QuerySpec

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
EXPR_CNT_A = sum_over(["a"], rel("R", "a", "b"))
SPEC_BY_D = QuerySpec(
    name="by_d",
    query=sum_over(["d"], join(rel("T", "a", "d"), rel("R", "a", "b"))),
    updatable=frozenset({"R", "T"}),
)

#: mixed sync + async views, the composition the network frontend hosts
VIEWS = {
    "per_b": (SQL_PER_B, "rivm-batch", {}),
    "cnt_a": (EXPR_CNT_A, "reeval", {}),
    "by_d": (SPEC_BY_D, "async:rivm-batch", {"queue_capacity": 256}),
}


def _random_stream(seed: int, n_batches: int) -> list[tuple[str, GMR]]:
    """A deterministic insert+delete stream over R/S/T.

    Deletions only remove tuples inserted earlier in the same stream, so
    any interleaving of the batches keeps base multiplicities sane.
    """
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {"R": [], "S": [], "T": []}
    batches: list[tuple[str, GMR]] = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 4)):
            if live[relation] and rng.random() < 0.3:
                victim = rng.choice(live[relation])
                live[relation].remove(victim)
                data[victim] = data.get(victim, 0) - 1
            else:
                row = (rng.randint(1, 6), rng.randint(1, 12))
                live[relation].append(row)
                data[row] = data.get(row, 0) + 1
        if data:
            batches.append((relation, GMR(data)))
    return batches


def _build_service() -> tuple[ViewService, dict[str, list]]:
    service = ViewService(catalog=CATALOG)
    events: dict[str, list] = {}
    for name, (source, backend, options) in VIEWS.items():
        service.create_view(name, source, backend=backend, **options)
        events[name] = []
        service.subscribe(name, events[name].append)
    return service, events


def _teardown(service: ViewService) -> None:
    for name in service.views():
        service.drop_view(name)


@pytest.mark.parametrize("n_producers", [2, 4])
def test_concurrent_producers_match_single_threaded_reference(n_producers):
    batches = _random_stream(seed=20160626, n_batches=160)

    # Single-threaded reference over the identical multiset of batches.
    reference_service, _ = _build_service()
    for relation, batch in batches:
        reference_service.on_batch(relation, GMR(dict(batch.data)))
    reference_service.drain()
    reference = {
        name: reference_service.snapshot(name) for name in VIEWS
    }
    _teardown(reference_service)

    service, events = _build_service()
    shares = [batches[i::n_producers] for i in range(n_producers)]
    errors: list[BaseException] = []

    def produce(share):
        try:
            for relation, batch in share:
                service.on_batch(relation, GMR(dict(batch.data)))
        except BaseException as exc:  # surface, don't swallow
            errors.append(exc)

    threads = [
        threading.Thread(target=produce, args=(share,), daemon=True)
        for share in shares
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "producer thread wedged"
    assert not errors, f"producer raised: {errors[0]!r}"
    service.drain()

    try:
        for name in VIEWS:
            snap = service.snapshot(name)
            assert snap == reference[name], (
                f"{name}: concurrent run diverged from the "
                "single-threaded reference"
            )
            acc = GMR()
            for event in events[name]:
                acc.add_inplace(event.delta)
            assert acc == snap, (
                f"{name}: accumulated deltas diverged from snapshot"
            )
            seqs = [event.seq for event in events[name]]
            assert all(a < b for a, b in zip(seqs, seqs[1:])), (
                f"{name}: subscriber saw non-increasing seqs {seqs[:20]}..."
            )
    finally:
        _teardown(service)


def test_concurrent_create_drop_while_streaming():
    """View lifecycle racing a producer: no lost updates for surviving
    views, no exceptions from routing into a half-dropped view."""
    batches = _random_stream(seed=7, n_batches=120)
    service, _ = _build_service()
    stop = threading.Event()
    errors: list[BaseException] = []

    def churn():
        try:
            i = 0
            while not stop.is_set():
                name = f"churn_{i % 2}"
                service.create_view(name, EXPR_CNT_A, backend="rivm-batch")
                service.drop_view(name)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    churner = threading.Thread(target=churn, daemon=True)
    churner.start()
    try:
        for relation, batch in batches:
            service.on_batch(relation, GMR(dict(batch.data)))
    finally:
        stop.set()
        churner.join(timeout=30)
    assert not churner.is_alive(), "churn thread wedged"
    assert not errors, f"lifecycle churn raised: {errors[0]!r}"
    service.drain()

    reference_service, _ = _build_service()
    for relation, batch in batches:
        reference_service.on_batch(relation, GMR(dict(batch.data)))
    reference_service.drain()
    try:
        for name in VIEWS:
            assert service.snapshot(name) == reference_service.snapshot(name)
    finally:
        _teardown(reference_service)
        _teardown(service)
