"""Durability: WAL + checkpoint/restore + resumable subscriptions.

The acceptance bar (ISSUE 9): a served view with a WAL survives
``kill -9`` — restart on the same directory recovers the exact
pre-crash state (differential against an in-process reference), and a
subscriber that was cut off resumes losslessly with ``from_seq`` (no
gap, no duplicate seq).  Around that: WAL framing (torn tails, CRC
corruption), checkpoint save/load/truncate, the resume-horizon
refusal, the bounded stream queue (a stalled reader's queue depth
never exceeds the bound while healthy readers stream on; a lagging
reader gets a typed ``closed{reason: "lagging", resume_from}``), and
client-side reconnect via :class:`~repro.net.ResumableStream`.

Tests with ``smoke`` in their name form the CI crash-recovery smoke
tier (run per Python version, see .github/workflows/ci.yml).
"""

import os
import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.durability import (
    CheckpointStore,
    DurableViewService,
    ResumeHorizonError,
    WalError,
    WriteAheadLog,
    KIND_BATCH,
    KIND_DELTA,
    KIND_DROP,
    KIND_VIEW,
)
from repro.net import Client, NetError, ResumableStream, ViewServer
from repro.ring import GMR
from repro.service import ServiceError, ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
SQL_CNT_A = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"


def _random_stream(seed: int, n_batches: int) -> list[tuple[str, GMR]]:
    """Deterministic insert+delete batches over R/S/T (deletions only
    remove rows inserted earlier in the stream)."""
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {"R": [], "S": [], "T": []}
    batches: list[tuple[str, GMR]] = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 5)):
            if live[relation] and rng.random() < 0.35:
                victim = rng.choice(live[relation])
                live[relation].remove(victim)
                data[victim] = data.get(victim, 0) - 1
            else:
                row = (rng.randint(1, 8), rng.randint(1, 15))
                live[relation].append(row)
                data[row] = data.get(row, 0) + 1
        if data:
            batches.append((relation, GMR(data)))
    return batches


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------


def test_wal_record_roundtrip(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    wal.append_batch(1, "R", GMR({(1, 2): 1}))
    wal.append_view({"name": "v", "spec": "SELECT 1", "backend": "b",
                     "options": {}})
    wal.append_delta(1, "v", "R", GMR({(2,): 1}), seqs=[1])
    wal.append_drop("v")
    wal.close()

    wal2 = WriteAheadLog(str(tmp_path), fsync="off")
    records = list(wal2.records())
    wal2.close()
    kinds = [k for k, _ in records]
    assert kinds == [KIND_BATCH, KIND_VIEW, KIND_DELTA, KIND_DROP]
    assert records[0][1]["seq"] == 1
    assert records[0][1]["relation"] == "R"
    assert records[1][1]["name"] == "v"
    assert records[2][1]["view"] == "v"
    assert records[2][1]["seqs"] == [1]
    assert records[3][1]["name"] == "v"


def test_wal_read_deltas_filters_by_view_and_seq(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    for seq in (1, 2, 3):
        wal.append_delta(seq, "v", "R", GMR({(seq,): 1}))
        wal.append_delta(seq, "other", "R", GMR({(-seq,): 1}))
    wal.close()
    wal2 = WriteAheadLog(str(tmp_path), fsync="off")
    got = list(wal2.read_deltas("v", from_seq=1))
    wal2.close()
    assert [(seq, rel) for seq, rel, _, _ in got] == [(2, "R"), (3, "R")]
    assert got[0][2] == GMR({(2,): 1})


def test_wal_torn_tail_is_truncated_on_reopen(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    wal.append_batch(1, "R", GMR({(1, 2): 1}))
    wal.append_batch(2, "R", GMR({(3, 4): 1}))
    path = os.path.join(str(tmp_path), sorted(os.listdir(tmp_path))[0])
    wal.close()
    # Tear the final record mid-frame (a crash during the last write).
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 5)
    wal2 = WriteAheadLog(str(tmp_path), fsync="off")
    assert [rec["seq"] for _, rec in wal2.records()] == [1]
    # The torn bytes were dropped: appending continues a valid log.
    wal2.append_batch(2, "R", GMR({(5, 6): 1}))
    wal2.close()
    wal3 = WriteAheadLog(str(tmp_path), fsync="off")
    assert [rec["seq"] for _, rec in wal3.records()] == [1, 2]
    wal3.close()


def test_wal_crc_corruption_stops_iteration(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    wal.append_batch(1, "R", GMR({(1, 2): 1}))
    wal.append_batch(2, "R", GMR({(3, 4): 1}))
    wal.close()
    path = os.path.join(str(tmp_path), sorted(os.listdir(tmp_path))[0])
    with open(path, "r+b") as f:
        f.seek(os.path.getsize(path) - 3)
        f.write(b"\xff\xff\xff")  # flip payload bytes of the last record
    wal2 = WriteAheadLog(str(tmp_path), fsync="off")
    assert [rec["seq"] for _, rec in wal2.records()] == [1]
    wal2.close()


def test_wal_rotate_and_truncate(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    wal.append_batch(1, "R", GMR({(1, 2): 1}))
    nxt = wal.rotate()
    wal.append_batch(2, "R", GMR({(3, 4): 1}))
    assert len(wal.segment_numbers()) == 2
    assert [rec["seq"] for _, rec in wal.records()] == [1, 2]
    # Reading only the new segment skips the old prefix.
    assert [rec["seq"] for _, rec in wal.records(from_segment=nxt)] == [2]
    wal.truncate_before(nxt)
    assert wal.segment_numbers() == [nxt]
    assert [rec["seq"] for _, rec in wal.records()] == [2]
    wal.close()


def test_wal_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        WriteAheadLog(str(tmp_path), fsync="sometimes")


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


def test_checkpoint_save_load_prune(tmp_path):
    store = CheckpointStore(str(tmp_path))
    assert store.load_latest() is None
    store.save({"seq": 5, "next_segment": 1, "catalog": {}, "base": {},
                "views": []})
    store.save({"seq": 9, "next_segment": 2, "catalog": {}, "base": {},
                "views": []})
    assert store.checkpoint_seqs() == [9]  # older one pruned
    state = store.load_latest()
    assert state["seq"] == 9 and state["next_segment"] == 2


def test_checkpoint_corrupt_file_falls_back(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save({"seq": 3, "next_segment": 1, "catalog": {}, "base": {},
                "views": []})
    # Write a newer, corrupt checkpoint by hand (save() would prune).
    bad = os.path.join(str(tmp_path), "ckpt-000000000007.bin")
    with open(bad, "wb") as f:
        f.write(b"\x00\x00\x00\x00garbage that is not a pickle")
    state = store.load_latest()
    assert state is not None and state["seq"] == 3


# ----------------------------------------------------------------------
# DurableViewService: differential recovery
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["rivm-batch", "async:rivm-batch"])
@pytest.mark.parametrize("checkpoint_every", [0, 7])
def test_durable_recovery_differential(tmp_path, backend, checkpoint_every):
    """A randomized insert+delete stream into a durable service, closed
    and re-opened on the same directory, recovers snapshots identical
    to the same stream applied to a plain in-process service — with
    and without periodic checkpoints truncating the log underneath."""
    batches = _random_stream(seed=1946, n_batches=60)

    reference = ViewService(catalog=CATALOG)
    reference.create_view("per_b", SQL_PER_B, backend=backend)
    reference.create_view("cnt_a", SQL_CNT_A, backend=backend)
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))
    reference.drain()

    wal_dir = str(tmp_path / "wal")
    svc = DurableViewService(
        wal_dir, catalog=CATALOG, checkpoint_every=checkpoint_every,
        fsync="off",
    )
    svc.create_view("per_b", SQL_PER_B, backend=backend)
    svc.create_view("cnt_a", SQL_CNT_A, backend=backend)
    for relation, batch in batches:
        svc.on_batch(relation, GMR(dict(batch.data)))
    svc.drain()
    seq = svc.seq
    assert svc.snapshot("per_b") == reference.snapshot("per_b")
    svc.close()

    recovered = DurableViewService(
        wal_dir, catalog=CATALOG, checkpoint_every=checkpoint_every,
        fsync="off",
    )
    try:
        assert recovered.seq == seq
        assert sorted(recovered.recovered["views"]) == ["cnt_a", "per_b"]
        if checkpoint_every:
            assert recovered.recovered["checkpoint_seq"] > 0
        assert recovered.snapshot("per_b") == reference.snapshot("per_b")
        assert recovered.snapshot("cnt_a") == reference.snapshot("cnt_a")
        # The recovered service keeps working: more batches, same math.
        more = _random_stream(seed=4, n_batches=15)
        for relation, batch in more:
            reference.on_batch(relation, GMR(dict(batch.data)))
            recovered.on_batch(relation, GMR(dict(batch.data)))
        reference.drain()
        recovered.drain()
        assert recovered.snapshot("per_b") == reference.snapshot("per_b")
    finally:
        recovered.close()
        reference.drop_view("per_b")
        reference.drop_view("cnt_a")


def test_durable_recovery_without_clean_close(tmp_path):
    """Recovery must not rely on close(): drop the service object with
    queues drained but the WAL never closed (the in-process analogue
    of a crash) and re-open the directory."""
    svc = DurableViewService(str(tmp_path), catalog=CATALOG, fsync="off")
    svc.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
    for relation, batch in _random_stream(seed=11, n_batches=30):
        svc.on_batch(relation, batch)
    svc.drain()
    snap = svc.snapshot("cnt_a")
    seq = svc.seq
    del svc  # no close(): the log tail may even be torn mid-record

    recovered = DurableViewService(str(tmp_path), catalog=CATALOG,
                                   fsync="off")
    try:
        assert recovered.seq == seq
        assert recovered.snapshot("cnt_a") == snap
    finally:
        recovered.close()


def test_durable_drop_view_survives_recovery(tmp_path):
    svc = DurableViewService(str(tmp_path), catalog=CATALOG, fsync="off")
    svc.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
    svc.create_view("per_b", SQL_PER_B, backend="rivm-batch")
    svc.on_batch("R", GMR({(1, 10): 1}))
    svc.drop_view("per_b")
    svc.close()
    recovered = DurableViewService(str(tmp_path), catalog=CATALOG,
                                   fsync="off")
    try:
        assert recovered.views() == ("cnt_a",)
    finally:
        recovered.close()


def test_explicit_checkpoint_truncates_and_sets_horizon(tmp_path):
    svc = DurableViewService(str(tmp_path), catalog=CATALOG, fsync="off")
    svc.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
    for i in range(10):
        svc.on_batch("R", GMR({(i % 4, i): 1}))
    assert svc.resume_horizon == 0
    seq = svc.checkpoint()
    assert seq == 10 and svc.resume_horizon == 10
    # Deltas at or below the horizon are gone with the truncated prefix.
    with pytest.raises(ServiceError) as err:
        svc.deltas_since("cnt_a", 4)
    assert isinstance(err.value, ResumeHorizonError)
    assert err.value.horizon == 10
    # At the horizon (nothing new): an empty, valid replay.
    assert list(svc.deltas_since("cnt_a", 10)) == []
    svc.on_batch("R", GMR({(9, 9): 1}))
    svc.drain()
    tail = list(svc.deltas_since("cnt_a", 10))
    assert [t[0] for t in tail] == [11]
    svc.close()


def test_deltas_since_accumulate_to_snapshot(tmp_path):
    svc = DurableViewService(str(tmp_path), catalog=CATALOG, fsync="off")
    svc.create_view("per_b", SQL_PER_B, backend="rivm-batch")
    for relation, batch in _random_stream(seed=77, n_batches=40):
        svc.on_batch(relation, batch)
    svc.drain()
    acc = GMR()
    seqs = []
    for seq, _relation, delta, _seqs in svc.deltas_since("per_b", 0):
        acc.add_inplace(delta)
        seqs.append(seq)
    assert seqs == sorted(set(seqs)), "delta log has duplicate seqs"
    assert acc == svc.snapshot("per_b")
    svc.close()


def test_unknown_view_and_unknown_wal_dir(tmp_path):
    svc = DurableViewService(str(tmp_path / "fresh"), catalog=CATALOG)
    assert svc.recovered is None  # nothing to recover from
    with pytest.raises(ServiceError, match="nope"):
        svc.deltas_since("nope", 0)
    svc.close()


# ----------------------------------------------------------------------
# from_seq over the network
# ----------------------------------------------------------------------


@pytest.fixture()
def durable_served(tmp_path):
    service = DurableViewService(
        str(tmp_path / "wal"), catalog=CATALOG, fsync="off",
    )
    server = ViewServer(service).start()
    client = Client(port=server.port)
    try:
        yield service, server, client
    finally:
        client.close()
        server.close()
        service.close()


def test_network_from_seq_replays_then_splices(durable_served):
    service, server, client = durable_served
    client.create_view("cnt_a", SQL_CNT_A)
    batches = [("R", GMR({(i % 5, i): 1})) for i in range(12)]
    for relation, batch in batches[:8]:
        client.batch(relation, batch)
    client.drain("cnt_a")

    # Resume from 0 replays all 8 logged deltas; live events after the
    # handoff splice in without a gap or a duplicate.
    stream = client.subscribe("cnt_a", from_seq=0)
    for relation, batch in batches[8:]:
        client.batch(relation, batch)
    token = client.drain("cnt_a")
    acc = GMR()
    seqs = []
    for delta in stream.read_until_mark(token):
        acc.add_inplace(delta.delta)
        seqs.append(delta.seq)
    stream.close()
    assert seqs == sorted(set(seqs)), f"gap/duplicate in {seqs}"
    assert seqs[0] == 1 and seqs[-1] == 12
    assert acc == client.snapshot("cnt_a")
    assert stream.last_seq == 12


def test_network_mid_stream_resume_no_gap_no_dup(durable_served):
    service, server, client = durable_served
    client.create_view("cnt_a", SQL_CNT_A)
    for i in range(10):
        client.batch("R", GMR({(i % 3, i): 1}))
    client.drain("cnt_a")
    stream = client.subscribe("cnt_a", from_seq=0)
    acc = GMR()
    seqs = []
    for delta in stream:
        acc.add_inplace(delta.delta)
        seqs.append(delta.seq)
        if len(seqs) == 5:
            break
    stream.close()  # disconnect mid-stream
    resumed = client.subscribe("cnt_a", from_seq=stream.last_seq)
    token = client.drain("cnt_a")
    for delta in resumed.read_until_mark(token):
        acc.add_inplace(delta.delta)
        seqs.append(delta.seq)
    resumed.close()
    assert seqs == sorted(set(seqs)), f"gap/duplicate in {seqs}"
    assert acc == client.snapshot("cnt_a")


def test_network_from_seq_error_mapping(durable_served, tmp_path):
    service, server, client = durable_served
    client.create_view("cnt_a", SQL_CNT_A)
    client.batch("R", GMR({(1, 1): 1}))
    # initial=1 and from_seq together: one or the other.
    with pytest.raises(NetError) as err:
        client._request("GET", "/views/cnt_a/deltas?initial=1&from_seq=0")
    assert err.value.status == 400
    # Garbage from_seq.
    with pytest.raises(NetError) as err:
        client._request("GET", "/views/cnt_a/deltas?from_seq=nope")
    assert err.value.status == 400
    # Unknown view.
    with pytest.raises(NetError) as err:
        client.subscribe("ghost", from_seq=0)
    assert err.value.status == 404
    # Below the horizon after a checkpoint: 410 + the horizon to go to.
    service.checkpoint()
    with pytest.raises(NetError) as err:
        client.subscribe("cnt_a", from_seq=0)
    assert err.value.status == 410
    assert "re-subscribe with initial=1" in err.value.message


def test_from_seq_on_non_durable_server_is_rejected():
    service = ViewService(catalog=CATALOG)
    with ViewServer(service) as server:
        with Client(port=server.port) as client:
            client.create_view("cnt_a", SQL_CNT_A)
            with pytest.raises(NetError) as err:
                client.subscribe("cnt_a", from_seq=0)
            assert err.value.status == 400
            assert "wal" in err.value.message.lower()


def test_durable_health_advertises_resume_horizon(durable_served):
    service, server, client = durable_served
    health = client.health()
    assert health["durable"] is True
    assert health["resume_horizon"] == 0


# ----------------------------------------------------------------------
# Bounded stream queues (the slow-reader fix)
# ----------------------------------------------------------------------


def _shrink_listener_sndbuf(server: ViewServer) -> None:
    """Make a stalled reader back-pressure the pump after a few KB
    instead of a few MB of kernel buffering.  SO_SNDBUF on the
    listener is inherited by subsequently accepted sockets, so this
    must run *before* the stream subscribes."""
    server._httpd.socket.setsockopt(
        socket.SOL_SOCKET, socket.SO_SNDBUF, 8192
    )


def _big_batch(rng: random.Random, n_rows: int = 800) -> GMR:
    return GMR({
        (rng.randrange(10_000), rng.randrange(10_000)): 1
        for _ in range(n_rows)
    })


def test_stalled_reader_queue_stays_bounded(tmp_path):
    """The ISSUE 9 regression: one stalled subscriber must not grow an
    unbounded server-side queue; its queue depth stays within the
    configured bound while a healthy subscriber keeps streaming."""
    service = DurableViewService(str(tmp_path), catalog=CATALOG,
                                 fsync="off")
    server = ViewServer(service, stream_queue_limit=8).start()
    client = Client(port=server.port)
    try:
        client.create_view("wide", "SELECT R.a, R.b, COUNT(*) FROM R "
                                   "GROUP BY R.a, R.b")
        _shrink_listener_sndbuf(server)
        stalled = client.subscribe("wide")  # never read again
        stalled._conn.sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_RCVBUF, 8192
        )
        [stalled_q] = server.hub._streams["wide"]
        healthy_client = Client(port=server.port)
        healthy = healthy_client.subscribe("wide")
        n_batches = 80
        acc = GMR()
        done = threading.Event()

        def consume():  # keep pace, unlike the stalled peer
            for delta in healthy:
                acc.add_inplace(delta.delta)
                if delta.seq >= n_batches:
                    break
            done.set()

        reader = threading.Thread(target=consume, daemon=True)
        reader.start()
        rng = random.Random(5)
        reference = GMR()
        for _ in range(n_batches):
            batch = _big_batch(rng)
            reference.add_inplace(GMR(dict(batch.data)))
            client.batch("R", batch)
        client.drain("wide")

        # The healthy subscriber receives everything despite its peer.
        assert done.wait(timeout=60)
        reader.join(timeout=5)
        assert acc == reference
        healthy.close()
        healthy_client.close()

        # The stalled reader's server-side queue respected the bound
        # and was flipped to lagged instead of growing without limit.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not stalled_q.lagged:
            time.sleep(0.01)
        assert len(stalled_q) <= 8
        assert stalled_q.lagged
        stalled.close()
    finally:
        client.close()
        server.close()
        service.close()


def test_lagging_reader_gets_typed_close_and_resumes(tmp_path):
    """A slow-but-reading subscriber is dropped with
    ``closed{reason: "lagging", resume_from}`` and recovers every
    missed delta by re-subscribing with ``from_seq``."""
    service = DurableViewService(str(tmp_path), catalog=CATALOG,
                                 fsync="off")
    server = ViewServer(service, stream_queue_limit=8).start()
    client = Client(port=server.port)
    try:
        client.create_view("wide", "SELECT R.a, R.b, COUNT(*) FROM R "
                                   "GROUP BY R.a, R.b")
        _shrink_listener_sndbuf(server)
        slow = client.subscribe("wide")
        slow._conn.sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_RCVBUF, 8192
        )
        rng = random.Random(6)
        reference = GMR()
        n_batches = 120
        for _ in range(n_batches):
            batch = _big_batch(rng)
            reference.add_inplace(GMR(dict(batch.data)))
            client.batch("R", batch)
        # Wait (bounded) for the pump to mark the stream lagged.
        [q] = server.hub._streams["wide"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not q.lagged:
            time.sleep(0.01)
        assert q.lagged, "queue never overflowed; grow the stream"

        # The reader drains what was already in flight, then sees the
        # typed close naming the seq to resume from.
        acc = GMR()
        seqs = []
        for delta in slow:
            acc.add_inplace(delta.delta)
            seqs.append(delta.seq)
        assert slow.closed_reason == "lagging"
        assert slow.resume_from == (seqs[-1] if seqs else 0)

        resumed = client.subscribe("wide", from_seq=slow.resume_from)
        token = client.drain("wide")
        for delta in resumed.read_until_mark(token):
            acc.add_inplace(delta.delta)
            seqs.append(delta.seq)
        resumed.close()
        assert seqs == sorted(set(seqs)), "gap/duplicate across resume"
        assert acc == reference
    finally:
        client.close()
        server.close()
        service.close()


def test_resumable_stream_across_lag_drop(tmp_path):
    """ResumableStream hides the drop entirely: iteration spans the
    typed close and the ``from_seq`` re-subscribe, yielding every seq
    exactly once."""
    service = DurableViewService(str(tmp_path), catalog=CATALOG,
                                 fsync="off")
    server = ViewServer(service, stream_queue_limit=8).start()
    client = Client(port=server.port)
    stream_client = Client(port=server.port)
    try:
        client.create_view("wide", "SELECT R.a, R.b, COUNT(*) FROM R "
                                   "GROUP BY R.a, R.b")
        _shrink_listener_sndbuf(server)
        rng = random.Random(8)
        reference = GMR()
        n_batches = 120
        acc = GMR()
        seqs = []
        stream = ResumableStream(stream_client, "wide",
                                 max_reconnects=20)
        done = threading.Event()

        def consume():
            for delta in stream:
                if delta.seq <= n_batches:
                    time.sleep(0.002)  # slow reader: provoke the drop
                acc.add_inplace(delta.delta)
                seqs.append(delta.seq)
                if delta.seq >= n_batches:
                    break
            done.set()

        reader = threading.Thread(target=consume, daemon=True)
        reader.start()
        for _ in range(n_batches):
            batch = _big_batch(rng)
            reference.add_inplace(GMR(dict(batch.data)))
            client.batch("R", batch)
        client.drain("wide")
        assert done.wait(timeout=60), "resumable reader never finished"
        reader.join(timeout=5)
        stream.close()
        assert seqs == sorted(set(seqs)), "gap/duplicate across resume"
        assert seqs[-1] == n_batches
        assert acc == reference
    finally:
        stream_client.close()
        client.close()
        server.close()
        service.close()


def test_resumable_stream_across_server_restart(tmp_path):
    """The in-process restart differential: a ResumableStream spans a
    full server+service teardown and a recovery on the same WAL
    directory, accumulating to exactly the recovered snapshot."""
    wal_dir = str(tmp_path / "wal")
    service = DurableViewService(wal_dir, catalog=CATALOG, fsync="off")
    service.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
    server = ViewServer(service).start()
    port = server.port
    client = Client(port=port)
    stream_client = Client(port=port)
    acc = GMR()
    seqs = []
    stream = ResumableStream(stream_client, "cnt_a", max_reconnects=50,
                             reconnect_delay_s=0.1, timeout=10.0)
    done = threading.Event()

    def consume():
        for delta in stream:
            acc.add_inplace(delta.delta)
            seqs.append(delta.seq)
            if delta.seq >= 20:
                break
        done.set()

    reader = threading.Thread(target=consume, daemon=True)
    reader.start()
    try:
        for i in range(10):
            client.batch("R", GMR({(i % 4, i): 1}))
        client.drain("cnt_a")
        # Hard stop: no final checkpoint, subscribers cut off.
        server.close()
        service.close()
        client.close()

        service = DurableViewService(wal_dir, catalog=CATALOG,
                                     fsync="off")
        assert service.recovered["seq"] == 10
        server = ViewServer(service, port=port).start()
        client = Client(port=port)
        for i in range(10, 20):
            client.batch("R", GMR({(i % 4, i): 1}))
        client.drain("cnt_a")
        assert done.wait(timeout=60), "stream never spanned the restart"
        reader.join(timeout=5)
        assert stream.reconnects >= 1
        assert seqs == sorted(set(seqs)), f"gap/duplicate in {seqs}"
        assert seqs[-1] == 20
        assert acc == client.snapshot("cnt_a")
    finally:
        stream.close()
        stream_client.close()
        client.close()
        server.close()
        service.close()


# ----------------------------------------------------------------------
# kill -9 differential (the CI crash-recovery smoke tier)
# ----------------------------------------------------------------------

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _spawn_server(*extra_args, port=0):
    """Launch ``python -m repro serve --port <port> ...``; returns
    (process, bound port) once the listen line appears."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=_REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(_REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={proc.poll()})"
            )
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    raise AssertionError("no listen line within 60s")


def _kill9(proc):
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)


def _wait_healthy(port, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            return Client(port=port, timeout=5).health()
        except Exception:
            time.sleep(0.1)
    raise AssertionError(f"server on :{port} never became healthy")


@pytest.mark.parametrize("backend", ["rivm-batch", "async:rivm-batch"])
def test_kill9_recovery_smoke(tmp_path, backend):
    """The acceptance bar: serve with a WAL, ack a randomized
    insert+delete stream, SIGKILL, restart on the same directory —
    the recovered snapshot equals an in-process reference, and a
    ``from_seq`` subscriber accumulates to exactly that snapshot."""
    wal_dir = str(tmp_path / "wal")
    batches = _random_stream(seed=2024, n_batches=40)

    reference = ViewService(catalog=CATALOG)
    reference.create_view("per_b", SQL_PER_B, backend=backend)
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))
    reference.drain()

    args = (
        "--sql", f"per_b={SQL_PER_B}", "--backends", backend,
        "--wal-dir", wal_dir, "--fsync", "always",
    )
    proc, port = _spawn_server(*args)
    try:
        client = Client(port=port)
        for relation, batch in batches:
            client.batch(relation, batch)  # ack ⇒ WAL record fsynced
        # No drain, no shutdown: async queues may still hold acked
        # batches when the process dies.  The WAL covers them.
        _kill9(proc)

        proc, port = _spawn_server(*args, port=port)
        client = Client(port=port)
        health = _wait_healthy(port)
        assert health["durable"] and health["seq"] == len(batches)
        snapshot = client.snapshot("per_b")
        assert snapshot == reference.snapshot("per_b")

        # A resumed subscriber replays the healed delta log to the
        # same state.
        stream = client.subscribe("per_b", from_seq=0)
        token = client.drain("per_b")
        acc = GMR()
        seqs = []
        for delta in stream.read_until_mark(token):
            acc.add_inplace(delta.delta)
            seqs.append(delta.seq)
        stream.close()
        assert seqs == sorted(set(seqs)), f"gap/duplicate in {seqs}"
        assert acc == snapshot

        client.shutdown_server()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    reference.drop_view("per_b")


def test_kill9_cluster_shard_recovery_smoke(tmp_path):
    """Two durable subprocess shards behind an in-process router: kill
    -9 one shard, restart it on the same WAL directory and port — the
    router's pinned reader resumes the shard stream with ``from_seq``,
    so a merged-stream subscriber accumulates to exactly the gathered
    snapshot with no gap and no duplicate."""
    from repro.cluster import ClusterRouter

    wal_dirs = [str(tmp_path / f"shard{i}") for i in range(2)]
    shard_args = [
        ("--wal-dir", wal_dirs[i], "--fsync", "always")
        for i in range(2)
    ]
    procs = [None, None]
    router = None
    client = None
    try:
        ports = []
        for i in range(2):
            procs[i], port = _spawn_server(*shard_args[i])
            ports.append(port)
        router = ClusterRouter(
            ",".join(f"127.0.0.1:{p}" for p in ports),
            CATALOG,
            reconnect_timeout_s=30.0,
            write_retry_timeout_s=30.0,
        ).start()
        router.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
        client = Client(port=router.port)
        stream = client.subscribe("cnt_a")

        reference = GMR()
        rng = random.Random(31)

        def send(n):
            for _ in range(n):
                data = {(rng.randint(1, 50), rng.randint(1, 9)): 1
                        for _ in range(3)}
                reference.add_inplace(GMR(dict(data)))
                client.batch("R", GMR(data))

        send(15)
        _kill9(procs[0])
        procs[0], _ = _spawn_server(*shard_args[0], port=ports[0])
        _wait_healthy(ports[0])
        send(15)

        token = client.drain("cnt_a")
        acc = GMR()
        seqs = []
        for delta in stream.read_until_mark(token):
            acc.add_inplace(delta.delta)
            seqs.append(delta.seq)
        stream.close()
        assert seqs == sorted(set(seqs)), f"gap/duplicate in {seqs}"
        gathered = router.snapshot("cnt_a")
        assert acc == gathered
        # The gathered state equals the reference aggregate: every
        # acked batch survived the shard kill.
        expected = GMR()
        counts: dict = {}
        for (a, _b), mult in reference.data.items():
            counts[a] = counts.get(a, 0) + mult
        for a, count in counts.items():
            if count:
                expected.add_inplace(GMR({(a,): count}))
        assert gathered == expected
    finally:
        if client is not None:
            client.close()
        if router is not None:
            router.close()
        for proc in procs:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
