"""Partitioning-strategy exploration (the Section 6.2 future-work hook)."""

import pytest

from repro.compiler import compile_query
from repro.distributed import (
    PartitioningAdvisor,
    SimulatedCluster,
    candidate_partitionings,
    estimate_partitioning_cost,
)
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import TPCH_QUERIES


def _program(name="Q3"):
    spec = TPCH_QUERIES[name]
    return spec, compile_query(spec.query, name, updatable=spec.updatable)


def test_candidates_include_default_and_driver_only():
    spec, program = _program()
    names = [c.name for c in candidate_partitionings(program, spec.key_hints)]
    assert names[0] == "default"
    assert "driver-only" in names
    assert len(set(names)) == len(names)


def test_every_candidate_compiles():
    spec, program = _program()
    for cand in candidate_partitionings(program, spec.key_hints):
        cost, dprog = estimate_partitioning_cost(program, cand)
        assert cost.transformers >= 0
        assert cost.jobs >= 1
        assert dprog.triggers


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q6", "Q12"])
def test_every_candidate_is_correct_on_cluster(name):
    """Partitioning is a performance knob, never a correctness one."""
    spec, program = _program(name)
    prepared = prepare_stream(spec, 30, sf=0.0002, max_batches=4)
    for cand in candidate_partitionings(program, spec.key_hints):
        _, dprog = estimate_partitioning_cost(program, cand)
        cluster = SimulatedCluster(dprog, n_workers=3)
        _preload_static(cluster, prepared, dprog)
        reference = prepared.fresh_static()
        for relation, batch in prepared.batches:
            cluster.on_batch(relation, batch)
            reference.apply_update(relation, batch)
        assert cluster.snapshot() == evaluate(spec.query, reference), (
            f"{name} under {cand.name}"
        )


def test_advisor_ranks_default_heuristic_well():
    """The paper's heuristic should be at or near the top for TPC-H Q3
    (that is why the paper chose it)."""
    spec, program = _program("Q3")
    ranking = PartitioningAdvisor(program, spec.key_hints).rank()
    names = [c.candidate for c in ranking]
    assert names.index("default") == 0
    # Costs are sorted (driver-only pinned last).
    keys = [c.key for c in ranking[:-1]]
    assert keys == sorted(keys)


def test_advisor_best_returns_compiled_program():
    spec, program = _program("Q3")
    cost, dprog = PartitioningAdvisor(program, spec.key_hints).best()
    assert cost.candidate == "default"
    assert dprog.triggers


def test_driver_only_is_reported_last():
    spec, program = _program("Q6")
    ranking = PartitioningAdvisor(program, spec.key_hints).rank()
    assert ranking[-1].candidate == "driver-only"
