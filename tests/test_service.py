"""The multi-view serving API: ViewService sessions.

The core invariant (the acceptance bar of the service layer): a
service hosting several views — mixed SQL and workload-style specs, on
mixed backends — over one shared insert+delete stream must, for every
view, deliver subscription deltas whose accumulation equals
``snapshot(view)``, which in turn matches both a single-backend
reference run and re-evaluation over the accumulated base data.
"""

import pytest

from repro.eval import Database, evaluate
from repro.exec import available_backends, create_backend
from repro.harness import ViewDef, measure_service_throughput
from repro.query.builder import join, rel, sum_over
from repro.ring import GMR
from repro.service import ServiceError, ViewDelta, ViewService
from repro.workloads import QuerySpec, as_query_spec

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

#: one shared stream over three relations, with deletions (negative
#: multiplicities) interleaved with insertions
STREAM = [
    ("R", {(1, 10): 1, (2, 20): 1, (3, 10): 1}),
    ("S", {(10, 5): 1, (20, 6): 2}),
    ("T", {(1, 4): 1, (2, 9): 1}),
    ("R", {(1, 10): -1, (4, 20): 1}),
    ("S", {(20, 6): -1, (10, 7): 1}),
    ("T", {(2, 9): -1, (4, 9): 1}),
    ("R", {(3, 10): -1, (2, 20): -1}),
]

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
EXPR_CNT_A = sum_over(["a"], rel("R", "a", "b"))
SPEC_BY_D = QuerySpec(
    name="by_d",
    query=sum_over(["d"], join(rel("T", "a", "d"), rel("R", "a", "b"))),
    updatable=frozenset({"R", "T"}),
)


def _stream(service: ViewService):
    for relation, data in STREAM:
        service.on_batch(relation, GMR(dict(data)))


def _reference_db() -> Database:
    db = Database()
    for relation, data in STREAM:
        db.apply_update(relation, GMR(dict(data)))
    return db


def _accumulating_subscriber(service, name):
    acc = GMR()
    service.subscribe(name, lambda event: acc.add_inplace(event.delta))
    return acc


def _single_backend_reference(backend_name, spec) -> GMR:
    """The same view maintained alone, outside any service."""
    engine = create_backend(backend_name, spec)
    for relation, data in STREAM:
        if relation in spec.updatable:
            engine.on_batch(relation, GMR(dict(data)))
    return engine.snapshot()


# ----------------------------------------------------------------------
# The acceptance invariant
# ----------------------------------------------------------------------


def test_mixed_views_mixed_backends_over_one_stream():
    """≥3 views (SQL + algebra + workload-style spec) on different
    backends: accumulated deltas == snapshot == single-backend run."""
    service = ViewService(catalog=CATALOG)
    views = {
        "per_b": (SQL_PER_B, "rivm-batch"),
        "cnt_a": (EXPR_CNT_A, "reeval"),
        "by_d": (SPEC_BY_D, "rivm-specialized"),
    }
    accs = {}
    for name, (source, backend) in views.items():
        service.create_view(name, source, backend=backend)
        accs[name] = _accumulating_subscriber(service, name)

    _stream(service)

    reference = _reference_db()
    for name, (source, backend) in views.items():
        handle = service.view(name)
        snap = service.snapshot(name)
        assert accs[name] == snap, f"{name}: deltas diverged from snapshot"
        assert snap == _single_backend_reference(backend, handle.spec), (
            f"{name}: service run diverged from single-backend run"
        )
        assert snap == evaluate(handle.spec.query, reference), (
            f"{name}: diverged from re-evaluation"
        )


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_service_invariant_on_every_backend(backend):
    """Each registered backend hosts the three-view session: deltas
    accumulate to the snapshot and match the single-backend run."""
    service = ViewService(catalog=CATALOG)
    for name, source in (
        ("per_b", SQL_PER_B),
        ("cnt_a", EXPR_CNT_A),
        ("by_d", SPEC_BY_D),
    ):
        service.create_view(name, source, backend=backend)
    accs = {n: _accumulating_subscriber(service, n) for n in service.views()}

    _stream(service)

    reference = _reference_db()
    for name in service.views():
        handle = service.view(name)
        snap = service.snapshot(name)
        assert accs[name] == snap, f"{backend}/{name}: deltas diverged"
        assert snap == _single_backend_reference(backend, handle.spec)
        assert snap == evaluate(handle.spec.query, reference)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_batches_route_only_to_dependent_views():
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)  # streams R only
    service.create_view("by_d", SPEC_BY_D)    # streams R and T
    assert service.on_batch("R", GMR({(1, 10): 1})) == ("cnt_a", "by_d")
    assert service.on_batch("T", GMR({(1, 4): 1})) == ("by_d",)
    assert service.on_batch("S", GMR({(10, 5): 1})) == ()
    assert service.view("cnt_a").batches_applied == 1
    assert service.view("by_d").batches_applied == 2


def test_static_relations_are_not_routed():
    """A view may pin a referenced relation as static; batches for it
    skip the view instead of raising (no trigger exists)."""
    service = ViewService(catalog=CATALOG)
    service.create_view(
        "by_d", SPEC_BY_D.query, updatable=frozenset({"T"})
    )
    assert service.on_batch("R", GMR({(1, 10): 1})) == ()
    assert service.view("by_d").batches_applied == 0


# ----------------------------------------------------------------------
# Warm starts and the shared base database
# ----------------------------------------------------------------------


def test_late_view_initializes_from_accumulated_base():
    service = ViewService(catalog=CATALOG)
    service.on_batch("R", GMR({(1, 10): 1, (2, 20): 1}))
    service.create_view("cnt_a", EXPR_CNT_A)
    assert service.snapshot("cnt_a") == GMR({(1,): 1, (2,): 1})


def test_track_base_off_keeps_base_cold():
    service = ViewService(catalog=CATALOG, track_base=False)
    service.on_batch("R", GMR({(1, 10): 1}))
    service.create_view("cnt_a", EXPR_CNT_A)
    assert service.snapshot("cnt_a").is_zero()


def test_preloaded_static_tables_warm_views():
    service = ViewService(catalog=CATALOG)
    service.load("R", [(1, 10), (2, 20)])
    service.load("T", [(1, 4)])
    service.create_view("by_d", SPEC_BY_D)
    assert service.snapshot("by_d") == GMR({(4,): 1})


def test_subscribe_initial_does_not_double_count_unobserved_batches():
    """Batches processed while nobody listened are covered by the
    initial-snapshot event, not replayed in the next per-batch delta."""
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    service.on_batch("R", GMR({(1, 10): 1}))  # no subscribers yet

    acc = GMR()
    service.subscribe(
        "cnt_a", lambda event: acc.add_inplace(event.delta), initial=True
    )
    assert acc == service.snapshot("cnt_a")
    service.on_batch("R", GMR({(2, 20): 1}))
    assert acc == service.snapshot("cnt_a")


def test_subscribe_initial_flushes_pending_to_existing_subscribers():
    """A joining initial=True subscriber re-baselines the changefeed;
    deltas owed to an earlier subscriber are flushed first, not lost."""
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    early = GMR()
    sub = service.subscribe("cnt_a", lambda ev: early.add_inplace(ev.delta))
    service.on_batch("R", GMR({(1, 10): 1}))
    sub.cancel()
    service.on_batch("R", GMR({(2, 20): 1}))  # coalesces, sub cancelled
    rejoined = GMR(dict(early.data))
    service.subscribe("cnt_a", lambda ev: rejoined.add_inplace(ev.delta))

    late = GMR()
    service.subscribe(
        "cnt_a", lambda ev: late.add_inplace(ev.delta), initial=True
    )
    service.on_batch("R", GMR({(3, 30): 1}))
    snap = service.snapshot("cnt_a")
    assert late == snap
    assert rejoined == snap


def test_subscribe_initial_seeds_warm_accumulator():
    service = ViewService(catalog=CATALOG)
    service.load("R", [(1, 10), (2, 20)])
    service.create_view("cnt_a", EXPR_CNT_A)

    acc = GMR()
    events = []

    def on_delta(event: ViewDelta):
        events.append(event)
        acc.add_inplace(event.delta)

    service.subscribe("cnt_a", on_delta, initial=True)
    assert events and events[0].relation is None  # the snapshot event
    service.on_batch("R", GMR({(1, 10): 1, (5, 30): 1}))
    assert acc == service.snapshot("cnt_a")


# ----------------------------------------------------------------------
# Subscriptions
# ----------------------------------------------------------------------


def test_cancelled_subscription_stops_delivery():
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    events = []
    sub = service.subscribe("cnt_a", events.append)
    service.on_batch("R", GMR({(1, 10): 1}))
    sub.cancel()
    service.on_batch("R", GMR({(2, 20): 1}))
    assert len(events) == 1


def test_changefeed_coalesces_while_nobody_listens():
    """Deltas are not computed without subscribers, but a late
    subscriber's first event covers everything missed."""
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    service.on_batch("R", GMR({(1, 10): 1}))
    service.on_batch("R", GMR({(2, 20): 1}))
    acc = _accumulating_subscriber(service, "cnt_a")
    service.on_batch("R", GMR({(2, 20): 1, (1, 10): -1}))
    assert acc == service.snapshot("cnt_a")


def test_zero_deltas_are_not_delivered():
    service = ViewService(catalog=CATALOG)
    service.create_view("per_b", SQL_PER_B, backend="rivm-batch")
    events = []
    service.subscribe("per_b", events.append)
    # R rows with no matching S rows leave the aggregate unchanged.
    service.on_batch("R", GMR({(1, 10): 1}))
    assert events == []
    assert service.view("per_b").deltas_delivered == 0


def test_multiple_subscribers_share_one_delta():
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    seen_a, seen_b = [], []
    service.subscribe("cnt_a", seen_a.append)
    service.subscribe("cnt_a", seen_b.append)
    service.on_batch("R", GMR({(1, 10): 1}))
    assert len(seen_a) == len(seen_b) == 1
    assert seen_a[0] is seen_b[0]
    assert service.view("cnt_a").deltas_delivered == 1


# ----------------------------------------------------------------------
# Lifecycle and errors
# ----------------------------------------------------------------------


def test_drop_view_removes_and_cancels():
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    sub = service.subscribe("cnt_a", lambda e: None)
    service.drop_view("cnt_a")
    assert "cnt_a" not in service
    assert not sub.active
    service.on_batch("R", GMR({(1, 10): 1}))  # routes nowhere, no error
    with pytest.raises(ServiceError, match="unknown view"):
        service.snapshot("cnt_a")


def test_subscriber_may_drop_views_mid_batch():
    """A callback reacting to a delta can mutate the view set without
    corrupting the routing loop or skipping the base update."""
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    service.create_view("by_d", SPEC_BY_D)

    def reaper(event):
        if "by_d" in service:
            service.drop_view("by_d")

    service.subscribe("cnt_a", reaper)
    service.on_batch("R", GMR({(1, 10): 1}))
    assert "by_d" not in service
    assert service.base.get_view("R") == GMR({(1, 10): 1})


def test_duplicate_view_name_raises():
    service = ViewService(catalog=CATALOG)
    service.create_view("cnt_a", EXPR_CNT_A)
    with pytest.raises(ServiceError, match="already exists"):
        service.create_view("cnt_a", EXPR_CNT_A)


def test_unknown_backend_raises_with_choices():
    service = ViewService(catalog=CATALOG)
    with pytest.raises(ServiceError, match="rivm-batch"):
        service.create_view("v", EXPR_CNT_A, backend="warp-drive")


def test_sql_view_without_catalog_raises():
    service = ViewService()
    with pytest.raises(ServiceError, match="catalog"):
        service.create_view("v", "SELECT COUNT(*) FROM R")


def test_register_table_extends_catalog():
    service = ViewService()
    service.register_table("R", ("a", "b"))
    service.create_view("v", "SELECT COUNT(*) FROM R")
    service.on_batch("R", GMR({(1, 2): 1}))
    assert service.snapshot("v") == GMR({(): 1})


# ----------------------------------------------------------------------
# as_query_spec: the shared creation path
# ----------------------------------------------------------------------


def test_as_query_spec_passthrough_and_rename():
    spec = as_query_spec(SPEC_BY_D)
    assert spec is SPEC_BY_D
    renamed = as_query_spec(SPEC_BY_D, name="other")
    assert renamed.name == "other"
    assert renamed.query is SPEC_BY_D.query


def test_as_query_spec_from_expr_defaults_updatable():
    spec = as_query_spec(EXPR_CNT_A, name="v")
    assert spec.updatable == frozenset({"R"})


def test_as_query_spec_rejects_garbage():
    with pytest.raises(TypeError, match="QuerySpec"):
        as_query_spec(42)


# ----------------------------------------------------------------------
# The multi-view harness runner
# ----------------------------------------------------------------------


def test_measure_service_throughput_micro():
    from repro.workloads import MICRO_QUERIES

    result = measure_service_throughput(
        [
            ViewDef("m1", MICRO_QUERIES["M1"]),
            ViewDef("cnt", EXPR_CNT_A, "reeval"),
        ],
        batch_size=20,
        workload="micro",
        sf=0.002,
        max_batches=10,
    )
    assert len(result.views) == 2
    assert result.n_tuples > 0
    assert result.routed_tuples >= result.n_tuples
    assert result.throughput > 0
    by_name = {v.name: v for v in result.views}
    assert by_name["cnt"].streamed == ("R",)
    assert by_name["cnt"].batches_applied > 0


def test_measure_service_throughput_widens_shared_static_relations():
    """A relation streamed by one view must get triggers in every view
    that references it, even if that view declared it static."""
    narrow = QuerySpec(
        name="narrow",
        query=SPEC_BY_D.query,
        updatable=frozenset({"T"}),  # references R but pins it static
    )
    result = measure_service_throughput(
        [ViewDef("narrow", narrow), ViewDef("cnt", EXPR_CNT_A)],
        batch_size=20,
        workload="micro",
        sf=0.002,
        max_batches=10,
    )
    by_name = {v.name: v for v in result.views}
    # cnt streams R, so narrow was widened to stream R too.
    assert by_name["narrow"].streamed == ("R", "T")


# ----------------------------------------------------------------------
# Changefeed delivery regressions (drop-time loss, seq attribution,
# nested async wrappers)
# ----------------------------------------------------------------------


def test_drop_view_delivers_deltas_of_queued_async_batches():
    """Regression: dropping an async view with a non-empty queue must
    drain *before* cancelling subscriptions — the admitted updates'
    deltas were previously flushed into the inner backend but silently
    never delivered."""
    service = ViewService(catalog=CATALOG)
    # autostart=False keeps the batch queued deterministically until
    # drop_view's close() flushes it.
    service.create_view(
        "cnt_a", EXPR_CNT_A, backend="async:rivm-batch", autostart=False
    )
    events = []
    service.subscribe("cnt_a", events.append)
    service.on_batch("R", GMR({(1, 10): 1, (2, 20): 1}))

    service.drop_view("cnt_a")

    acc = GMR()
    for event in events:
        acc.add_inplace(event.delta)
    assert acc == GMR({(1,): 1, (2,): 1}), (
        "deltas of batches queued at drop time were lost"
    )
    assert events[0].seq == 1


def test_async_coalesced_flush_carries_max_merged_seq():
    """Regression: a coalesced flush used to stamp the service seq read
    at flush time — which can belong to later batches the flush does
    not include.  The event must carry the highest seq actually merged."""
    service = ViewService(catalog=CATALOG)
    service.create_view(
        "cnt_a", EXPR_CNT_A, backend="async:rivm-batch", autostart=False
    )
    service.create_view("per_b", SQL_PER_B)  # streams R and S
    events = []
    service.subscribe("cnt_a", events.append)

    # Seqs 1..3 stream R (queued, unflushed, for cnt_a) ...
    for a in (1, 2, 3):
        service.on_batch("R", GMR({(a, 10): 1}))
    # ... seqs 4..5 stream S, advancing the service seq past what the
    # coalesced flush below will contain.
    service.on_batch("S", GMR({(10, 5): 1}))
    service.on_batch("S", GMR({(10, 6): 1}))

    service.drain("cnt_a")  # starts the batcher; flushes the backlog

    assert events, "the drained flush published nothing"
    seqs = [event.seq for event in events]
    assert max(seqs) == 3, (
        f"coalesced flush misattributed: got seqs {seqs}, but the view "
        "only contains batches 1..3"
    )
    assert seqs == sorted(seqs)
    acc = GMR()
    for event in events:
        acc.add_inplace(event.delta)
    assert acc == service.snapshot("cnt_a")
    service.drop_view("cnt_a")


def test_nested_async_wrapper_rejected_everywhere():
    """``async:async:<b>`` must fail with an explanatory ValueError
    naming the single-wrapped backend — via create_backend and via
    ViewService.create_view alike (not the generic unknown-backend
    message)."""
    from repro.exec import is_registered

    spec = as_query_spec(EXPR_CNT_A, name="v")
    with pytest.raises(ValueError, match=r"use 'async:rivm-batch'"):
        create_backend("async:async:rivm-batch", spec)
    # Deeper stacks name the innermost backend too.
    with pytest.raises(ValueError, match=r"use 'async:reeval'"):
        create_backend("async:async:async:reeval", spec)

    service = ViewService(catalog=CATALOG)
    with pytest.raises(ValueError, match="nested async wrapper"):
        service.create_view(
            "v", EXPR_CNT_A, backend="async:async:rivm-batch"
        )
    assert "v" not in service
    assert not is_registered("async:async:rivm-batch")


def test_one_failing_view_does_not_half_route_the_batch():
    """A backend raising mid-routing must not leave the batch applied
    to some dependent views and missing from others: the service routes
    it everywhere else (and into the base) first, then re-raises."""
    service = ViewService(catalog=CATALOG)
    service.create_view("healthy", EXPR_CNT_A)
    service.create_view("doomed", EXPR_CNT_A)

    class Boom(RuntimeError):
        pass

    def explode(relation, batch):
        raise Boom("maintenance failed")

    service.view("doomed").backend.on_batch = explode
    with pytest.raises(Boom):
        service.on_batch("R", GMR({(1, 10): 1}))
    assert service.snapshot("healthy") == GMR({(1,): 1}), (
        "the healthy view missed a batch because a sibling failed"
    )
    assert service.base.get_view("R") == GMR({(1, 10): 1})
    assert service.seq == 1  # the seq was consumed exactly once
    assert service.view("healthy").batches_applied == 1
    assert service.view("doomed").batches_applied == 0
