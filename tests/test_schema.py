"""Unit tests for schema and variable analysis."""

import pytest

from repro.query import (
    assign,
    base_relations,
    cmp,
    const,
    delta,
    exists,
    free_vars,
    join,
    out_cols,
    query_degree,
    rel,
    rename_columns,
    substitute,
    sum_over,
    union,
    value,
)
from repro.query.schema import delta_relations, has_relations


def test_out_cols_rel():
    assert out_cols(rel("R", "A", "B")) == ("A", "B")


def test_out_cols_join_order_of_first_appearance():
    q = join(rel("R", "A", "B"), rel("S", "B", "C"))
    assert out_cols(q) == ("A", "B", "C")


def test_out_cols_sum():
    q = sum_over(["B"], rel("R", "A", "B"))
    assert out_cols(q) == ("B",)


def test_out_cols_interpreted_empty():
    assert out_cols(const(2)) == ()
    assert out_cols(cmp("A", "<", 1)) == ()
    assert out_cols(value("A")) == ()


def test_out_cols_assign_value():
    assert out_cols(assign("X", "A")) == ("X",)


def test_out_cols_assign_query_extends_child():
    q = assign("X", sum_over(["B"], rel("S", "B", "C")))
    assert out_cols(q) == ("B", "X")


def test_out_cols_exists_preserves_child():
    q = exists(sum_over(["A"], rel("R", "A", "B")))
    assert out_cols(q) == ("A",)


def test_out_cols_union_order_from_first():
    q = union(rel("R", "A", "B"), rel("S", "B", "A"))
    assert out_cols(q) == ("A", "B")


def test_union_schema_mismatch_raises():
    q = union(rel("R", "A"), rel("S", "B"))
    with pytest.raises(ValueError):
        out_cols(q)


def test_free_vars_of_relations_empty():
    assert free_vars(rel("R", "A", "B")) == frozenset()
    assert free_vars(delta("R", "A")) == frozenset()


def test_free_vars_cmp():
    assert free_vars(cmp("A", "<", "B")) == frozenset({"A", "B"})


def test_free_vars_join_left_to_right_binding():
    # R binds A; the comparison's A is satisfied, B remains free.
    q = join(rel("R", "A"), cmp("A", "<", "B"))
    assert free_vars(q) == frozenset({"B"})


def test_free_vars_join_order_matters():
    # The comparison precedes its binder, so A is (operationally) free.
    q = join(cmp("A", "<", 5), rel("R", "A"))
    assert free_vars(q) == frozenset({"A"})


def test_free_vars_correlated_subquery():
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    assert free_vars(qn) == frozenset({"B"})
    outer = join(rel("R", "A", "B"), assign("X", qn), cmp("A", "<", "X"))
    assert free_vars(outer) == frozenset()


def test_base_and_delta_relations():
    q = sum_over(["B"], join(delta("R", "A", "B"), rel("S", "B", "C")))
    assert base_relations(q) == frozenset({"S"})
    assert delta_relations(q) == frozenset({"R"})


def test_has_relations():
    assert has_relations(rel("R", "A"))
    assert has_relations(exists(delta("R", "A")))
    assert not has_relations(cmp("A", "<", 1))
    assert not has_relations(assign("X", "A"))


def test_query_degree():
    q = join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
    assert query_degree(q) == 3
    assert query_degree(delta("R", "A")) == 0
    assert query_degree(const(1)) == 0


def test_rename_columns_deep():
    q = sum_over(
        ["B"],
        join(rel("R", "A", "B"), cmp("A", "<", 5), assign("X", "A")),
    )
    r = rename_columns(q, {"A": "A1", "B": "B1"})
    assert out_cols(r) == ("B1",)
    assert "A1" in repr(r)
    assert "A " not in repr(r)


def test_rename_columns_assign_query():
    q = assign("X", sum_over([], join(rel("S", "B2"), cmp("B", "==", "B2"))))
    r = rename_columns(q, {"X": "Y", "B": "B0"})
    assert out_cols(r) == ("Y",)
    assert free_vars(r) == frozenset({"B0"})


def test_substitute_replaces_subtrees():
    # Note: the join() builder flattens, so nest via Sum to keep the
    # inner expression as a distinct node.
    inner = sum_over(["B"], join(rel("S", "B", "C"), rel("T", "C", "D")))
    q = sum_over(["B"], join(rel("R", "A", "B"), inner))
    replaced = substitute(q, {inner: rel("M_ST", "B")})
    assert base_relations(replaced) == frozenset({"R", "M_ST"})


def test_substitute_bottom_up():
    # Substitution applies to children first, then the rebuilt parent.
    a = rel("R", "A")
    b = rel("S", "A")
    q = join(a, b)
    out = substitute(q, {a: b, join(b, b): rel("M", "A")})
    assert out == rel("M", "A")
