"""The network serving frontend: ViewServer + Client over real sockets.

The acceptance bar (ISSUE 5): randomized insert+delete streams driven
through ``repro.net.Client`` against a live server must produce
snapshots identical to the same stream on an in-process ``ViewService``
— for a synchronous and an ``async:`` backend — and deltas accumulated
off a push subscription must equal the final snapshot.  Around that:
wire-codec round trips, lifecycle over HTTP (including the
drain-before-cancel drop ordering observable from a remote stream),
error mapping, concurrent network producers, and the smoke tests CI
runs on every Python version.
"""

import random
import re
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.net import Client, NetError, ViewServer
from repro.net.wire import decode_gmr, encode_gmr
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
SQL_CNT_A = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"


def _random_stream(seed: int, n_batches: int) -> list[tuple[str, GMR]]:
    """Deterministic insert+delete batches over R/S/T (deletions only
    remove rows inserted earlier in the stream)."""
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {"R": [], "S": [], "T": []}
    batches: list[tuple[str, GMR]] = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 5)):
            if live[relation] and rng.random() < 0.35:
                victim = rng.choice(live[relation])
                live[relation].remove(victim)
                data[victim] = data.get(victim, 0) - 1
            else:
                row = (rng.randint(1, 8), rng.randint(1, 15))
                live[relation].append(row)
                data[row] = data.get(row, 0) + 1
        if data:
            batches.append((relation, GMR(data)))
    return batches


@pytest.fixture()
def served():
    """A live server over a fresh session, plus a connected client."""
    service = ViewService(catalog=CATALOG)
    server = ViewServer(service).start()
    client = Client(port=server.port)
    try:
        yield service, server, client
    finally:
        client.close()
        server.close()


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


def test_gmr_wire_roundtrip():
    cases = [
        GMR(),
        GMR({(1, 2): 1}),
        GMR({(1, "x"): -3, (2, "y"): 2}),
        GMR({(1.5, None, True): 2.25, (): 7}),
    ]
    for gmr in cases:
        assert decode_gmr(encode_gmr(gmr)) == gmr


def test_gmr_wire_rejects_malformed():
    with pytest.raises(ValueError, match="list"):
        decode_gmr({"not": "a list"})
    with pytest.raises(ValueError, match="pair"):
        decode_gmr([[1, 2, 3]])
    with pytest.raises(ValueError, match="row"):
        decode_gmr([["nope", 1]])
    with pytest.raises(ValueError, match="multiplicity"):
        decode_gmr([[[1, 2], "many"]])


def test_duplicate_wire_rows_accumulate():
    assert decode_gmr([[[1], 2], [[1], 3]]) == GMR({(1,): 5})
    assert decode_gmr([[[1], 2], [[1], -2]]).is_zero()


# ----------------------------------------------------------------------
# The end-to-end differential invariant (acceptance criterion)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["rivm-batch", "async:rivm-batch"])
def test_differential_network_vs_in_process(served, backend):
    """The same randomized insert+delete stream, once over the wire and
    once in process, yields identical snapshots — and the deltas read
    off the wire accumulate to exactly that snapshot."""
    service, server, client = served
    batches = _random_stream(seed=2016, n_batches=80)

    reference = ViewService(catalog=CATALOG)
    reference.create_view("per_b", SQL_PER_B, backend=backend)
    reference.create_view("cnt_a", SQL_CNT_A, backend=backend)
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))
    reference.drain()

    client.create_view("per_b", SQL_PER_B, backend=backend)
    client.create_view("cnt_a", SQL_CNT_A, backend=backend)
    streams = {
        name: client.subscribe(name) for name in ("per_b", "cnt_a")
    }
    for relation, batch in batches:
        client.batch(relation, batch)
    token = client.drain()

    try:
        for name in ("per_b", "cnt_a"):
            over_wire = client.snapshot(name)
            in_process = reference.snapshot(name)
            assert over_wire == in_process, (
                f"{name}/{backend}: network run diverged from in-process"
            )
            deltas = streams[name].read_until_mark(token)
            acc = GMR()
            for delta in deltas:
                acc.add_inplace(delta.delta)
            assert acc == over_wire, (
                f"{name}/{backend}: wire deltas diverged from snapshot"
            )
            seqs = [d.seq for d in deltas]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), (
                f"{name}/{backend}: non-increasing seqs {seqs[:20]}"
            )
    finally:
        for stream in streams.values():
            stream.close()
        for name in ("per_b", "cnt_a"):
            reference.drop_view(name)


def test_concurrent_network_producers_match_reference(served):
    """N client connections post concurrently; the server-side lock
    makes the result equal a single-threaded in-process run."""
    service, server, client = served
    batches = _random_stream(seed=99, n_batches=60)
    client.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")

    reference = ViewService(catalog=CATALOG)
    reference.create_view("cnt_a", SQL_CNT_A, backend="rivm-batch")
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))

    errors = []

    def produce(share):
        producer = Client(port=server.port)
        try:
            for relation, batch in share:
                producer.batch(relation, batch)
        except BaseException as exc:
            errors.append(exc)
        finally:
            producer.close()

    threads = [
        threading.Thread(target=produce, args=(batches[i::4],), daemon=True)
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "network producer wedged"
    assert not errors, f"producer raised: {errors[0]!r}"
    assert client.snapshot("cnt_a") == reference.snapshot("cnt_a")
    assert client.stats()["seq"] == len(batches)


# ----------------------------------------------------------------------
# Lifecycle and push-stream semantics over the wire
# ----------------------------------------------------------------------


def test_subscribe_initial_seeds_accumulator_over_wire(served):
    service, server, client = served
    client.create_view("cnt_a", SQL_CNT_A)
    client.batch("R", GMR({(1, 10): 1, (2, 20): 1}))  # before subscribing
    stream = client.subscribe("cnt_a", initial=True)
    client.batch("R", GMR({(3, 30): 1}))
    token = client.drain()
    deltas = stream.read_until_mark(token)
    acc = GMR()
    for delta in deltas:
        acc.add_inplace(delta.delta)
    assert acc == client.snapshot("cnt_a")
    assert deltas[0].relation is None  # the synthetic snapshot event
    stream.close()


def test_drop_view_over_wire_delivers_queued_deltas_then_closes(served):
    """The drop ordering fix, observed from a remote stream: a batch
    still queued in the async backend at drop time arrives as a delta
    *before* the stream's closed event."""
    service, server, client = served
    client.create_view(
        "cnt_a", SQL_CNT_A, backend="async:rivm-batch", autostart=False
    )
    stream = client.subscribe("cnt_a")
    client.batch("R", GMR({(1, 10): 1, (2, 20): 1}))  # queued, unflushed
    client.drop_view("cnt_a")
    deltas = list(stream)
    assert stream.closed_reason == "view dropped"
    acc = GMR()
    for delta in deltas:
        acc.add_inplace(delta.delta)
    assert acc == GMR({(1,): 1, (2,): 1}), (
        "deltas queued at drop time were lost over the wire"
    )
    assert "cnt_a" not in service


def test_server_close_ends_streams_cleanly(served):
    service, server, client = served
    client.create_view("cnt_a", SQL_CNT_A)
    stream = client.subscribe("cnt_a")
    server.close()
    assert list(stream) == []
    assert stream.closed_reason == "server closing"


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------


def test_error_statuses(served):
    service, server, client = served
    with pytest.raises(NetError) as err:
        client.snapshot("ghost")
    assert err.value.status == 404 and "unknown view" in err.value.message

    client.create_view("cnt_a", SQL_CNT_A)
    with pytest.raises(NetError) as err:
        client.create_view("cnt_a", SQL_CNT_A)
    assert err.value.status == 409

    with pytest.raises(NetError) as err:
        client.create_view("v2", SQL_CNT_A, backend="warp-drive")
    assert err.value.status == 400 and "warp-drive" in err.value.message

    # The nested-async rejection travels with its explanatory message.
    with pytest.raises(NetError) as err:
        client.create_view("v3", SQL_CNT_A, backend="async:async:rivm-batch")
    assert err.value.status == 400
    assert "use 'async:rivm-batch'" in err.value.message

    with pytest.raises(NetError) as err:
        client._request("POST", "/batch/R", {"not": "a gmr"})
    assert err.value.status == 400

    with pytest.raises(NetError) as err:
        client.subscribe("ghost")
    assert err.value.status == 404

    with pytest.raises(NetError) as err:
        client._request("GET", "/no/such/route")
    assert err.value.status == 404


# ----------------------------------------------------------------------
# Smoke tests (run per Python version in CI)
# ----------------------------------------------------------------------


def test_server_smoke():
    """start server → create view over HTTP → stream a batch → assert
    snapshot → clean shutdown (the CI smoke contract)."""
    service = ViewService(catalog=CATALOG)
    with ViewServer(service) as server:
        with Client(port=server.port) as client:
            assert client.health()["status"] == "ok"
            client.create_view("per_b", SQL_PER_B)
            client.batch("R", GMR({(1, 10): 1}))
            client.batch("S", GMR({(10, 5): 1}))
            assert client.snapshot("per_b") == GMR({(10,): 1})
            stats = client.view_stats("per_b")
            assert stats["batches_applied"] == 2
            client.drop_view("per_b")
    # A closed server refuses connections; a second close is a no-op.
    server.close()
    with pytest.raises(Exception):
        Client(port=server.port, timeout=2).health()


def test_cli_serve_port_smoke(tmp_path):
    """``python -m repro serve --port 0`` hosts real sockets: a client
    creates a view, streams a batch, reads the snapshot, and shuts the
    server down remotely; the process exits 0."""
    repo_root = Path(__file__).resolve().parent.parent
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--sql", f"cnt={SQL_CNT_A}", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=repo_root,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(repo_root / "src"),
        },
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"no listen line, got {line!r}"
        client = Client(port=int(match.group(1)))
        client.create_view("per_b", SQL_PER_B)
        client.batch("R", GMR({(1, 10): 1, (2, 10): 1}))
        client.batch("S", GMR({(10, 5): 1}))
        assert client.snapshot("per_b") == GMR({(10,): 2})
        assert set(client.views()) == {"cnt", "per_b"}
        client.shutdown_server()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


# ----------------------------------------------------------------------
# The network harness runner
# ----------------------------------------------------------------------


def test_measure_network_throughput_micro():
    from repro.harness import ViewDef, measure_network_throughput
    from repro.workloads import MICRO_QUERIES

    result = measure_network_throughput(
        [
            ViewDef("m1", MICRO_QUERIES["M1"]),
            ViewDef("m2", MICRO_QUERIES["M2"], "async:rivm-batch"),
        ],
        batch_size=20,
        workload="micro",
        sf=0.004,
        max_batches=16,
        n_clients=3,
        subscribers_per_view=2,
    )
    assert result.n_tuples > 0 and result.n_batches > 0
    assert result.n_clients == 3 and result.subscribers_per_view == 2
    assert result.throughput > 0
    assert all(v.consistent for v in result.views), (
        "wire-accumulated deltas diverged from snapshots"
    )
