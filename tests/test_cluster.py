"""The sharded serving cluster: router, shard map, merged streams.

The acceptance bar (ISSUE 7): randomized insert+delete streams routed
through a :class:`~repro.cluster.ClusterRouter` over 1/2/4 shard
ViewServers must produce snapshots and merged delta streams identical
to the same stream on a single-process ``ViewService`` — including
across a forced shard restart.  Around that: shard-map unit behavior
(topology parsing, split determinism, range boundaries), partition-plan
inference, the cross-shard drain barrier (marks released only after
every shard acks), per-subscriber seq monotonicity under concurrent
shard interleavings, shard death surfacing as a typed ``closed``
envelope, bearer auth on both tiers, inconsistent-read snapshots, and
the CLI ``route`` smoke test CI runs per Python version.
"""

import contextlib
import random
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import ClusterRouter, ShardMap, parse_shard_spec
from repro.exec import BackendError
from repro.net import Client, NetError, ViewServer
from repro.query.ast import Rel
from repro.query.builder import join
from repro.ring import GMR
from repro.service import (
    PartitionPlan,
    ServiceError,
    ViewService,
    infer_partition_plan,
    is_replicated_view,
)
from repro.workloads.spec import QuerySpec, as_query_spec

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
SQL_CNT_A = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"
SQL_JOIN_A = (
    "SELECT R.a, COUNT(*) FROM R, T WHERE R.a = T.a GROUP BY R.a"
)


def _spec(sql: str, name: str = "v"):
    return as_query_spec(sql, name=name, catalog=CATALOG)


def _random_stream(seed: int, n_batches: int) -> list[tuple[str, GMR]]:
    """Deterministic insert+delete batches over R/S/T (deletions only
    remove rows inserted earlier in the stream)."""
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {"R": [], "S": [], "T": []}
    batches: list[tuple[str, GMR]] = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 5)):
            if live[relation] and rng.random() < 0.35:
                victim = rng.choice(live[relation])
                live[relation].remove(victim)
                data[victim] = data.get(victim, 0) - 1
            else:
                row = (rng.randint(1, 8), rng.randint(1, 15))
                live[relation].append(row)
                data[row] = data.get(row, 0) + 1
        if data:
            batches.append((relation, GMR(data)))
    return batches


@contextlib.contextmanager
def cluster(
    n_shards: int,
    replicas: int = 1,
    auth_token: str | None = None,
    shard_token: str | None = None,
    **router_kw,
):
    """``n_shards`` in-process shard servers behind a live router.

    Yields ``(router, services, servers)`` where ``services[s * replicas
    + r]`` backs replica ``r`` of shard ``s``.  Teardown drops surviving
    views directly on the services so async backends release their
    batcher threads even when the test already killed the router.
    """
    services: list[ViewService] = []
    servers: list[ViewServer] = []
    groups: list[list[tuple[str, int]]] = []
    router = None
    try:
        for _ in range(n_shards):
            group = []
            for _ in range(replicas):
                svc = ViewService(catalog=CATALOG)
                server = ViewServer(svc, auth_token=shard_token).start()
                services.append(svc)
                servers.append(server)
                group.append(("127.0.0.1", server.port))
            groups.append(group)
        router = ClusterRouter(
            groups,
            CATALOG,
            auth_token=auth_token,
            shard_token=shard_token,
            **router_kw,
        ).start()
        yield router, services, servers
    finally:
        if router is not None:
            router.close()
        for server in servers:
            server.close()
        for svc in services:
            for name in svc.views():
                try:
                    svc.drop_view(name)
                except Exception:
                    pass


# ----------------------------------------------------------------------
# Shard map: topology parsing and the split function
# ----------------------------------------------------------------------


def test_parse_shard_spec():
    assert parse_shard_spec("127.0.0.1:9001,127.0.0.1:9002") == [
        [("127.0.0.1", 9001)],
        [("127.0.0.1", 9002)],
    ]
    assert parse_shard_spec("a:1+b:1,a:2+b:2") == [
        [("a", 1), ("b", 1)],
        [("a", 2), ("b", 2)],
    ]
    assert parse_shard_spec("9001") == [[("127.0.0.1", 9001)]]
    with pytest.raises(ValueError, match="bad shard endpoint"):
        parse_shard_spec("localhost:http")
    with pytest.raises(ValueError, match="names no endpoints"):
        parse_shard_spec(",")


def _map(n: int, plan: PartitionPlan, **kw) -> ShardMap:
    groups = [[("127.0.0.1", 9000 + s)] for s in range(n)]
    return ShardMap(groups, CATALOG, plan, **kw)


def test_split_is_deterministic_and_partitions():
    plan = PartitionPlan({"R": (1,)}, frozenset())
    batch = GMR({(i, i % 7): (1 if i % 3 else -2) for i in range(40)})
    parts = _map(4, plan).split("R", batch)
    assert len(parts) == 4
    total = GMR()
    for part in parts:
        total.add_inplace(part)
    assert total == batch  # a split loses and invents nothing
    # Rows are placed by key column only: same b -> same shard.
    owner: dict[object, int] = {}
    for shard, part in enumerate(parts):
        for t, _m in part.items():
            assert owner.setdefault(t[1], shard) == shard
    # And deterministically so, across independently built maps.
    again = _map(4, plan).split("R", batch)
    assert [p.data for p in again] == [p.data for p in parts]


def test_split_replicated_and_unconstrained():
    plan = PartitionPlan({"S": ()}, frozenset({"R"}))
    m = _map(3, plan)
    batch = GMR({(1, 2): 2, (3, 4): -1})
    assert all(p == batch for p in m.split("R", batch))  # full copies
    parts = m.split("S", batch)  # whole-row hash: disjoint, complete
    total = GMR()
    for part in parts:
        total.add_inplace(part)
    assert total == batch
    # A relation the plan never mentions is replicated (always exact).
    assert m.placement("UNSEEN") == "replicated"


def test_range_boundaries_validated_and_used():
    plan = PartitionPlan({"R": (1,)}, frozenset())
    with pytest.raises(ValueError, match="needs --boundaries"):
        _map(2, plan, mode="range")
    with pytest.raises(ValueError, match="exactly 2 boundaries"):
        _map(3, plan, mode="range", boundaries=[10])
    with pytest.raises(ValueError, match="ascending"):
        _map(3, plan, mode="range", boundaries=[20, 10])
    m = _map(3, plan, mode="range", boundaries=[10, 20])
    parts = m.split("R", GMR({(1, 5): 1, (1, 10): 1, (1, 15): 1, (1, 25): 1}))
    assert parts[0] == GMR({(1, 5): 1})  # b < 10
    assert parts[1] == GMR({(1, 10): 1, (1, 15): 1})  # 10 <= b < 20
    assert parts[2] == GMR({(1, 25): 1})  # 20 <= b


# ----------------------------------------------------------------------
# Partition-plan inference
# ----------------------------------------------------------------------


def test_plan_single_relation_view_is_unconstrained():
    plan = infer_partition_plan([_spec(SQL_CNT_A)])
    assert plan.keys == {"R": ()} and not plan.replicated


def test_plan_join_co_partitions_on_the_join_column():
    plan = infer_partition_plan([_spec(SQL_PER_B)])
    # R(a, b) hashes on position 1, S(b, c) on position 0 - both "b".
    assert plan.keys == {"R": (1,), "S": (0,)}
    assert plan.describe(CATALOG) == "R:hash(b) S:hash(b)"


def test_plan_conflicting_join_keys_force_replication():
    # per_b wants R hashed on b, join_a wants R hashed on a: a row
    # cannot live on two shards, so R must be replicated.
    plan = infer_partition_plan([_spec(SQL_PER_B), _spec(SQL_JOIN_A, "j")])
    assert "R" in plan.replicated
    assert plan.keys["S"] == (0,) and plan.keys["T"] == (0,)


def test_plan_nonlinear_relation_is_replicated():
    self_join = QuerySpec(
        name="nl",
        query=join(Rel("R", ("a", "b")), Rel("R", ("a", "b"))),
        updatable=frozenset({"R"}),
        key_hints={},
    )
    plan = infer_partition_plan([self_join])
    assert plan.replicated == frozenset({"R"}) and not plan.keys
    assert is_replicated_view(self_join, plan)
    assert not is_replicated_view(_spec(SQL_PER_B), plan)


# ----------------------------------------------------------------------
# The end-to-end differential invariant (acceptance criterion)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_differential_cluster_vs_single_process(n_shards):
    """The same randomized insert+delete stream, once through the
    router over N shards and once on one in-process service, yields
    identical snapshots — and the merged deltas read off the router
    accumulate to exactly that snapshot with monotone seqs."""
    batches = _random_stream(seed=7016 + n_shards, n_batches=60)

    reference = ViewService(catalog=CATALOG)
    reference.create_view("per_b", SQL_PER_B)
    reference.create_view("cnt_a", SQL_CNT_A)
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))

    with cluster(n_shards) as (router, _services, _servers):
        client = Client(port=router.port)
        client.create_view("per_b", SQL_PER_B)
        client.create_view("cnt_a", SQL_CNT_A)
        streams = {
            name: client.subscribe(name) for name in ("per_b", "cnt_a")
        }
        for relation, batch in batches:
            client.batch(relation, batch)
        token = client.drain()
        try:
            for name in ("per_b", "cnt_a"):
                merged = client.snapshot(name)
                assert merged == reference.snapshot(name), (
                    f"{name}@{n_shards} shards diverged from single-process"
                )
                deltas = streams[name].read_until_mark(token)
                acc = GMR()
                for delta in deltas:
                    acc.add_inplace(delta.delta)
                assert acc == merged, (
                    f"{name}@{n_shards}: merged deltas diverged from snapshot"
                )
                seqs = [d.seq for d in deltas]
                assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
                # The router mark carries the per-shard seq vector.
                vector = streams[name].mark_shards[token]
                assert set(vector) == {str(s) for s in range(n_shards)}
        finally:
            for stream in streams.values():
                stream.close()
            client.close()
        for name in ("per_b", "cnt_a"):
            reference.drop_view(name)


def test_differential_across_forced_shard_restart():
    """Kill and re-host one shard's server mid-stream (same service,
    same port): the router's connect-phase write retry plus the
    endpoint-pinned stream reconnect make the run lossless."""
    batches = _random_stream(seed=404, n_batches=40)
    reference = ViewService(catalog=CATALOG)
    reference.create_view("per_b", SQL_PER_B)
    for relation, batch in batches:
        reference.on_batch(relation, GMR(dict(batch.data)))

    with cluster(2) as (router, services, servers):
        client = Client(port=router.port)
        client.create_view("per_b", SQL_PER_B)
        stream = client.subscribe("per_b")
        try:
            for relation, batch in batches[:20]:
                client.batch(relation, batch)

            port = servers[1].port
            servers[1].close()
            servers[1] = ViewServer(
                services[1], port=port
            ).start()  # same state, same endpoint

            for relation, batch in batches[20:]:
                client.batch(relation, batch)
            token = client.drain()
            merged = client.snapshot("per_b")
            assert merged == reference.snapshot("per_b"), (
                "restart lost or double-applied updates"
            )
            acc = GMR()
            for delta in stream.read_until_mark(token):
                acc.add_inplace(delta.delta)
            assert acc == merged, "restart broke the merged stream"
        finally:
            stream.close()
            client.close()
    reference.drop_view("per_b")


# ----------------------------------------------------------------------
# The cross-shard barrier
# ----------------------------------------------------------------------


def test_barrier_covers_queued_work_on_every_shard():
    """With async views whose batchers never flush on their own, every
    delta exists only as queued work at drain time; the router mark must
    still arrive after all of it — on every shard — has been merged."""
    with cluster(2) as (router, _services, _servers):
        client = Client(port=router.port)
        client.create_view(
            "per_b", SQL_PER_B, backend="async:rivm-batch", autostart=False
        )
        stream = client.subscribe("per_b")
        try:
            # Rows spanning both shards of the b-hash.
            for b in range(1, 9):
                client.batch("R", GMR({(b, b): 1}))
                client.batch("S", GMR({(b, 100 + b): 1}))
            info = client.drain_info()
            token = info["mark"]
            assert set(info["shards"]) == {"0", "1"}, (
                "router mark must carry every shard's seq"
            )
            acc = GMR()
            for delta in stream.read_until_mark(token):
                acc.add_inplace(delta.delta)
            snap = client.snapshot("per_b")
            assert not snap.is_zero()
            assert acc == snap, (
                "mark released before all shards' queued deltas merged"
            )
        finally:
            stream.close()
            client.close()


def test_barrier_fails_fast_when_a_shard_stream_is_lost():
    with cluster(2, reconnect_timeout_s=0.4) as (router, _services, servers):
        router_client = Client(port=router.port)
        router_client.create_view("cnt_a", SQL_CNT_A)
        try:
            servers[1].close()  # shard 1 dies for good
            deadline = time.monotonic() + 10
            while router.merger.reader_endpoint(1, "cnt_a") is not None:
                assert time.monotonic() < deadline, "stream loss undetected"
                time.sleep(0.05)
            with pytest.raises(BackendError, match="stream lost"):
                router.drain(view="cnt_a")
        finally:
            router_client.close()


def test_subscriber_seqs_monotone_across_shard_interleavings():
    """Concurrent producers drive both shards at once; every subscriber
    must still see strictly increasing router seqs and accumulate to
    the gathered snapshot."""
    batches = _random_stream(seed=5050, n_batches=80)
    with cluster(2) as (router, _services, _servers):
        control = Client(port=router.port)
        control.create_view("per_b", SQL_PER_B)
        control.create_view("cnt_a", SQL_CNT_A)
        streams = [control.subscribe("per_b") for _ in range(3)]
        errors: list[BaseException] = []

        def produce(share):
            producer = Client(port=router.port)
            try:
                for relation, batch in share:
                    producer.batch(relation, batch)
            except BaseException as exc:
                errors.append(exc)
            finally:
                producer.close()

        threads = [
            threading.Thread(
                target=produce, args=(batches[i::4],), daemon=True
            )
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "cluster producer wedged"
        assert not errors, f"producer raised: {errors[0]!r}"

        token = control.drain()
        snap = control.snapshot("per_b")
        try:
            for stream in streams:
                deltas = stream.read_until_mark(token)
                seqs = [d.seq for d in deltas]
                assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), (
                    f"interleaved shards broke seq monotonicity: {seqs[:20]}"
                )
                acc = GMR()
                for delta in deltas:
                    acc.add_inplace(delta.delta)
                assert acc == snap
        finally:
            for stream in streams:
                stream.close()
            control.close()


def test_shard_death_closes_streams_typed_not_hung():
    """A shard dying past the reconnect deadline must surface to router
    subscribers as a typed ``closed`` envelope, never a silent hang."""
    with cluster(2, reconnect_timeout_s=0.4) as (router, _services, servers):
        client = Client(port=router.port)
        client.create_view("cnt_a", SQL_CNT_A)
        stream = client.subscribe("cnt_a")
        try:
            client.batch("R", GMR({(1, 1): 1}))
            servers[0].close()  # and never comes back
            leftovers = list(stream)  # terminates via the closed event
            assert stream.closed_reason is not None
            assert "stream lost" in stream.closed_reason
            assert all(d.view == "cnt_a" for d in leftovers)
        finally:
            stream.close()
            client.close()


# ----------------------------------------------------------------------
# Sticky placement
# ----------------------------------------------------------------------


def test_create_view_rejects_retroactive_replacement():
    """Once a relation has streamed batches under a placement, a view
    that would move its rows is rejected (sticky plan)."""
    with cluster(2) as (router, _services, _servers):
        client = Client(port=router.port)
        client.create_view("per_b", SQL_PER_B)  # R hashed on b
        client.batch("R", GMR({(1, 2): 1}))  # placement now used
        with pytest.raises(ServiceError, match="re-place relation 'R'"):
            # join_a forces R to replicated (conflicting keys a vs b).
            router.create_view("join_a", SQL_JOIN_A)
        # The failed create left no trace: the view neither exists on
        # the router nor on any shard, and the old view still works.
        assert "join_a" not in router.views_info()
        client.batch("S", GMR({(2, 9): 1}))
        client.drain()
        assert client.snapshot("per_b") == GMR({(2,): 1})
        client.close()


# ----------------------------------------------------------------------
# Auth (router tier and shard tier)
# ----------------------------------------------------------------------


def test_router_requires_bearer_token():
    with cluster(2, auth_token="sekrit") as (router, _services, _servers):
        anon = Client(port=router.port)
        assert anon.health()["status"] == "ok"  # health stays open
        with pytest.raises(NetError) as err:
            anon.views()
        assert err.value.status == 401
        wrong = Client(port=router.port, auth_token="guess")
        with pytest.raises(NetError) as err:
            wrong.views()
        assert err.value.status == 401

        authed = Client(port=router.port, auth_token="sekrit")
        authed.create_view("cnt_a", SQL_CNT_A)
        stream = authed.subscribe("cnt_a")
        authed.batch("R", GMR({(1, 1): 1}))
        token = authed.drain()
        assert stream.read_until_mark(token)
        assert authed.snapshot("cnt_a") == GMR({(1,): 1})
        stream.close()
        for c in (anon, wrong, authed):
            c.close()


def test_router_presents_shard_token_to_locked_shards():
    with cluster(2, shard_token="inner") as (router, _services, servers):
        direct = Client(port=servers[0].port)
        with pytest.raises(NetError) as err:
            direct.views()
        assert err.value.status == 401  # shards really are locked
        direct.close()

        client = Client(port=router.port)  # router itself is open
        client.create_view("cnt_a", SQL_CNT_A)
        client.batch("R", GMR({(1, 1): 1, (2, 1): 1}))
        client.drain()
        assert client.snapshot("cnt_a") == GMR({(1,): 1, (2,): 1})
        client.close()


# ----------------------------------------------------------------------
# Inconsistent reads (snapshot isolation satellite)
# ----------------------------------------------------------------------


def test_inconsistent_snapshot_skips_the_barrier():
    """``consistent=0`` serves each shard's last *flushed* state: work
    still queued in a stopped async batcher is invisible to it, while
    the consistent read drains first and sees everything."""
    with cluster(2) as (router, _services, _servers):
        client = Client(port=router.port)
        client.create_view(
            "cnt_a", SQL_CNT_A, backend="async:rivm-batch", autostart=False
        )
        client.batch("R", GMR({(1, 1): 1, (2, 2): 1}))  # queued, unflushed
        assert client.snapshot("cnt_a", consistent=False) == GMR()
        assert client.snapshot("cnt_a") == GMR({(1,): 1, (2,): 1})
        # After the drain the flushed state caught up.
        assert client.snapshot("cnt_a", consistent=False) == GMR(
            {(1,): 1, (2,): 1}
        )
        client.close()


# ----------------------------------------------------------------------
# Replicated serving and failover
# ----------------------------------------------------------------------


def test_replicated_view_survives_shard_loss():
    """A fully replicated view keeps serving snapshots while any
    endpoint lives: reads round-robin across shards and fail over."""
    with cluster(2) as (router, _services, servers):
        client = Client(port=router.port)
        # per_b + join_a demand conflicting R keys (b vs a), so R is
        # replicated — which makes the R-only view fully replicated.
        client.create_view("per_b", SQL_PER_B)
        client.create_view("join_a", SQL_JOIN_A)
        client.create_view("cnt_a", SQL_CNT_A)
        assert router.view_info("cnt_a")["replicated"] is True
        assert "R" in router.describe_shards()["plan"]["replicated"]
        client.batch("R", GMR({(5, 5): 1, (6, 6): 1}))
        client.drain()
        expect = GMR({(5,): 1, (6,): 1})
        servers[1].close()  # one full copy remains on shard 0
        for _ in range(3):  # > n endpoints: every round-robin slot hit
            assert client.snapshot("cnt_a") == expect
        client.close()


# ----------------------------------------------------------------------
# Smoke tests (run per Python version in CI)
# ----------------------------------------------------------------------


def test_cluster_smoke():
    """2 shards + router: create a view over HTTP, route one batch,
    drain across the barrier, gather a snapshot, clean shutdown (the
    CI smoke contract)."""
    with cluster(2) as (router, _services, _servers):
        with Client(port=router.port) as client:
            health = client.health()
            assert health["status"] == "ok" and health["n_shards"] == 2
            client.create_view("per_b", SQL_PER_B)
            client.batch("R", GMR({(1, 10): 1, (2, 11): 1}))
            client.batch("S", GMR({(10, 5): 1, (11, 6): 1}))
            info = client.drain_info()
            assert set(info["shards"]) == {"0", "1"}
            assert client.snapshot("per_b") == GMR({(10,): 1, (11,): 1})
            shards = client._request("GET", "/shards")
            assert shards["n_shards"] == 2
            assert shards["plan"]["keys"]["R"] == ["b"]
            client.drop_view("per_b")


def test_cli_route_smoke():
    """``python -m repro route --shards ...`` fronts two live shard
    servers: a stock client creates a view through the router, streams
    a batch, reads the merged snapshot, and shuts the router down
    remotely; the process exits 0 and the shards outlive it."""
    repo_root = Path(__file__).resolve().parent.parent
    svc0 = ViewService(catalog=CATALOG)
    svc1 = ViewService(catalog=CATALOG)
    with ViewServer(svc0) as s0, ViewServer(svc1) as s1srv:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "route",
                "--shards", f"127.0.0.1:{s0.port},127.0.0.1:{s1srv.port}",
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=repo_root,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(repo_root / "src"),
            },
        )
        try:
            match = None
            seen = []
            for _ in range(5):  # a banner line may precede the URL
                line = proc.stdout.readline()
                if not line:
                    break
                seen.append(line)
                match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
                if match:
                    break
            assert match, f"no listen line, got {seen!r}"
            client = Client(port=int(match.group(1)))
            client.create_view("per_b", SQL_PER_B)
            client.batch("R", GMR({(1, 10): 1, (2, 10): 1}))
            client.batch("S", GMR({(10, 5): 1}))
            client.drain()
            assert client.snapshot("per_b") == GMR({(10,): 2})
            client.shutdown_server()
            assert proc.wait(timeout=30) == 0
            # The router never owns the shards: they must still serve.
            with Client(port=s0.port) as direct:
                assert direct.health()["status"] == "ok"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# The cluster harness runner
# ----------------------------------------------------------------------


def test_measure_cluster_throughput_micro():
    from repro.harness import measure_cluster_throughput
    from repro.workloads import MICRO_TABLES

    result = measure_cluster_throughput(
        [
            ("m_join", "SELECT R.b, COUNT(*) FROM R, S "
                       "WHERE R.b = S.b GROUP BY R.b"),
            ("m_cnt", "SELECT b, COUNT(*) FROM R GROUP BY b"),
        ],
        batch_size=20,
        workload="micro",
        sf=0.004,
        max_batches=16,
        n_shards=2,
        n_clients=2,
        subscribers_per_view=2,
        catalog=MICRO_TABLES,
    )
    assert result.n_shards == 2 and result.n_clients == 2
    assert result.n_tuples > 0 and result.throughput > 0
    assert "R:hash(b)" in result.placement
    assert all(v.consistent for v in result.views), (
        "merged deltas diverged from gathered snapshots"
    )
