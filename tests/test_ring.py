"""Unit tests for the GMR ring data model."""

import pytest

from repro.ring import GMR, ZERO, gmr_of_pairs, singleton


def test_empty_is_zero():
    assert GMR().is_zero()
    assert len(GMR()) == 0
    assert ZERO.is_zero()


def test_construction_drops_zero_multiplicities():
    g = GMR({(1,): 0, (2,): 3})
    assert (1,) not in g
    assert g.get((2,)) == 3


def test_from_pairs_accumulates():
    g = GMR.from_pairs([((1,), 2), ((1,), 3), ((2,), -1)])
    assert g.get((1,)) == 5
    assert g.get((2,)) == -1


def test_from_pairs_cancellation():
    g = GMR.from_pairs([((1,), 2), ((1,), -2)])
    assert g.is_zero()


def test_add_merges_multiplicities():
    a = GMR({(1,): 1, (2,): 2})
    b = GMR({(2,): 3, (3,): 4})
    c = a + b
    assert c.get((1,)) == 1
    assert c.get((2,)) == 5
    assert c.get((3,)) == 4


def test_add_cancels_to_absence():
    a = GMR({(1,): 1})
    b = GMR({(1,): -1})
    assert (a + b).is_zero()


def test_add_identity():
    a = GMR({(1,): 7})
    assert a + ZERO == a
    assert ZERO + a == a


def test_neg_and_sub():
    a = GMR({(1,): 3})
    assert (-a).get((1,)) == -3
    assert (a - a).is_zero()


def test_scale():
    a = GMR({(1,): 3, (2,): -1})
    b = a.scale(2)
    assert b.get((1,)) == 6
    assert b.get((2,)) == -2
    assert a.scale(0).is_zero()


def test_add_inplace():
    a = GMR({(1,): 1})
    a.add_inplace(GMR({(1,): 2, (2,): 5}))
    assert a.get((1,)) == 3
    assert a.get((2,)) == 5
    a.add_inplace(GMR({(2,): -5}))
    assert (2,) not in a


def test_add_tuple_cancellation():
    a = GMR()
    a.add_tuple((1, "x"), 2)
    a.add_tuple((1, "x"), -2)
    assert a.is_zero()


def test_project_sums_collisions():
    a = GMR({(1, 10): 2, (2, 10): 3, (1, 20): 1})
    p = a.project([1])
    assert p.get((10,)) == 5
    assert p.get((20,)) == 1


def test_project_cancellation():
    a = GMR({(1, 10): 2, (2, 10): -2})
    assert a.project([1]).is_zero()


def test_filter():
    a = GMR({(1,): 1, (2,): 2})
    assert a.filter(lambda t: t[0] > 1) == GMR({(2,): 2})


def test_map_tuples():
    a = GMR({(1,): 1, (2,): 2})
    m = a.map_tuples(lambda t: (t[0] % 2,))
    assert m.get((1,)) == 1
    assert m.get((0,)) == 2


def test_exists_flattens_multiplicities():
    a = GMR({(1,): 5, (2,): -3})
    e = a.exists()
    assert e.get((1,)) == 1
    assert e.get((2,)) == 1


def test_total():
    assert GMR({(1,): 2, (2,): 3}).total() == 5


def test_singleton():
    s = singleton((), 4)
    assert s.get(()) == 4
    assert singleton((1,), 0).is_zero()


def test_float_epsilon_canonicalization():
    a = GMR({(1,): 0.1})
    b = GMR({(1,): -0.1})
    assert (a + b).is_zero()


def test_equality_tolerates_float_noise():
    a = GMR({(1,): 0.3})
    b = GMR({(1,): 0.1 + 0.2})
    assert a == b


def test_gmr_unhashable():
    with pytest.raises(TypeError):
        hash(GMR())


def test_gmr_of_pairs_alias():
    assert gmr_of_pairs([((1,), 1)]).get((1,)) == 1


def test_repr_truncates_large():
    g = GMR({(i,): 1 for i in range(20)})
    assert "20 tuples" in repr(g)
