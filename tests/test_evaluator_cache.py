"""The evaluator's per-statement cache (slice indexes and memoized
subexpressions shared across polynomial terms of one evaluation).

The cache is the interpreter's stand-in for the code generator's CSE
(Section 5.1): it must never change results, must actually dedup work,
and must not leak across separate top-level evaluations (views mutate
between statements).
"""

import pytest

from repro.eval import Database, Evaluator
from repro.metrics import Counters
from repro.query.builder import assign, cmp, join, rel, sum_over, union
from repro.ring import GMR


def _db():
    db = Database()
    db.insert_rows("R", [(i, i % 5) for i in range(40)])
    db.insert_rows("S", [(i % 5, i % 3) for i in range(30)])
    return db


def test_cache_does_not_change_results():
    db = _db()
    q = sum_over(
        ["b"], join(rel("R", "a", "b"), rel("S", "b", "c"))
    )
    expected = Evaluator(db).evaluate(q)
    # A union of the same term twice doubles every multiplicity; the
    # second term must be served from (and agree with) the cache.
    doubled = Evaluator(db).evaluate(union(q, q))
    assert doubled == expected + expected


def test_cache_dedups_slice_index_builds():
    db = _db()
    term = sum_over(["b"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    two_terms = union(term, term)

    c1 = Counters()
    Evaluator(db, c1).evaluate(term)
    c2 = Counters()
    Evaluator(db, c2).evaluate(two_terms)
    # Both R's iteration (memoized "eval" plan) and S's slice index are
    # shared with the first term: no additional scans at all.
    assert c2.tuples_scanned == c1.tuples_scanned
    # The join recursion itself still runs per term (lookups/emits).
    assert c2.index_lookups == 2 * c1.index_lookups
    assert c2.tuples_emitted == 2 * c1.tuples_emitted


def test_cache_dedups_correlated_subquery_evaluations():
    db = _db()
    nested = sum_over([], join(rel("S", "b2", "c"), cmp("b2", "==", "b")))
    q = sum_over(
        [],
        join(rel("R", "a", "b"), assign("x", nested), cmp("x", ">", 0)),
    )
    c1 = Counters()
    Evaluator(db, c1).evaluate(q)
    c2 = Counters()
    Evaluator(db, c2).evaluate(union(q, q))
    # Nested evaluations are memoized per distinct b and R's iteration
    # is shared too, so the duplicate term adds no scans.
    assert c2.tuples_scanned == c1.tuples_scanned


def test_cache_does_not_leak_across_evaluations():
    """A view mutated between evaluations must be re-read."""
    db = _db()
    q = sum_over(["b"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    ev = Evaluator(db)
    before = ev.evaluate(q)
    db.get_view("S").add_tuple((0, 99), 1)
    after = ev.evaluate(q)
    assert before != after


def test_cache_respects_delta_namespace():
    from repro.query.builder import delta

    db = _db()
    db.set_delta("R", GMR.unsafe({(1, 1): 1}))
    q = sum_over(["b"], join(delta("R", "a", "b"), rel("S", "b", "c")))
    ev = Evaluator(db)
    first = ev.evaluate(q)
    db.set_delta("R", GMR.unsafe({(2, 2): 1}))
    second = ev.evaluate(q)
    assert first != second


def test_nested_evaluate_calls_share_owner_cache():
    """Re-entrant evaluation (assign children) must not reset the
    owner's cache."""
    db = _db()
    nested = sum_over([], join(rel("S", "b2", "c"), cmp("b2", "==", "b")))
    q = join(rel("R", "a", "b"), assign("x", nested))
    ev = Evaluator(db)
    out = ev.evaluate(q)
    assert ev._stmt_cache is None  # released after the top-level call
    assert len(out) > 0
