"""End-to-end maintenance of the workload queries over real streams.

The decisive integration property: for each TPC-H / TPC-DS query,
compile it, stream a tiny generated dataset through the recursive IVM
engine, and compare the maintained view against a from-scratch
evaluation at several checkpoints and at the end.
"""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.workloads import (
    TPCDS_QUERIES,
    TPCH_QUERIES,
    generate_tpcds,
    generate_tpch,
    stream_batches,
)

#: queries cheap enough to check at every batch (others: end only)
_CHECK_EVERY = {"Q1", "Q3", "Q6", "Q12", "Q14", "Q19"}


def _run_maintenance(spec, tables, batch_size=25, mode="batch"):
    """Stream `tables` through a compiled engine; verify vs reference."""
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    if mode == "batch":
        program = apply_batch_preaggregation(program)
    engine = RecursiveIVMEngine(program, mode=mode)

    # Static (non-updatable) relations are pre-loaded.
    static = {
        name: rows
        for name, rows in tables.items()
        if name not in spec.updatable
    }
    base = Database()
    for name, rows in static.items():
        base.insert_rows(name, rows)
    # Pre-load static contents into the engine's views as well.
    full = Database()
    for name, rows in static.items():
        full.insert_rows(name, rows)
    engine.initialize(full)

    check_every = spec.name in _CHECK_EVERY
    for relation, batch in stream_batches(
        tables, batch_size, relations=spec.updatable
    ):
        engine.on_batch(relation, batch)
        base.apply_update(relation, batch)
        if check_every:
            assert engine.snapshot() == evaluate(spec.query, base), (
                f"{spec.name} diverged mid-stream"
            )
    assert engine.snapshot() == evaluate(spec.query, base), (
        f"{spec.name} diverged at end of stream"
    )


TPCH_TINY = generate_tpch(sf=0.0002, seed=11)
TPCDS_TINY = generate_tpcds(sf=0.0004, seed=11)


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_maintenance_batch_mode(name):
    _run_maintenance(TPCH_QUERIES[name], TPCH_TINY, batch_size=30)


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q6", "Q12", "Q17", "Q22"])
def test_tpch_maintenance_single_tuple_mode(name):
    small = generate_tpch(sf=0.0001, seed=13)
    _run_maintenance(TPCH_QUERIES[name], small, batch_size=20, mode="single")


@pytest.mark.parametrize("name", sorted(TPCDS_QUERIES))
def test_tpcds_maintenance_batch_mode(name):
    _run_maintenance(TPCDS_QUERIES[name], TPCDS_TINY, batch_size=30)
