"""Delta derivation correctness: Q(D+ΔD) = Q(D) + ΔQ(D, ΔD).

The fundamental soundness property of incremental view maintenance is
checked by evaluating queries before and after an update batch and
comparing with the evaluated delta.
"""

import random

import pytest

from repro.delta import derive_delta
from repro.delta.simplify import is_statically_zero
from repro.eval import Database, evaluate
from repro.query import (
    assign,
    cmp,
    const,
    delta as delta_rel,
    exists,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.builder import mul
from repro.query.schema import delta_relations
from repro.ring import GMR


def check_delta_correct(q, db, updates):
    """Assert Q(D + ΔD) == Q(D) + ΔQ(D, ΔD) for one update batch."""
    before = evaluate(q, db)
    for name, batch in updates.items():
        db.set_delta(name, batch)
    total_delta = GMR()
    for name in updates:
        dq = derive_delta(q, name)
        if not is_statically_zero(dq):
            total_delta.add_inplace(evaluate(dq, db))
    # Apply updates and recompute from scratch.
    for name, batch in updates.items():
        db.apply_update(name, batch)
    db.clear_deltas()
    after = evaluate(q, db)
    assert before + total_delta == after, (
        f"incremental result diverged for {q!r}:\n"
        f"  before+delta = {(before + total_delta)!r}\n"
        f"  recomputed   = {after!r}"
    )


@pytest.fixture
def db():
    d = Database()
    d.insert_rows("R", [(1, 10), (2, 10), (3, 20), (4, 30)])
    d.insert_rows("S", [(10, "x"), (10, "y"), (20, "z"), (30, "w")])
    d.insert_rows("T", [("x", 5), ("y", 6), ("z", 7)])
    return d


def test_delta_of_rel_is_delta_rel():
    d = derive_delta(rel("R", "A", "B"), "R")
    assert d == delta_rel("R", "A", "B")


def test_delta_of_unrelated_rel_is_zero():
    d = derive_delta(rel("S", "B", "C"), "R")
    assert is_statically_zero(d)


def test_delta_of_const_and_cmp_zero():
    assert is_statically_zero(derive_delta(const(5), "R"))
    assert is_statically_zero(derive_delta(cmp("A", "<", 1), "R"))
    assert is_statically_zero(derive_delta(value("A"), "R"))
    assert is_statically_zero(derive_delta(assign("X", "A"), "R"))


def test_delta_join_has_three_terms_for_self_join():
    q = join(rel("R", "A", "B"), rel("R", "B", "C"))
    d = derive_delta(q, "R", simplify_result=False)
    # ΔR⋈R + R⋈ΔR + ΔR⋈ΔR
    from repro.query.ast import Union as U

    assert isinstance(d, U)
    assert len(d.parts) == 3


def test_delta_join_single_occurrence_single_term(db):
    q = join(rel("R", "A", "B"), rel("S", "B", "C"))
    d = derive_delta(q, "R")
    assert delta_relations(d) == frozenset({"R"})
    # No R (base) reference should remain: Δ(R⋈S) = ΔR⋈S only.
    from repro.query.schema import base_relations

    assert base_relations(d) == frozenset({"S"})


def test_delta_correct_single_insert(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))
    check_delta_correct(q, db, {"R": GMR({(9, 10): 1})})


def test_delta_correct_deletion(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))
    check_delta_correct(q, db, {"R": GMR({(1, 10): -1})})


def test_delta_correct_mixed_batch(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))
    check_delta_correct(q, db, {"R": GMR({(1, 10): -1, (7, 20): 2, (8, 40): 1})})


def test_delta_correct_update_to_inner_relation(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))
    check_delta_correct(q, db, {"S": GMR({(10, "q"): 1, (20, "z"): -1})})


def test_delta_correct_three_way_join(db):
    q = sum_over(
        ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
    )
    for name, batch in [
        ("R", GMR({(5, 10): 1})),
        ("S", GMR({(30, "x"): 1})),
        ("T", GMR({("z", 9): 1, ("x", 5): -1})),
    ]:
        check_delta_correct(q, db.copy(), {name: batch})


def test_delta_correct_self_join(db):
    q = sum_over([], join(rel("R", "A", "B"), rel("R", "B", "C")))
    db2 = Database()
    db2.insert_rows("R", [(1, 2), (2, 3), (3, 1)])
    check_delta_correct(q, db2, {"R": GMR({(2, 1): 1, (1, 2): -1})})


def test_delta_correct_with_filter(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), cmp("A", ">", 1)))
    check_delta_correct(q, db, {"R": GMR({(0, 10): 1, (9, 20): 1})})


def test_delta_correct_with_value(db):
    q = sum_over(["B"], join(rel("R", "A", "B"), value(mul("A", 2))))
    check_delta_correct(q, db, {"R": GMR({(5, 10): 1, (1, 10): -1})})


def test_delta_correct_union_query(db):
    q = union(
        sum_over(["B"], rel("R", "A", "B")),
        sum_over(["B"], rel("S", "B", "C")),
    )
    check_delta_correct(q, db, {"R": GMR({(5, 10): 1})})
    check_delta_correct(q, db, {"S": GMR({(10, "n"): 1})})


def test_delta_correct_nested_aggregate_example_3_1(db):
    """COUNT(*) FROM R WHERE R.A < (COUNT(*) FROM S WHERE R.B=S.B)."""
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    q = sum_over(
        [], join(rel("R", "A", "B"), assign("X", qn), cmp("A", "<", "X"))
    )
    check_delta_correct(q, db.copy(), {"R": GMR({(1, 20): 1})})
    check_delta_correct(q, db.copy(), {"S": GMR({(20, "k"): 1, (10, "x"): -1})})


def test_delta_correct_distinct_example_3_2(db):
    """SELECT DISTINCT A FROM R WHERE B > 3."""
    q = exists(sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3))))
    check_delta_correct(q, db.copy(), {"R": GMR({(1, 50): 1})})
    check_delta_correct(q, db.copy(), {"R": GMR({(1, 10): -1})})
    check_delta_correct(q, db.copy(), {"R": GMR({(99, 2): 1})})  # filtered out


def test_delta_correct_uncorrelated_nested_example_3_3(db):
    """COUNT(*) FROM R WHERE R.A < (COUNT(*) FROM S) AND R.B=10."""
    qn = sum_over([], rel("S", "B2", "C"))
    q = sum_over(
        [],
        join(rel("R", "A", "B"), cmp("B", "==", 10), assign("X", qn),
             cmp("A", "<", "X")),
    )
    check_delta_correct(q, db.copy(), {"S": GMR({(70, "u"): 1})})
    check_delta_correct(q, db.copy(), {"R": GMR({(0, 10): 1})})


def test_delta_correct_exists_condition(db):
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    q = sum_over(
        [], join(rel("R", "A", "B"), assign("X", qn), cmp("X", "!=", 0))
    )
    check_delta_correct(q, db.copy(), {"R": GMR({(9, 40): 1})})  # no S match
    check_delta_correct(q, db.copy(), {"S": GMR({(30, "v"): 1})})


def test_delta_second_order_is_update_independent(db):
    """Second-order delta of a 2-way join references no base tables."""
    from repro.query.schema import base_relations

    q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))
    d1 = derive_delta(q, "R")
    d2 = derive_delta(d1, "S")
    assert base_relations(d2) == frozenset()


def _random_database(rng):
    db = Database()
    for _ in range(rng.randint(0, 12)):
        db.get_view("R").add_tuple(
            (rng.randint(0, 4), rng.randint(0, 3)), rng.choice([1, 1, 2, -1])
        )
    for _ in range(rng.randint(0, 12)):
        db.get_view("S").add_tuple(
            (rng.randint(0, 3), rng.randint(0, 3)), rng.choice([1, 1, 2])
        )
    return db


def _random_batch(rng, arity):
    g = GMR()
    for _ in range(rng.randint(1, 6)):
        t = tuple(rng.randint(0, 4) for _ in range(arity))
        g.add_tuple(t, rng.choice([1, -1, 2]))
    return g


QUERIES = [
    sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C"))),
    sum_over([], join(rel("R", "A", "B"), rel("S", "B", "C"), cmp("A", ">", 1))),
    exists(sum_over(["A"], rel("R", "A", "B"))),
    sum_over(
        [],
        join(
            rel("R", "A", "B"),
            assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
            cmp("A", "<", "X"),
        ),
    ),
    union(sum_over(["A"], rel("R", "A", "B")), sum_over(["A"], rel("S", "A", "C"))),
]


@pytest.mark.parametrize("qi", range(len(QUERIES)))
def test_delta_correct_randomized(qi):
    q = QUERIES[qi]
    rng = random.Random(1234 + qi)
    for trial in range(25):
        db = _random_database(rng)
        name = rng.choice(["R", "S"])
        batch = _random_batch(rng, 2)
        check_delta_correct(q, db, {name: batch})
