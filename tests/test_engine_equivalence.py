"""End-to-end equivalence of every engine against the reference.

For each query and a random stream of update batches, the recursive
IVM engine (batch and single-tuple modes, with and without batch
pre-aggregation), the classical IVM engine, and the re-evaluation
engine must all report exactly the query result a from-scratch
evaluation produces after every batch.
"""

import random

import pytest

from repro.baselines import ClassicalIVMEngine, ReevalEngine
from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.query import (
    base_relations,
    assign,
    cmp,
    exists,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.builder import mul
from repro.ring import GMR

# ----------------------------------------------------------------------
# Query zoo
# ----------------------------------------------------------------------

Q_TWO_WAY = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

Q_THREE_WAY = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
)

Q_FILTERED = sum_over(
    ["B"], join(rel("R", "A", "B"), cmp("A", ">", 1), rel("S", "B", "C"))
)

Q_VALUE_AGG = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), value(mul("A", 2)))
)

Q_SELF_JOIN = sum_over([], join(rel("R", "A", "B"), rel("R", "B", "C")))

Q_NESTED_CORRELATED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("A", "<", "X"),
    ),
)

Q_DISTINCT = exists(sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 2))))

Q_NESTED_UNCORRELATED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], rel("S", "B2", "C"))),
        cmp("A", "<", "X"),
    ),
)

Q_EXISTS_COND = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("X", "!=", 0),
    ),
)

Q_UNION = union(
    sum_over(["B"], rel("R", "A", "B")),
    sum_over(["B"], rel("S", "B", "C")),
)

ALL_QUERIES = {
    "two_way": Q_TWO_WAY,
    "three_way": Q_THREE_WAY,
    "filtered": Q_FILTERED,
    "value_agg": Q_VALUE_AGG,
    "self_join": Q_SELF_JOIN,
    "nested_correlated": Q_NESTED_CORRELATED,
    "distinct": Q_DISTINCT,
    "nested_uncorrelated": Q_NESTED_UNCORRELATED,
    "exists_cond": Q_EXISTS_COND,
    "union": Q_UNION,
}

RELS = {"R": 2, "S": 2, "T": 2}


def _random_stream(rng, n_batches, batch_size, rel_names):
    """A stream of (relation, batch) pairs, mostly inserts."""
    live: dict[str, GMR] = {r: GMR() for r in rel_names}
    stream = []
    for _ in range(n_batches):
        r = rng.choice(rel_names)
        batch = GMR()
        for _ in range(batch_size):
            t = tuple(rng.randint(0, 4) for _ in range(RELS[r]))
            if rng.random() < 0.2 and live[r].get(t) + batch.get(t) > 0:
                batch.add_tuple(t, -1)
            else:
                batch.add_tuple(t, 1)
        if batch.is_zero():
            continue
        live[r].add_inplace(batch)
        stream.append((r, batch))
    return stream


def _reference_results(query, stream):
    db = Database()
    results = []
    for r, batch in stream:
        db.apply_update(r, batch)
        results.append(evaluate(query, db))
    return results


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_recursive_batch_engine_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(hash(qname) % 100000)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 20, 4, rel_names)
    expected = _reference_results(query, stream)

    program = apply_batch_preaggregation(compile_query(query, qname))
    engine = RecursiveIVMEngine(program, mode="batch")
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.result() == want, f"{qname}: diverged on batch ({r})"


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_recursive_single_tuple_engine_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(hash(qname) % 99991)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 15, 3, rel_names)
    expected = _reference_results(query, stream)

    program = compile_query(query, qname)  # no pre-aggregation
    engine = RecursiveIVMEngine(program, mode="single")
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.result() == want


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_classical_ivm_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(hash(qname) % 77777)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 15, 4, rel_names)
    expected = _reference_results(query, stream)

    engine = ClassicalIVMEngine(query)
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.result() == want


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_reeval_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(hash(qname) % 55555)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 10, 4, rel_names)
    expected = _reference_results(query, stream)

    engine = ReevalEngine(query)
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.result() == want


def test_initialize_from_snapshot():
    db = Database()
    db.insert_rows("R", [(1, 10), (2, 20)])
    db.insert_rows("S", [(10, 5), (20, 6)])
    program = compile_query(Q_TWO_WAY, "warm")
    engine = RecursiveIVMEngine(program)
    engine.initialize(db)
    assert engine.result() == evaluate(Q_TWO_WAY, db)
    # Maintenance continues correctly from the warm state.
    batch = GMR({(3, 10): 1})
    engine.on_batch("R", batch)
    db.apply_update("R", batch)
    assert engine.result() == evaluate(Q_TWO_WAY, db)


def test_unknown_trigger_raises():
    program = compile_query(Q_TWO_WAY, "t")
    engine = RecursiveIVMEngine(program)
    with pytest.raises(KeyError):
        engine.on_batch("NOPE", GMR({(1, 1): 1}))


def test_engine_mode_validation():
    program = compile_query(Q_TWO_WAY, "t")
    with pytest.raises(ValueError):
        RecursiveIVMEngine(program, mode="turbo")


def test_counters_accumulate():
    program = apply_batch_preaggregation(compile_query(Q_THREE_WAY, "c"))
    engine = RecursiveIVMEngine(program, mode="batch")
    engine.on_batch("R", GMR({(1, 2): 1}))
    snap = engine.counters.snapshot()
    assert snap["triggers_fired"] == 1
    assert snap["statements_executed"] > 0
    assert snap["virtual_instructions"] > 0


def test_memory_footprint_reports_tuples():
    program = compile_query(Q_TWO_WAY, "m")
    engine = RecursiveIVMEngine(program)
    engine.on_batch("R", GMR({(1, 10): 1}))
    engine.on_batch("S", GMR({(10, 3): 1}))
    assert engine.memory_footprint() >= 3  # R-view, S-view, top view


def test_updatable_restriction_skips_static_tables():
    program = compile_query(
        Q_TWO_WAY, "static", updatable=frozenset({"R"})
    )
    assert set(program.triggers) == {"R"}
