"""End-to-end equivalence of every engine against the reference.

For each query and a random stream of update batches, the recursive
IVM engine (batch and single-tuple modes, with and without batch
pre-aggregation), the classical IVM engine, and the re-evaluation
engine must all report exactly the query result a from-scratch
evaluation produces after every batch.

A differential property test additionally pits the compile-once
pipeline (:class:`~repro.eval.CompiledEvaluator`) against the
interpreted reference on randomized expressions and randomized
insert/delete streams: the two evaluation paths must agree tuple for
tuple, multiplicity for multiplicity.
"""

import random
import zlib

import pytest

from repro.baselines import ClassicalIVMEngine, ReevalEngine
from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import CompiledEvaluator, Database, Evaluator, evaluate
from repro.exec import ExecutionBackend, RecursiveIVMEngine
from repro.query import (
    base_relations,
    assign,
    cmp,
    exists,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.builder import mul
from repro.ring import GMR

# ----------------------------------------------------------------------
# Query zoo
# ----------------------------------------------------------------------

Q_TWO_WAY = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

Q_THREE_WAY = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
)

Q_FILTERED = sum_over(
    ["B"], join(rel("R", "A", "B"), cmp("A", ">", 1), rel("S", "B", "C"))
)

Q_VALUE_AGG = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), value(mul("A", 2)))
)

Q_SELF_JOIN = sum_over([], join(rel("R", "A", "B"), rel("R", "B", "C")))

Q_NESTED_CORRELATED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("A", "<", "X"),
    ),
)

Q_DISTINCT = exists(sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 2))))

Q_NESTED_UNCORRELATED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], rel("S", "B2", "C"))),
        cmp("A", "<", "X"),
    ),
)

Q_EXISTS_COND = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("X", "!=", 0),
    ),
)

Q_UNION = union(
    sum_over(["B"], rel("R", "A", "B")),
    sum_over(["B"], rel("S", "B", "C")),
)

ALL_QUERIES = {
    "two_way": Q_TWO_WAY,
    "three_way": Q_THREE_WAY,
    "filtered": Q_FILTERED,
    "value_agg": Q_VALUE_AGG,
    "self_join": Q_SELF_JOIN,
    "nested_correlated": Q_NESTED_CORRELATED,
    "distinct": Q_DISTINCT,
    "nested_uncorrelated": Q_NESTED_UNCORRELATED,
    "exists_cond": Q_EXISTS_COND,
    "union": Q_UNION,
}

RELS = {"R": 2, "S": 2, "T": 2}


def _random_stream(rng, n_batches, batch_size, rel_names):
    """A stream of (relation, batch) pairs, mostly inserts."""
    live: dict[str, GMR] = {r: GMR() for r in rel_names}
    stream = []
    for _ in range(n_batches):
        r = rng.choice(rel_names)
        batch = GMR()
        for _ in range(batch_size):
            t = tuple(rng.randint(0, 4) for _ in range(RELS[r]))
            if rng.random() < 0.2 and live[r].get(t) + batch.get(t) > 0:
                batch.add_tuple(t, -1)
            else:
                batch.add_tuple(t, 1)
        if batch.is_zero():
            continue
        live[r].add_inplace(batch)
        stream.append((r, batch))
    return stream


def _reference_results(query, stream):
    db = Database()
    results = []
    for r, batch in stream:
        db.apply_update(r, batch)
        results.append(evaluate(query, db))
    return results


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_recursive_batch_engine_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(zlib.crc32(qname.encode()) % 100000)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 20, 4, rel_names)
    expected = _reference_results(query, stream)

    program = apply_batch_preaggregation(compile_query(query, qname))
    engine = RecursiveIVMEngine(program, mode="batch")
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.snapshot() == want, f"{qname}: diverged on batch ({r})"


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_recursive_single_tuple_engine_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(zlib.crc32(qname.encode()) % 99991)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 15, 3, rel_names)
    expected = _reference_results(query, stream)

    program = compile_query(query, qname)  # no pre-aggregation
    engine = RecursiveIVMEngine(program, mode="single")
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.snapshot() == want


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_classical_ivm_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(zlib.crc32(qname.encode()) % 77777)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 15, 4, rel_names)
    expected = _reference_results(query, stream)

    engine = ClassicalIVMEngine(query)
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.snapshot() == want


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_reeval_matches_reference(qname):
    query = ALL_QUERIES[qname]
    rng = random.Random(zlib.crc32(qname.encode()) % 55555)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 10, 4, rel_names)
    expected = _reference_results(query, stream)

    engine = ReevalEngine(query)
    for (r, batch), want in zip(stream, expected):
        engine.on_batch(r, batch)
        assert engine.snapshot() == want


# ----------------------------------------------------------------------
# Differential property test: interpreted vs compiled evaluation
# ----------------------------------------------------------------------


def _random_query(rng):
    """A random valid query over R(A,B), S(B,C), T(C,D).

    Shapes mirror the zoo: a join of base relations with optional
    comparisons, interpreted value factors, and nested (correlated or
    uncorrelated) aggregates, wrapped in a projection and optionally
    Exists.  Join order keeps information flowing left to right, so
    every generated query is evaluable under the empty environment.
    """
    pool = [rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D")]
    parts = [pool[i] for i in sorted(rng.sample(range(3), rng.randint(1, 3)))]
    cols: list[str] = []
    for p in parts:
        cols.extend(c for c in p.cols if c not in cols)

    extras = []
    if rng.random() < 0.6:
        extras.append(
            cmp(rng.choice(cols), rng.choice(["<", "<=", ">", "!="]),
                rng.randint(0, 4))
        )
    if rng.random() < 0.4:
        extras.append(value(mul(rng.choice(cols), rng.choice([1, 2, 3]))))
    if rng.random() < 0.4:
        # A nested aggregate over S, correlated on B when available.
        if "B" in cols and rng.random() < 0.7:
            sub = sum_over([], join(rel("S", "B2", "C2"),
                                    cmp("B", "==", "B2")))
        else:
            sub = sum_over([], rel("S", "B2", "C2"))
        extras.append(assign("X", sub))
        extras.append(
            cmp("X", rng.choice(["<", ">", "!="]),
                rng.choice(["A", 0, 2]) if "A" in cols else 0)
        )
    q = join(*parts, *extras) if extras or len(parts) > 1 else parts[0]

    group_by = [c for c in cols if rng.random() < 0.5]
    q = sum_over(group_by, q)
    if rng.random() < 0.3:
        q = exists(q)
    return q


@pytest.mark.parametrize("seed", range(40))
def test_differential_compiled_matches_interpreted(seed):
    """Randomized expressions + randomized insert/delete streams must
    produce identical GMRs from both evaluation paths."""
    rng = random.Random(7_000 + seed)
    query = _random_query(rng)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 12, 5, rel_names)

    db = Database()
    interpreted = Evaluator(db)
    compiled = CompiledEvaluator(db)
    for r, batch in stream:
        db.apply_update(r, batch)
        want = interpreted.evaluate(query)
        got = compiled.evaluate(query)
        assert got == want, f"seed {seed}: diverged on {query!r}"


@pytest.mark.parametrize("qname", sorted(ALL_QUERIES))
def test_differential_engine_compiled_vs_interpreted(qname):
    """The recursive engine must behave identically with lowered
    pipelines and with the interpreted evaluator, including on
    deletion-heavy streams that cancel tuples entirely."""
    query = ALL_QUERIES[qname]
    rng = random.Random(zlib.crc32(qname.encode()) % 424242)
    rel_names = sorted(base_relations(query))
    stream = _random_stream(rng, 18, 4, rel_names)
    # Append a full retraction of one live relation's contents: pure
    # negative-multiplicity batches must also agree.
    live: dict[str, GMR] = {r: GMR() for r in rel_names}
    for r, batch in stream:
        live[r].add_inplace(batch)
    victim = max(rel_names, key=lambda r: len(live[r]))
    if not live[victim].is_zero():
        stream = stream + [(victim, -live[victim])]

    program = apply_batch_preaggregation(compile_query(query, qname))
    compiled_eng = RecursiveIVMEngine(program, mode="batch",
                                      use_compiled=True)
    interpreted_eng = RecursiveIVMEngine(program, mode="batch",
                                         use_compiled=False)
    for r, batch in stream:
        compiled_eng.on_batch(r, batch)
        interpreted_eng.on_batch(r, batch)
        assert compiled_eng.snapshot() == interpreted_eng.snapshot(), (
            f"{qname}: compiled/interpreted diverged on batch ({r})"
        )


def test_engines_implement_backend_interface():
    import pytest

    program = compile_query(Q_TWO_WAY, "iface")
    engine = RecursiveIVMEngine(program)
    assert isinstance(engine, ExecutionBackend)
    engine.on_batch("R", GMR({(1, 10): 1}))
    engine.on_batch("S", GMR({(10, 2): 1}))
    # The historical result() alias still answers (with a warning).
    with pytest.warns(DeprecationWarning):
        legacy = engine.result()
    assert legacy == engine.snapshot()


def test_initialize_from_snapshot():
    db = Database()
    db.insert_rows("R", [(1, 10), (2, 20)])
    db.insert_rows("S", [(10, 5), (20, 6)])
    program = compile_query(Q_TWO_WAY, "warm")
    engine = RecursiveIVMEngine(program)
    engine.initialize(db)
    assert engine.snapshot() == evaluate(Q_TWO_WAY, db)
    # Maintenance continues correctly from the warm state.
    batch = GMR({(3, 10): 1})
    engine.on_batch("R", batch)
    db.apply_update("R", batch)
    assert engine.snapshot() == evaluate(Q_TWO_WAY, db)


def test_unknown_trigger_raises():
    program = compile_query(Q_TWO_WAY, "t")
    engine = RecursiveIVMEngine(program)
    with pytest.raises(KeyError):
        engine.on_batch("NOPE", GMR({(1, 1): 1}))


def test_engine_mode_validation():
    program = compile_query(Q_TWO_WAY, "t")
    with pytest.raises(ValueError):
        RecursiveIVMEngine(program, mode="turbo")


def test_counters_accumulate():
    program = apply_batch_preaggregation(compile_query(Q_THREE_WAY, "c"))
    engine = RecursiveIVMEngine(program, mode="batch")
    engine.on_batch("R", GMR({(1, 2): 1}))
    snap = engine.counters.snapshot()
    assert snap["triggers_fired"] == 1
    assert snap["statements_executed"] > 0
    assert snap["virtual_instructions"] > 0


def test_memory_footprint_reports_tuples():
    program = compile_query(Q_TWO_WAY, "m")
    engine = RecursiveIVMEngine(program)
    engine.on_batch("R", GMR({(1, 10): 1}))
    engine.on_batch("S", GMR({(10, 3): 1}))
    assert engine.memory_footprint() >= 3  # R-view, S-view, top view


def test_updatable_restriction_skips_static_tables():
    program = compile_query(
        Q_TWO_WAY, "static", updatable=frozenset({"R"})
    )
    assert set(program.triggers) == {"R"}
