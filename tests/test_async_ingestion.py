"""The async ingestion subsystem: differential correctness, policy
semantics, backpressure, and the failure contract.

The central invariant: for *every* registered backend, a randomized
insert+delete stream pushed through ``async:<backend>`` must — after a
drain barrier — yield a snapshot identical to the bare inner backend
fed the same stream (the wrapper re-times and re-chunks maintenance,
it never changes its result).  Around it: deterministic flush-on-size /
flush-on-timeout / ordered-delivery / clean-shutdown tests, the three
admission policies under a full queue against a wedged inner backend,
poisoning on inner ``BackendError``, and the no-deadlock guarantee of
``snapshot()`` on a wedged batcher.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.eval import Database, evaluate
from repro.exec import (
    BackendError,
    ExecutionBackend,
    available_backends,
    backend_info,
    create_backend,
    is_registered,
)
from repro.ingest import (
    AdaptivePolicy,
    AsyncIngestBackend,
    IngestOverflow,
    IngestQueue,
    make_policy,
)
from repro.query import join, rel, sum_over
from repro.ring import GMR
from repro.service import ServiceError, ViewService
from repro.workloads.spec import QuerySpec

Q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

SPEC = QuerySpec(
    name="async_q",
    query=Q,
    updatable=frozenset({"R", "S"}),
    key_hints={"R": ("A",), "S": ("B",)},
)

#: every non-wrapper backend in the registry (the wrapper composes with
#: each of them, including the process-parallel one)
INNER_BACKENDS = tuple(
    n for n in available_backends() if not n.startswith("async:")
)


def _mixed_stream(seed: int = 7, n_batches: int = 10) -> list:
    """A deterministic randomized insert+delete stream over R and S."""
    rng = random.Random(seed)
    live: list[tuple[str, tuple]] = []
    batches = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S"))
        delta: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 6)):
            if live and rng.random() < 0.35:
                rel_, row = live.pop(rng.randrange(len(live)))
                if rel_ == relation:
                    delta[row] = delta.get(row, 0) - 1
                    continue
                live.append((rel_, row))
            row = (rng.randint(0, 5), rng.randint(0, 5))
            delta[row] = delta.get(row, 0) + 1
            live.append((relation, row))
        if delta:
            batches.append((relation, GMR(delta)))
    return batches


class RecordingBackend(ExecutionBackend):
    """Accumulates every batch and logs the flush sequence."""

    def __init__(self):
        self.state = GMR()
        self.calls: list[tuple[str, GMR]] = []

    def initialize(self, base):
        pass

    def on_batch(self, relation, batch):
        self.calls.append((relation, GMR(dict(batch.data))))
        self.state.add_inplace(batch)

    def snapshot(self):
        return GMR(dict(self.state.data))


class WedgeBackend(RecordingBackend):
    """Blocks inside ``on_batch`` until released — a slow/stuck engine."""

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def on_batch(self, relation, batch):
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("WedgeBackend never released")
        super().on_batch(relation, batch)


class FailingBackend(RecordingBackend):
    """Raises ``BackendError`` on the Nth ``on_batch``."""

    def __init__(self, fail_on: int = 2):
        super().__init__()
        self.fail_on = fail_on

    def on_batch(self, relation, batch):
        if len(self.calls) + 1 >= self.fail_on:
            raise BackendError("injected inner failure")
        super().on_batch(relation, batch)


def _wrap(inner, **options) -> AsyncIngestBackend:
    options.setdefault("drain_timeout_s", 20.0)
    return AsyncIngestBackend(inner, **options)


# ----------------------------------------------------------------------
# Differential: async:<inner> == bare inner, for every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("inner", INNER_BACKENDS)
def test_async_differential_every_backend(inner):
    """The wrapper's drained snapshot matches the bare backend on a
    randomized insert+delete stream — including ``multiproc``."""
    stream = _mixed_stream(seed=11, n_batches=10)
    bare = create_backend(inner, SPEC)
    wrapped = create_backend(
        f"async:{inner}", SPEC, max_batch=7, queue_capacity=8
    )
    try:
        for relation, batch in stream:
            bare.on_batch(relation, batch)
            wrapped.on_batch(relation, batch)
        wrapped.drain()
        assert wrapped.snapshot() == bare.snapshot(), (
            f"async:{inner} diverged from bare {inner}"
        )
    finally:
        wrapped.close()
        if hasattr(bare, "close"):
            bare.close()


@pytest.mark.parametrize("seed", range(5))
def test_async_differential_randomized_configurations(seed):
    """Random policy/queue/admission configurations (never ``shed``)
    preserve the reference result on random streams."""
    rng = random.Random(100 + seed)
    stream = _mixed_stream(seed=200 + seed, n_batches=14)
    options = {
        "policy": rng.choice(["fixed", "delay", "adaptive"]),
        "max_batch": rng.choice([1, 3, 10, 1000]),
        "queue_capacity": rng.choice([1, 2, 16]),
        "admission": rng.choice(["block", "coalesce"]),
    }
    if options["policy"] != "fixed":
        options["max_delay_s"] = rng.choice([0.001, 0.02])
    wrapped = create_backend("async:rivm-batch", SPEC, **options)
    reference = Database()
    try:
        for relation, batch in stream:
            wrapped.on_batch(relation, batch)
            reference.apply_update(relation, batch)
        assert wrapped.snapshot() == evaluate(Q, reference), options
    finally:
        wrapped.close()


def test_async_changefeed_accumulates_across_drains():
    backend = create_backend("async:rivm-specialized", SPEC, max_batch=4)
    accumulated = GMR()
    try:
        for relation, batch in _mixed_stream(seed=3, n_batches=8):
            backend.on_batch(relation, batch)
            accumulated.add_inplace(backend.last_delta())
            assert accumulated == backend.snapshot()
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Deterministic policy semantics
# ----------------------------------------------------------------------
def test_flush_on_size_exact_grouping():
    """With the queue pre-filled before the batcher starts, a fixed
    size-8 policy groups five 4-tuple batches as 8+8+4."""
    inner = RecordingBackend()
    backend = _wrap(inner, policy="fixed", max_batch=8, autostart=False)
    for i in range(5):
        backend.on_batch("R", GMR({(i, 0): 2, (i, 1): 2}))
    backend.start()
    backend.drain()
    assert [sum(abs(m) for m in b.data.values()) for _, b in inner.calls] \
        == [8, 8, 4]
    assert backend.metrics.flush_sizes == [8, 8, 4]
    assert backend.metrics.flush_entries == [2, 2, 1]
    backend.close()


def test_flush_on_timeout():
    """A delay policy flushes a partial batch within max_delay without
    any drain/snapshot barrier."""
    inner = RecordingBackend()
    backend = _wrap(
        inner, policy="delay", max_delay_s=0.05, max_batch=10_000
    )
    backend.on_batch("R", GMR({(1, 2): 1}))
    deadline = time.monotonic() + 2.0
    while not inner.calls and time.monotonic() < deadline:
        time.sleep(0.005)
    assert inner.calls, "batch never flushed on its own"
    assert backend.metrics.flushes == 1
    backend.close()


def test_ordered_delivery_preserves_relation_runs():
    """Flush order is arrival order with adjacent same-relation runs
    merged: collapsing consecutive duplicates in both sequences gives
    the identical relation string."""

    def collapsed(relations):
        out = []
        for r in relations:
            if not out or out[-1] != r:
                out.append(r)
        return out

    rng = random.Random(42)
    inner = RecordingBackend()
    backend = _wrap(inner, policy="fixed", max_batch=5, autostart=False)
    arrivals = []
    per_relation: dict[str, GMR] = {"R": GMR(), "S": GMR()}
    for i in range(30):
        relation = rng.choice(("R", "S"))
        batch = GMR({(i, rng.randint(0, 3)): 1})
        arrivals.append(relation)
        per_relation[relation].add_inplace(batch)
        backend.on_batch(relation, batch)
    backend.start()
    backend.drain()
    flushed = [r for r, _ in inner.calls]
    assert collapsed(flushed) == collapsed(arrivals)
    for relation in ("R", "S"):
        got = GMR()
        for r, b in inner.calls:
            if r == relation:
                got.add_inplace(b)
        assert got == per_relation[relation]
    backend.close()


def test_clean_shutdown_flushes_non_empty_queue():
    inner = RecordingBackend()
    backend = _wrap(inner, policy="fixed", max_batch=100, autostart=False)
    expected = GMR()
    for i in range(6):
        batch = GMR({(i, i): 1})
        expected.add_inplace(batch)
        backend.on_batch("R", batch)
    backend.close()  # queue still holds all six entries
    assert inner.state == expected, "close() lost queued updates"
    assert not backend._batcher.is_alive()
    with pytest.raises(BackendError, match="closed"):
        backend.on_batch("R", GMR({(9, 9): 1}))


def test_adaptive_policy_closes_the_loop():
    policy = AdaptivePolicy(
        target_latency_s=0.01, min_batch=10, max_batch=1000, initial=100
    )
    policy.observe(100, 0.05)  # too slow -> halve
    assert policy.target_size() == 50
    policy.observe(50, 0.05)
    policy.observe(25, 0.05)
    policy.observe(12, 0.05)
    assert policy.target_size() == 10  # clamped at min_batch
    for _ in range(10):
        policy.observe(policy.target_size(), 0.001)  # fast -> grow
    assert policy.target_size() == 1000  # clamped at max_batch
    # Tiny flushes say nothing about a full batch: no growth.
    before = policy.target_size()
    policy.observe(1, 0.0001)
    assert policy.target_size() == before


def test_drain_clears_its_flush_request():
    """A completed read barrier must not force the next batch into a
    premature flush (the delay/adaptive policies coalesce afterwards
    exactly as before the read)."""
    queue = IngestQueue(capacity=4)
    queue.drain(1.0)  # nothing outstanding: returns immediately
    assert not queue.flush_requested()
    inner = RecordingBackend()
    backend = _wrap(inner, policy="delay", max_delay_s=0.2, max_batch=4)
    backend.on_batch("R", GMR({(0, 0): 1}))
    backend.drain()
    assert backend.metrics.flushes == 1
    # After the barrier, a single sub-target batch is *held* again
    # (flushed by max_delay, not instantly by a stale barrier flag).
    backend.on_batch("R", GMR({(1, 1): 1}))
    time.sleep(0.05)
    assert backend.metrics.flushes == 1, (
        "stale drain flag forced a premature flush"
    )
    backend.close()
    assert inner.state == GMR({(0, 0): 1, (1, 1): 1})


def test_make_policy_rejects_unknown_name():
    with pytest.raises(ValueError, match="fixed"):
        make_policy("warp")
    with pytest.raises(ValueError, match="capacity"):
        IngestQueue(capacity=0)
    with pytest.raises(ValueError, match="admission"):
        IngestQueue(admission="panic")


# ----------------------------------------------------------------------
# Backpressure and admission control
# ----------------------------------------------------------------------
def test_block_admission_times_out_without_poisoning():
    inner = WedgeBackend()
    backend = _wrap(
        inner,
        policy="fixed",
        max_batch=1,
        queue_capacity=2,
        admission="block",
        enqueue_timeout_s=0.15,
    )
    backend.on_batch("R", GMR({(0, 0): 1}))  # popped into the wedged flush
    assert inner.entered.wait(2.0)
    backend.on_batch("R", GMR({(1, 1): 1}))
    backend.on_batch("R", GMR({(2, 2): 1}))  # queue now full
    start = time.monotonic()
    with pytest.raises(IngestOverflow, match="full"):
        backend.on_batch("R", GMR({(3, 3): 1}))
    assert time.monotonic() - start >= 0.1, "blocking admission did not wait"
    inner.release.set()
    # Transient overload: not poisoned, the stream continues.
    backend.on_batch("R", GMR({(4, 4): 1}))
    backend.drain()
    assert backend.snapshot() == GMR(
        {(0, 0): 1, (1, 1): 1, (2, 2): 1, (4, 4): 1}
    )
    backend.close()


def test_shed_admission_drops_observably():
    inner = WedgeBackend()
    backend = _wrap(
        inner,
        policy="fixed",
        max_batch=1,
        queue_capacity=1,
        admission="shed",
    )
    backend.on_batch("R", GMR({(0, 0): 1}))
    assert inner.entered.wait(2.0)
    backend.on_batch("R", GMR({(1, 1): 1}))  # occupies the single slot
    for i in range(2, 5):
        backend.on_batch("R", GMR({(i, i): 2}))  # full -> shed
    inner.release.set()
    backend.drain()
    assert backend.metrics.shed_batches == 3
    assert backend.metrics.shed_tuples == 6
    assert backend.snapshot() == GMR({(0, 0): 1, (1, 1): 1}), (
        "shed batches must be absent from the view"
    )
    backend.close()


def test_coalesce_admission_merges_without_loss():
    inner = WedgeBackend()
    backend = _wrap(
        inner,
        policy="fixed",
        max_batch=1,
        queue_capacity=1,
        admission="coalesce",
    )
    expected = GMR()
    batch0 = GMR({(0, 0): 1})
    expected.add_inplace(batch0)
    backend.on_batch("R", batch0)
    assert inner.entered.wait(2.0)
    for i in range(1, 5):
        batch = GMR({(i, i): 1})
        expected.add_inplace(batch)
        backend.on_batch("R", batch)  # first queues, rest coalesce
    inner.release.set()
    backend.drain()
    assert backend.metrics.coalesced_batches == 3
    assert backend.metrics.shed_batches == 0
    assert len(inner.calls) == 2, "coalesced entries must flush together"
    assert backend.snapshot() == expected, "coalescing must lose nothing"
    backend.close()


# ----------------------------------------------------------------------
# Failure contract
# ----------------------------------------------------------------------
def test_inner_backend_error_poisons_wrapper():
    inner = FailingBackend(fail_on=2)
    backend = _wrap(inner, policy="fixed", max_batch=1)
    backend.on_batch("R", GMR({(0, 0): 1}))
    backend.on_batch("R", GMR({(1, 1): 1}))  # this flush raises
    with pytest.raises(BackendError, match="injected inner failure"):
        backend.drain()
    with pytest.raises(BackendError, match="injected inner failure"):
        backend.on_batch("R", GMR({(2, 2): 1}))
    with pytest.raises(BackendError, match="injected inner failure"):
        backend.snapshot()
    backend.close()


def test_non_backend_exception_also_poisons():
    class Exploding(RecordingBackend):
        def on_batch(self, relation, batch):
            raise ValueError("not even a BackendError")

    backend = _wrap(Exploding(), policy="fixed", max_batch=1)
    backend.on_batch("R", GMR({(0, 0): 1}))
    with pytest.raises(BackendError, match="not even a BackendError"):
        backend.drain()
    backend.close()


def test_wedged_batcher_cannot_deadlock_snapshot():
    inner = WedgeBackend()
    backend = _wrap(inner, policy="fixed", max_batch=1, drain_timeout_s=0.2)
    backend.on_batch("R", GMR({(0, 0): 1}))
    assert inner.entered.wait(2.0)
    start = time.monotonic()
    with pytest.raises(BackendError, match="drain"):
        backend.snapshot()
    assert time.monotonic() - start < 5.0, "snapshot() hung on the wedge"
    # Not poisoned: once the inner backend recovers, reads work again.
    inner.release.set()
    assert backend.snapshot() == GMR({(0, 0): 1})
    backend.close()


def test_multiproc_worker_death_surfaces_through_wrapper():
    """The wrapper forwards the inner multiproc failure contract: with
    restarts disabled, a dead worker poisons the async view instead of
    hanging it."""
    import os
    import signal

    backend = create_backend(
        "async:multiproc", SPEC, n_workers=2, reply_timeout_s=20.0,
        drain_timeout_s=30.0, restart_budget=0,
    )
    try:
        backend.on_batch("R", GMR({(1, 10): 1}))
        backend.drain()
        os.kill(backend.inner._handles[0].process.pid, signal.SIGKILL)
        with pytest.raises(BackendError):
            backend.on_batch("S", GMR({(10, 5): 1}))
            backend.drain()
            backend.on_batch("S", GMR({(20, 5): 1}))
            backend.drain()
    finally:
        backend.close()


def test_multiproc_worker_death_recovers_through_wrapper():
    """Under the default restart budget the wrapper never notices a
    worker death: the inner backend restarts and replays it."""
    import os
    import signal

    backend = create_backend(
        "async:multiproc", SPEC, n_workers=2, reply_timeout_s=20.0,
        drain_timeout_s=30.0,
    )
    try:
        oracle = create_backend("rivm-batch", SPEC)
        for relation, delta in (("R", GMR({(1, 10): 1})),):
            backend.on_batch(relation, delta)
            oracle.on_batch(relation, delta)
        backend.drain()
        victim = backend.inner._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5.0)
        for relation, delta in (
            ("S", GMR({(10, 5): 1})),
            ("R", GMR({(2, 10): 1})),
        ):
            backend.on_batch(relation, delta)
            oracle.on_batch(relation, delta)
        snap = backend.snapshot()
        assert not snap.is_zero()
        assert snap == oracle.snapshot()
        assert backend.inner.metrics.restarts >= 1
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Registry and service integration
# ----------------------------------------------------------------------
def test_async_names_resolve_in_registry():
    assert "async:rivm-batch" in available_backends()
    info = backend_info("async:civm")
    assert "civm" in info.description
    assert is_registered("async:multiproc")
    assert not is_registered("async:warp-drive")
    assert not is_registered("async:async:rivm-batch")
    with pytest.raises(KeyError, match="rivm-batch"):
        backend_info("async:warp-drive")


def test_async_factory_splits_options():
    """Wrapper knobs stay in the wrapper; the rest reaches the inner
    factory (use_compiled here)."""
    backend = create_backend(
        "async:rivm-batch", SPEC, max_batch=17, use_compiled=False
    )
    try:
        assert backend.policy.max_batch == 17
        assert backend.inner.use_compiled is False
    finally:
        backend.close()


def test_service_async_view_pushes_deltas_per_flush():
    service = ViewService(catalog={"R": ("A", "B"), "S": ("B", "C")})
    service.create_view(
        "agg", Q, backend="async:rivm-batch",
        updatable=frozenset({"R", "S"}), max_batch=6,
    )
    events = []
    service.subscribe("agg", events.append)
    for relation, batch in _mixed_stream(seed=5, n_batches=12):
        service.on_batch(relation, batch)
    service.drain("agg")
    accumulated = GMR()
    for event in events:
        assert event.view == "agg"
        accumulated.add_inplace(event.delta)
    assert accumulated == service.snapshot("agg")
    handle = service.view("agg")
    assert handle.deltas_delivered == len(events)
    assert handle.deltas_delivered <= handle.batches_applied, (
        "flush-coalesced delivery should not exceed enqueued batches"
    )
    service.drop_view("agg")
    assert not handle.backend._batcher.is_alive(), (
        "drop_view must close the async backend"
    )


def test_service_rejects_unknown_async_inner():
    service = ViewService(catalog={"R": ("A", "B")})
    with pytest.raises(ServiceError, match="async"):
        service.create_view("v", "SELECT COUNT(*) FROM R",
                            backend="async:warp-drive")


def test_measure_ingestion_reports_split_latencies():
    from repro.harness import measure_ingestion, prepare_stream
    from repro.workloads import MICRO_QUERIES

    prepared = prepare_stream(
        MICRO_QUERIES["M1"], 50, workload="micro", sf=0.01, max_batches=6
    )
    result = measure_ingestion(
        prepared, inner="rivm-batch", policy="adaptive",
        target_latency_s=0.005,
    )
    assert result.metrics.flushes > 0
    assert result.n_tuples > 0
    summary = result.summary()
    assert summary["maintenance_s"]["p50"] >= 0
    assert summary["enqueue_wait_s"]["p50"] >= 0
    assert len(result.snapshot) > 0


def test_coalesce_only_merges_into_the_tail_entry():
    """Coalesce admission must not fold a new batch into an *earlier*
    same-relation entry behind a different relation's tail: that
    batch's (high) seq would flush before later-queued lower seqs,
    breaking the per-subscriber seq monotonicity the service
    guarantees.  A mismatched tail blocks like "block"."""
    q = IngestQueue(capacity=2, admission="coalesce", enqueue_timeout_s=0.1)
    q.put("R", GMR({(1,): 1}), 1, seq=1)
    q.put("S", GMR({(2,): 1}), 1, seq=2)
    with pytest.raises(IngestOverflow):
        q.put("R", GMR({(3,): 1}), 1, seq=3)  # tail is S: no merge
    # A tail-relation batch still coalesces, keeping the highest seq.
    outcome, _depth = q.put("S", GMR({(4,): 1}), 1, seq=4)
    assert outcome == "coalesced"
    first = q.get(0.1)
    second = q.get(0.1)
    assert (first.relation, first.seq) == ("R", 1)
    assert (second.relation, second.seq) == ("S", 4)
    assert second.delta == GMR({(2,): 1, (4,): 1})
