"""Property-based tests (hypothesis) for the core data structures and
the central invariants of the system:

* the GMR ring axioms (the algebraic foundation of §3.1 / Appendix A);
* delta correctness — ``Q(D+ΔD) = Q(D) + ΔQ(D, ΔD)`` for randomly
  generated queries, databases, and mixed insert/delete batches;
* simplification and domain extraction preserve semantics;
* record pools behave like their model dictionary under arbitrary
  operation sequences, with indexes staying consistent;
* columnar/row conversions round-trip;
* hash partitioning is a disjoint cover.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.delta import derive_delta, extract_domain
from repro.delta.simplify import simplify
from repro.distributed.tags import partition_of
from repro.eval import Database, Evaluator, evaluate
from repro.query.ast import Exists, Join
from repro.query.builder import (
    cmp,
    delta as delta_ref,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.ring import GMR
from repro.storage.columnar import ColumnarBatch
from repro.storage.pool import RecordPool

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: small value domains keep join hit rates high
small_int = st.integers(min_value=0, max_value=4)
mult = st.integers(min_value=-3, max_value=3).filter(lambda m: m != 0)


def gmr_of_width(width: int, max_size: int = 8):
    return st.dictionaries(
        st.tuples(*([small_int] * width)), mult, max_size=max_size
    ).map(lambda d: GMR(dict(d)))


gmr2 = gmr_of_width(2)


@st.composite
def databases(draw):
    """A database over fixed schemas R(a,b), S(b,c), T(c,d)."""
    db = Database()
    db.set_view("R", draw(gmr_of_width(2)))
    db.set_view("S", draw(gmr_of_width(2)))
    db.set_view("T", draw(gmr_of_width(2)))
    return db


@st.composite
def flat_queries(draw):
    """A random flat query over R(a,b), S(b,c), T(c,d)."""
    r = rel("R", "a", "b")
    s = rel("S", "b", "c")
    t = rel("T", "c", "d")
    shape = draw(st.sampled_from(["r", "rs", "rst", "union", "filtered"]))
    if shape == "r":
        body = r
        cols = ("a", "b")
    elif shape == "rs":
        body = join(r, s)
        cols = ("a", "b", "c")
    elif shape == "rst":
        body = join(r, s, t)
        cols = ("a", "b", "c", "d")
    elif shape == "union":
        body = union(join(r, s), join(rel("R", "a", "b"), rel("S", "b", "c")))
        cols = ("a", "b", "c")
    else:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        bound = draw(small_int)
        body = join(r, s, cmp("b", op, bound))
        cols = ("a", "b", "c")
    group = draw(st.sets(st.sampled_from(cols), max_size=2))
    group_tuple = tuple(c for c in cols if c in group)
    return sum_over(group_tuple, body)


# ----------------------------------------------------------------------
# GMR ring axioms
# ----------------------------------------------------------------------


@given(gmr2, gmr2)
def test_union_commutes(a, b):
    assert a + b == b + a


@given(gmr2, gmr2, gmr2)
def test_union_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(gmr2)
def test_zero_is_identity(a):
    assert a + GMR() == a
    assert GMR() + a == a


@given(gmr2)
def test_negation_cancels(a):
    assert (a + (-a)).is_zero()
    assert a - a == GMR()


@given(gmr2, gmr2)
def test_subtraction_is_negated_union(a, b):
    assert a - b == a + (-b)


@given(gmr2, st.integers(min_value=-3, max_value=3))
def test_scale_distributes_over_union(a, c):
    b = GMR({t: m for t, m in list(a.items())[: len(a) // 2]})
    assert (a + b).scale(c) == a.scale(c) + b.scale(c)


@given(gmr2)
def test_no_zero_multiplicities_stored(a):
    assert all(m != 0 for m in (a + (-a)).data.values())
    assert all(m != 0 for m in a.data.values())


@given(gmr2)
def test_exists_is_idempotent(a):
    assert a.exists().exists() == a.exists()
    assert all(m == 1 for m in a.exists().data.values())


@given(gmr2)
def test_project_preserves_total(a):
    assert a.project([0]).total() == a.total()
    assert a.project([]).total() == a.total()


@given(gmr2)
def test_add_inplace_matches_add(a):
    b = GMR({t: -m for t, m in a.items()})
    left = a + b
    acc = GMR(dict(a.data))
    acc.add_inplace(b)
    assert acc == left


# ----------------------------------------------------------------------
# Join/union semantics through the evaluator
# ----------------------------------------------------------------------


@given(databases())
def test_join_commutes_semantically(db):
    q1 = sum_over(["a", "b", "c"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    q2 = sum_over(["a", "b", "c"], join(rel("S", "b", "c"), rel("R", "a", "b")))
    assert evaluate(q1, db) == evaluate(q2, db)


@given(databases())
def test_join_distributes_over_union(db):
    r, s, t = rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d")
    lhs = sum_over(["b", "c"], join(union(r, r), s))
    rhs = sum_over(["b", "c"], union(join(r, s), join(r, s)))
    assert evaluate(lhs, db) == evaluate(rhs, db)


@given(databases())
def test_const_one_is_join_identity(db):
    from repro.query.builder import const

    q1 = sum_over(["a"], join(rel("R", "a", "b"), const(1)))
    q2 = sum_over(["a"], rel("R", "a", "b"))
    assert evaluate(q1, db) == evaluate(q2, db)


# ----------------------------------------------------------------------
# Delta correctness: the central IVM invariant
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(flat_queries(), databases(), gmr_of_width(2))
def test_delta_rule_is_exact(q, db, batch):
    """``Q(D + ΔR) == Q(D) + Δ_R Q(D, ΔR)`` with mixed inserts/deletes."""
    before = evaluate(q, db)
    d = derive_delta(q, "R")
    db.set_delta("R", batch)
    change = evaluate(d, db)
    db.clear_deltas()

    db.apply_update("R", batch)
    after = evaluate(q, db)
    assert after == before + change


@settings(max_examples=40, deadline=None)
@given(flat_queries(), databases(), gmr_of_width(2), gmr_of_width(2))
def test_deltas_compose_across_relations(q, db, batch_r, batch_s):
    """Applying ΔR then ΔS via deltas equals direct re-evaluation."""
    result = evaluate(q, db)
    for name, batch in (("R", batch_r), ("S", batch_s)):
        d = derive_delta(q, name)
        db.set_delta(name, batch)
        result = result + evaluate(d, db)
        db.clear_deltas()
        db.apply_update(name, batch)
    assert result == evaluate(q, db)


@settings(max_examples=60, deadline=None)
@given(flat_queries(), databases())
def test_simplify_preserves_semantics(q, db):
    assert evaluate(simplify(q), db) == evaluate(q, db)


@settings(max_examples=60, deadline=None)
@given(flat_queries(), databases(), gmr_of_width(2))
def test_delta_simplified_equals_unsimplified(q, db, batch):
    raw = derive_delta(q, "R", simplify_result=False)
    simp = derive_delta(q, "R", simplify_result=True)
    db.set_delta("R", batch)
    assert evaluate(raw, db) == evaluate(simp, db)


# ----------------------------------------------------------------------
# Domain extraction preserves semantics
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(databases(), gmr_of_width(2))
def test_domain_restriction_is_semantics_preserving(db, batch):
    """Prepending the extracted domain to a delta never changes it:
    ``Δ ≡ dom(Δ) ⋈ Δ`` (domain tuples have multiplicity one and cover
    every tuple the delta touches)."""
    q = sum_over(["a"], join(rel("R", "a", "b"), cmp("b", ">", 1)))
    d = derive_delta(Exists(q), "R", use_domain=False)
    dom = extract_domain(derive_delta(q, "R"))
    db.set_delta("R", batch)
    plain = evaluate(d, db)
    restricted = evaluate(Join((dom, d)) if not isinstance(d, Join) else Join((dom,) + d.parts), db)
    assert plain == restricted


@settings(max_examples=40, deadline=None)
@given(databases(), gmr_of_width(2))
def test_domain_vs_plain_assign_delta_agree(db, batch):
    """The revised (§3.2.2) and plain assignment delta rules agree."""
    q = Exists(sum_over(["a"], join(rel("R", "a", "b"), cmp("b", ">", 1))))
    plain = derive_delta(q, "R", use_domain=False)
    revised = derive_delta(q, "R", use_domain=True)
    db.set_delta("R", batch)
    assert evaluate(plain, db) == evaluate(revised, db)


# ----------------------------------------------------------------------
# Record pools behave like dictionaries, indexes stay consistent
# ----------------------------------------------------------------------


@st.composite
def pool_ops(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["upsert", "delete", "upsert", "clear"]))
        key = (draw(small_int), draw(small_int))
        amount = draw(st.integers(min_value=-2, max_value=2))
        ops.append((kind, key, amount))
    return ops


@given(pool_ops())
def test_pool_matches_model_dict(ops):
    pool = RecordPool(("x", "y"), slice_indexes=(("x",),))
    model: dict[tuple, float] = {}
    for kind, key, amount in ops:
        if kind == "upsert":
            pool.upsert(key, amount)
            m = model.get(key, 0) + amount
            if m == 0:
                model.pop(key, None)
            else:
                model[key] = m
        elif kind == "delete":
            pool.delete(key)
            model.pop(key, None)
        else:
            pool.clear()
            model.clear()
    assert pool.data == model
    assert len(pool) == len(model)


@given(pool_ops(), small_int)
def test_pool_slice_matches_filter(ops, probe):
    pool = RecordPool(("x", "y"), slice_indexes=(("x",),))
    model: dict[tuple, float] = {}
    for kind, key, amount in ops:
        if kind == "upsert":
            pool.upsert(key, amount)
            m = model.get(key, 0) + amount
            if m == 0:
                model.pop(key, None)
            else:
                model[key] = m
        elif kind == "delete":
            pool.delete(key)
            model.pop(key, None)
        else:
            pool.clear()
            model.clear()
    idx = pool.slice_index_for(frozenset({"x"}))
    got = dict(pool.slice(idx, (probe,)))
    want = {k: v for k, v in model.items() if k[0] == probe}
    assert got == want


@given(gmr2)
def test_pool_replace_contents_roundtrip(g):
    pool = RecordPool(("x", "y"))
    pool.upsert((9, 9), 5)  # pre-existing content must vanish
    pool.replace_contents(g)
    assert pool.data == g.data


# ----------------------------------------------------------------------
# Columnar layout round-trips
# ----------------------------------------------------------------------


@given(gmr2)
def test_columnar_roundtrip(g):
    batch = ColumnarBatch.from_gmr(g, ("x", "y"))
    assert batch.to_gmr() == g
    assert len(batch) == len(g)


@given(gmr2, small_int)
def test_columnar_filter_matches_gmr_filter(g, bound):
    batch = ColumnarBatch.from_gmr(g, ("x", "y"))
    filtered = batch.filter_column("x", lambda v: v <= bound)
    expected = g.filter(lambda t: t[0] <= bound)
    assert filtered.to_gmr() == expected


@given(gmr2)
def test_columnar_aggregate_matches_project(g):
    batch = ColumnarBatch.from_gmr(g, ("x", "y"))
    assert batch.aggregate(("x",)).to_gmr() == g.project([0])


# ----------------------------------------------------------------------
# Hash partitioning
# ----------------------------------------------------------------------


@given(
    st.lists(st.tuples(small_int, small_int), max_size=30),
    st.integers(min_value=1, max_value=7),
)
def test_partitioning_is_disjoint_cover(keys, n_workers):
    assignments = [partition_of(k, n_workers) for k in keys]
    assert all(0 <= w < n_workers for w in assignments)
    # Determinism: same key, same worker.
    for k, w in zip(keys, assignments):
        assert partition_of(k, n_workers) == w


# ----------------------------------------------------------------------
# End-to-end: maintenance equals re-evaluation on random streams
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    flat_queries(),
    st.lists(
        st.tuples(st.sampled_from(["R", "S", "T"]), gmr_of_width(2)),
        max_size=6,
    ),
)
def test_engine_matches_reevaluation_on_random_streams(q, stream):
    from repro.compiler import apply_batch_preaggregation, compile_query
    from repro.exec import RecursiveIVMEngine

    program = apply_batch_preaggregation(compile_query(q, "P"))
    engine = RecursiveIVMEngine(program, mode="batch")
    reference = Database()
    for name, batch in stream:
        if batch.is_zero():
            continue
        if name in program.triggers:
            engine.on_batch(name, batch)
        # Relations the query never references cannot change the view;
        # the reference applies them anyway (the query ignores them).
        reference.apply_update(name, batch)
    assert engine.snapshot() == evaluate(q, reference)
