"""Domain extraction (Fig. 1) — structure and semantic preservation.

The revised assignment/Exists delta rules prepend the extracted domain;
they must evaluate to exactly the same GMR as the plain recompute-twice
rules, on every database and update batch.
"""

import random

import pytest

from repro.delta import derive_delta
from repro.delta.domain import (
    domain_binds_correlated_var,
    extract_domain,
    restrict_domain,
    revised_assign_delta,
    revised_exists_delta,
)
from repro.delta.simplify import is_statically_zero
from repro.eval import Database, evaluate
from repro.query import (
    Assign,
    Const,
    Exists,
    assign,
    cmp,
    delta as delta_rel,
    exists,
    join,
    out_cols,
    rel,
    sum_over,
)
from repro.query.ast import DeltaRel, Join, Sum
from repro.ring import GMR

ONE = Const(1)


# ----------------------------------------------------------------------
# Structural behaviour of extract_domain
# ----------------------------------------------------------------------


def test_delta_rel_leaf_becomes_exists():
    d = extract_domain(delta_rel("R", "A", "B"))
    assert d == Exists(delta_rel("R", "A", "B"))


def test_base_rel_leaf_is_one_by_default():
    assert extract_domain(rel("R", "A", "B")) == ONE


def test_base_rel_leaf_with_cardinality_hint():
    d = extract_domain(rel("R", "A"), low_cardinality=frozenset({"R"}))
    assert d == Exists(rel("R", "A"))


def test_product_unions_domains():
    e = join(delta_rel("R", "A", "B"), cmp("B", ">", 3))
    d = extract_domain(e)
    assert isinstance(d, Join)
    assert Exists(delta_rel("R", "A", "B")) in d.parts
    assert cmp("B", ">", 3) in d.parts


def test_unbound_comparison_dropped_by_closure():
    # C is bound by the (big) relation S which contributes no domain, so
    # the comparison cannot be part of a standalone domain expression.
    e = join(delta_rel("R", "A", "B"), rel("S", "B", "C"), cmp("C", ">", 3))
    d = extract_domain(e)
    assert d == Exists(delta_rel("R", "A", "B"))


def test_union_intersects_domains():
    a = join(delta_rel("R", "A", "B"), cmp("B", ">", 3))
    b = join(delta_rel("R", "A", "B"), cmp("B", "<", 9))
    from repro.query import union

    d = extract_domain(union(a, b))
    assert d == Exists(delta_rel("R", "A", "B"))  # only the common factor


def test_union_with_disjoint_domains_is_one():
    from repro.query import union

    a = delta_rel("R", "A", "B")
    b = delta_rel("S", "B", "C")
    d = extract_domain(union(a, b))
    assert d == ONE


def test_sum_projects_domain_example_3_2():
    """Sum[A](ΔR(A,B) ⋈ (B>3)) → Exists(Sum[A](Exists(ΔR) ⋈ (B>3)))."""
    e = sum_over(["A"], join(delta_rel("R", "A", "B"), cmp("B", ">", 3)))
    d = extract_domain(e)
    assert isinstance(d, Exists)
    assert isinstance(d.child, Sum)
    assert d.child.group_by == ("A",)
    assert out_cols(d) == ("A",)


def test_sum_with_no_domain_group_by_overlap_is_one():
    # Domain binds A only; group-by is C: no restriction possible.
    e = sum_over(["C"], join(delta_rel("R", "A"), rel("S", "A", "C")))
    assert extract_domain(e) == ONE


def test_scalar_sum_domain_is_one():
    e = sum_over([], delta_rel("R", "A"))
    assert extract_domain(e) == ONE


def test_assign_over_relational_child_recurses():
    e = assign("X", sum_over(["A"], delta_rel("R", "A", "B")))
    d = extract_domain(e)
    assert out_cols(d) == ("A",)


def test_assign_over_value_is_domain_factor():
    e = join(delta_rel("R", "A"), assign("X", "A"))
    d = extract_domain(e)
    assert isinstance(d, Join)
    assert assign("X", "A") in d.parts


def test_restrict_domain_projects():
    dom = Exists(delta_rel("R", "A", "B"))
    r = restrict_domain(dom, ("A",))
    assert out_cols(r) == ("A",)
    assert isinstance(r, Exists)


def test_restrict_domain_no_overlap_is_one():
    dom = Exists(delta_rel("R", "A", "B"))
    assert restrict_domain(dom, ("Z",)) == ONE


def test_restrict_domain_identity():
    dom = Exists(delta_rel("R", "A"))
    assert restrict_domain(dom, ("A",)) == dom
    assert restrict_domain(ONE, ("A",)) == ONE


# ----------------------------------------------------------------------
# The §3.2.3 decision rule
# ----------------------------------------------------------------------


def test_correlated_nested_aggregate_is_incremental():
    """Q17-style: nested aggregate equality-correlated on B."""
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    dqn = derive_delta(qn, "S", simplify_result=True)
    # Rewrite under correlation: the delta binds B2; with B==B2 the
    # domain reaches the correlated variable through the comparison.
    dom = extract_domain(dqn)
    # ΔS binds B2; the domain itself binds B2 (not B), but B is
    # equality-correlated to B2, so the practical rule of §3.2.3 asks
    # whether the domain binds any equality-correlated column.
    assert dom != ONE


def test_uncorrelated_nested_aggregate_reevaluates():
    """Example 3.3: nested COUNT(*) FROM S, uncorrelated."""
    qn = sum_over([], rel("S", "B2", "C"))
    dqn = derive_delta(qn, "S")
    dom = extract_domain(dqn)
    assert dom == ONE
    assert not domain_binds_correlated_var(dom, qn)


def test_distinct_domain_binds_output_column():
    inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3)))
    d_inner = derive_delta(inner, "R")
    dom = extract_domain(d_inner)
    assert domain_binds_correlated_var(dom, inner)


# ----------------------------------------------------------------------
# Semantic equivalence of revised vs. plain delta rules
# ----------------------------------------------------------------------


def _check_revised_exists_equivalent(inner, rel_name, db, batch):
    """Plain and domain-restricted Exists deltas must agree."""
    e = exists(inner)
    d_inner = derive_delta(inner, rel_name)
    if is_statically_zero(d_inner):
        return
    plain = derive_delta(e, rel_name)
    revised = revised_exists_delta(e, d_inner)
    db.set_delta(rel_name, batch)
    assert evaluate(plain, db) == evaluate(revised, db), (
        f"revised Exists delta diverged for {e!r} / Δ{rel_name}"
    )
    db.clear_deltas()


def _check_revised_assign_equivalent(var, inner, context, rel_name, db, batch):
    """Plain and domain-restricted assignment deltas must agree inside a
    full query context (the context supplies correlation bindings)."""
    a = Assign(var, inner)
    d_inner = derive_delta(inner, rel_name)
    if is_statically_zero(d_inner):
        return
    plain_delta_assign = derive_delta(a, rel_name, simplify_result=False)
    revised_delta_assign = revised_assign_delta(a, d_inner)
    db.set_delta(rel_name, batch)
    g_plain = evaluate(context(plain_delta_assign), db)
    g_revised = evaluate(context(revised_delta_assign), db)
    assert g_plain == g_revised
    db.clear_deltas()


@pytest.fixture
def db():
    d = Database()
    d.insert_rows("R", [(1, 10), (2, 10), (3, 20), (4, 30)])
    d.insert_rows("S", [(10, "x"), (10, "y"), (20, "z"), (30, "w")])
    return d


def test_revised_exists_distinct_insert(db):
    inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3)))
    _check_revised_exists_equivalent(inner, "R", db, GMR({(7, 40): 1}))


def test_revised_exists_distinct_delete(db):
    inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3)))
    _check_revised_exists_equivalent(inner, "R", db, GMR({(1, 10): -1}))


def test_revised_exists_distinct_filtered_update(db):
    inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3)))
    _check_revised_exists_equivalent(inner, "R", db, GMR({(9, 1): 1}))


def test_revised_assign_correlated(db):
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))

    def context(d_assign):
        return sum_over(
            [], join(rel("R", "A", "B"), d_assign, cmp("A", "<", "X"))
        )

    _check_revised_assign_equivalent(
        "X", qn, context, "S", db, GMR({(10, "new"): 1, (20, "z"): -1})
    )


def test_revised_rules_randomized():
    rng = random.Random(77)
    inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 2)))
    for _ in range(30):
        db = Database()
        for _ in range(rng.randint(0, 10)):
            db.get_view("R").add_tuple(
                (rng.randint(0, 3), rng.randint(0, 5)), rng.choice([1, 2, -1])
            )
        batch = GMR()
        for _ in range(rng.randint(1, 5)):
            batch.add_tuple(
                (rng.randint(0, 3), rng.randint(0, 5)), rng.choice([1, -1])
            )
        _check_revised_exists_equivalent(inner, "R", db, batch)


def test_revised_exists_full_maintenance_cycle():
    """Maintain DISTINCT through a stream using the revised rule only."""
    q_inner = sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3)))
    q = exists(q_inner)
    db = Database()
    materialized = GMR()
    rng = random.Random(5)
    for step in range(40):
        t = (rng.randint(0, 5), rng.randint(0, 8))
        m = rng.choice([1, 1, -1])
        if m == -1 and db.get_view("R").get(t) <= 0:
            m = 1
        batch = GMR({t: m})
        d_inner = derive_delta(q_inner, "R")
        revised = revised_exists_delta(q, d_inner)
        db.set_delta("R", batch)
        materialized.add_inplace(evaluate(revised, db))
        db.apply_update("R", batch)
        db.clear_deltas()
        assert materialized == evaluate(q, db), f"diverged at step {step}"
