"""The unified ExecutionBackend interface and its registry.

Every registered backend must construct from a query spec, accept the
``initialize / on_batch / snapshot`` protocol, and maintain the same
result the reference evaluator computes — including the simulated
cluster, which now initializes through the same interface.
"""

import pytest

from repro.eval import Database, evaluate
from repro.exec import (
    ExecutionBackend,
    available_backends,
    backend_info,
    create_backend,
    register_backend,
)
from repro.query import join, rel, sum_over
from repro.ring import GMR
from repro.workloads.spec import QuerySpec

Q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

SPEC = QuerySpec(
    name="registry_q",
    query=Q,
    updatable=frozenset({"R", "S"}),
    key_hints={"R": ("A",), "S": ("B",)},
)

BATCHES = [
    ("R", GMR({(1, 10): 1, (2, 20): 1})),
    ("S", GMR({(10, 5): 1, (20, 6): 2})),
    ("R", GMR({(3, 10): 1, (1, 10): -1})),
    ("S", GMR({(10, 5): -1})),
]


def test_builtin_backends_registered():
    names = available_backends()
    for expected in (
        "rivm-single", "rivm-batch", "rivm-specialized",
        "reeval", "civm", "cluster",
    ):
        assert expected in names
    assert backend_info("cluster").description


def test_unknown_backend_raises_with_catalog():
    with pytest.raises(KeyError, match="rivm-batch"):
        create_backend("warp-drive", SPEC)


@pytest.mark.parametrize("name", sorted(
    n for n in available_backends()
))
def test_every_backend_tracks_reference(name):
    backend = create_backend(name, SPEC)
    assert isinstance(backend, ExecutionBackend)
    reference = Database()
    for relation, batch in BATCHES:
        backend.on_batch(relation, batch)
        reference.apply_update(relation, batch)
        assert backend.snapshot() == evaluate(Q, reference), (
            f"{name} diverged after a batch on {relation}"
        )


@pytest.mark.parametrize("name", sorted(available_backends()))
def test_every_backend_changefeed_accumulates_to_snapshot(name):
    """The default last_delta() hook: per-batch deltas sum to the
    snapshot for every registered backend."""
    backend = create_backend(name, SPEC)
    accumulated = GMR()
    for relation, batch in BATCHES:
        backend.on_batch(relation, batch)
        accumulated.add_inplace(backend.last_delta())
        assert accumulated == backend.snapshot(), (
            f"{name} changefeed diverged after a batch on {relation}"
        )


def test_changefeed_coalesces_between_calls():
    backend = create_backend("rivm-batch", SPEC)
    for relation, batch in BATCHES[:2]:
        backend.on_batch(relation, batch)
    # One call covers everything since the stream started.
    assert backend.last_delta() == backend.snapshot()
    # Nothing new processed -> empty delta.
    assert backend.last_delta().is_zero()


def test_result_is_deprecated_alias_of_snapshot():
    backend = create_backend("rivm-batch", SPEC)
    backend.on_batch("R", GMR({(1, 10): 1}))
    with pytest.warns(DeprecationWarning, match="snapshot"):
        legacy = backend.result()
    assert legacy == backend.snapshot()


@pytest.mark.parametrize("name", ["rivm-batch", "rivm-specialized", "cluster"])
def test_backend_initialize_from_loaded_database(name):
    base = Database()
    base.insert_rows("R", [(1, 10), (2, 20)])
    base.insert_rows("S", [(10, 3)])
    backend = create_backend(name, SPEC)
    backend.initialize(base)
    assert backend.snapshot() == evaluate(Q, base)
    # Maintenance continues correctly from the warm state.
    batch = GMR({(5, 10): 1})
    backend.on_batch("R", batch)
    base.apply_update("R", batch)
    assert backend.snapshot() == evaluate(Q, base)


@pytest.mark.parametrize("use_compiled", [True, False])
def test_backends_honor_compilation_toggle(use_compiled):
    backend = create_backend("rivm-batch", SPEC, use_compiled=use_compiled)
    assert backend.use_compiled is use_compiled
    reference = Database()
    for relation, batch in BATCHES:
        backend.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert backend.snapshot() == evaluate(Q, reference)


def test_cluster_backend_options():
    backend = create_backend("cluster", SPEC, n_workers=3)
    assert backend.n_workers == 3
    for relation, batch in BATCHES:
        backend.on_batch(relation, batch)
    reference = Database()
    for relation, batch in BATCHES:
        reference.apply_update(relation, batch)
    assert backend.snapshot() == evaluate(Q, reference)


def test_create_backend_from_sql_and_expr():
    """SQL views and pre-built specs share one creation path."""
    catalog = {"R": ("A", "B"), "S": ("B", "C")}
    from_sql = create_backend(
        "rivm-batch",
        "SELECT R.B, COUNT(*) FROM R, S WHERE R.B = S.B GROUP BY R.B",
        catalog=catalog,
        view_name="per_b",
    )
    from_expr = create_backend("civm", Q)
    reference = Database()
    for relation, batch in BATCHES:
        from_sql.on_batch(relation, batch)
        from_expr.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    want = evaluate(Q, reference)
    assert from_expr.snapshot() == want
    # The SQL lowering names columns <alias>_<column>; the counted
    # multiset is the same.
    assert sorted(from_sql.snapshot().data.values()) == sorted(
        want.data.values()
    )


def test_create_backend_sql_without_catalog_raises():
    with pytest.raises(TypeError, match="catalog"):
        create_backend("rivm-batch", "SELECT COUNT(*) FROM R")


def test_register_custom_backend():
    class NullBackend(ExecutionBackend):
        def __init__(self):
            self.batches = 0

        def initialize(self, base):
            pass

        def on_batch(self, relation, batch):
            self.batches += 1

        def snapshot(self):
            return GMR()

    register_backend("null", lambda spec, **_: NullBackend(), "discards all")
    try:
        backend = create_backend("null", SPEC)
        backend.on_batch("R", GMR({(1, 2): 1}))
        assert backend.batches == 1
        assert "null" in available_backends()
    finally:
        # Keep the registry clean for other tests.
        from repro.exec.backend import _REGISTRY

        _REGISTRY.pop("null", None)
