"""Per-client ingest quotas: the token bucket on POST /batch.

Covers the ``RateLimiter`` bucket arithmetic (with an injected clock —
no sleeping), the ViewServer wiring (429 + ``Retry-After`` + the
``repro_server_throttled_total`` counter, per-client keying by bearer
token, keep-alive survival of a throttled request), and the same quota
on the cluster router tier.
"""

import http.client
import json

import pytest

from repro.net import Client, NetError, RateLimiter, ViewServer
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c")}


# ----------------------------------------------------------------------
# The bucket itself
# ----------------------------------------------------------------------


def test_bucket_admits_burst_then_throttles():
    rl = RateLimiter(rate=2)  # burst defaults to max(1, rate) = 2
    assert rl.try_acquire("k", now=0.0) == 0.0
    assert rl.try_acquire("k", now=0.0) == 0.0
    wait = rl.try_acquire("k", now=0.0)
    assert wait == pytest.approx(0.5)  # 1 token at 2/s


def test_bucket_refills_at_rate_up_to_burst():
    rl = RateLimiter(rate=1, burst=3)
    for _ in range(3):
        assert rl.try_acquire("k", now=0.0) == 0.0
    assert rl.try_acquire("k", now=0.0) > 0
    # after 10 idle seconds the bucket is full again — but only to
    # burst, not to 10
    for _ in range(3):
        assert rl.try_acquire("k", now=10.0) == 0.0
    assert rl.try_acquire("k", now=10.0) > 0


def test_bucket_keys_are_independent():
    rl = RateLimiter(rate=1)
    assert rl.try_acquire("alice", now=0.0) == 0.0
    assert rl.try_acquire("alice", now=0.0) > 0
    assert rl.try_acquire("bob", now=0.0) == 0.0  # unaffected


def test_bucket_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        RateLimiter(rate=0)


# ----------------------------------------------------------------------
# ViewServer wiring
# ----------------------------------------------------------------------


def _post_batch(conn, relation="R", token=None):
    headers = {"Content-Type": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    body = json.dumps([[[1, 2], 1]])  # encode_gmr wire shape
    conn.request("POST", f"/batch/{relation}", body, headers)
    resp = conn.getresponse()
    payload = resp.read()
    return resp.status, dict(resp.getheaders()), payload


def test_server_throttles_with_429_and_retry_after():
    service = ViewService(catalog=CATALOG)
    service.create_view(
        "v", "SELECT a, COUNT(*) FROM R GROUP BY a"
    )
    with ViewServer(service, max_batches_per_sec=2) as server:
        conn = http.client.HTTPConnection(server.host, server.port)
        statuses = [_post_batch(conn)[0] for _ in range(4)]
        assert statuses[:2] == [200, 200]  # burst of 2 admitted
        assert 429 in statuses[2:]
        status, headers, payload = _post_batch(conn)
        assert status == 429
        retry_after = headers.get("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1
        assert json.loads(payload)["retry_after"] == int(retry_after)

        # the throttled keep-alive connection stays usable: the body
        # was drained, so the next request parses cleanly
        conn.request("GET", "/health")
        resp = conn.getresponse()
        assert resp.status == 200
        resp.read()

        # over-quota batches were never ingested
        assert service.seq == 2

        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        expo = resp.read().decode()
        throttled = [
            line for line in expo.splitlines()
            if line.startswith("repro_server_throttled_total")
        ]
        assert throttled and int(throttled[0].rsplit(" ", 1)[1]) >= 2


def test_server_quota_is_keyed_per_bearer_token():
    service = ViewService(catalog=CATALOG)
    service.create_view("v", "SELECT a, COUNT(*) FROM R GROUP BY a")
    with ViewServer(
        service, auth_token=None, max_batches_per_sec=1
    ) as server:
        conn = http.client.HTTPConnection(server.host, server.port)
        # exhaust alice's bucket; bob's is untouched (auth is off, but
        # a presented bearer token still identifies the client)
        assert _post_batch(conn, token="alice")[0] == 200
        assert _post_batch(conn, token="alice")[0] == 429
        assert _post_batch(conn, token="bob")[0] == 200


def test_server_without_quota_never_throttles():
    service = ViewService(catalog=CATALOG)
    service.create_view("v", "SELECT a, COUNT(*) FROM R GROUP BY a")
    with ViewServer(service) as server:
        assert server.rate_limiter is None
        client = Client(host=server.host, port=server.port)
        for _ in range(10):
            client.batch("R", GMR({(1, 2): 1}))
        assert "throttled" not in service.registry.render()


# ----------------------------------------------------------------------
# Router tier
# ----------------------------------------------------------------------


def test_router_throttles_with_429_and_counter():
    from repro.cluster import ClusterRouter

    service = ViewService(catalog=CATALOG)
    with ViewServer(service) as shard:
        router = ClusterRouter(
            f"{shard.host}:{shard.port}", CATALOG, max_batches_per_sec=1
        )
        try:
            router_thread = __import__("threading").Thread(
                target=router._httpd.serve_forever, daemon=True
            )
            router_thread.start()
            conn = http.client.HTTPConnection(router.host, router.port)
            first, _, _ = _post_batch(conn)
            status, headers, _ = _post_batch(conn)
            assert status == 429
            assert int(headers.get("Retry-After")) >= 1
            expo = router.metrics_exposition()
            assert "repro_server_throttled_total 1" in expo
        finally:
            router._httpd.shutdown()
