"""End-to-end telemetry: registry, tracer, exposition, heartbeats.

The acceptance bar (ISSUE 8): a single batch ingested into a 2-shard
cluster must yield one assembled trace — router admission → scatter →
shard flush → maintain → publish → router merge → subscriber delivery
— every span sharing one trace id and carrying the right seqs, while
``GET /metrics`` on both tiers serves valid Prometheus text (the router
merging shard scrapes under per-shard labels).  Around that: registry
unit behavior (get-or-create, cardinality bound, percentile
interpolation, strict parse), an 8-thread histogram hammer with count
conservation, the per-view stats race regression (counters mutated
from batcher threads), heartbeat seq/uptime enrichment, and the smoke
tests CI runs per Python version.
"""

import contextlib
import math
import re
import threading
import time

import pytest

from repro.cluster import ClusterRouter
from repro.net import Client, ViewServer
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    assemble,
    bucket_percentile,
    merge_expositions,
    parse_prometheus,
)
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
SQL_CNT_A = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"


@contextlib.contextmanager
def cluster(n_shards: int):
    """``n_shards`` in-process shard servers behind a live router
    (the test_cluster.py harness, without the replica knobs)."""
    services: list[ViewService] = []
    servers: list[ViewServer] = []
    router = None
    try:
        for _ in range(n_shards):
            svc = ViewService(catalog=CATALOG)
            services.append(svc)
            servers.append(ViewServer(svc).start())
        groups = [[("127.0.0.1", s.port)] for s in servers]
        router = ClusterRouter(groups, CATALOG).start()
        yield router, services, servers
    finally:
        if router is not None:
            router.close()
        for server in servers:
            server.close()
        for svc in services:
            for name in svc.views():
                svc.drop_view(name)


def _sample_map(text: str) -> dict:
    """``{(name, sorted-label-items): value}`` for exposition asserts."""
    return {
        (s.name, tuple(sorted(s.labels.items()))): s.value
        for s in parse_prometheus(text)
    }


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------


def test_counter_and_gauge_roundtrip():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total", help="a counter")
    c.inc()
    c.inc(3)
    assert c.value == 4
    g = reg.gauge("repro_test_depth", help="a gauge")
    g.set(7)
    g.inc()
    g.dec(2)
    samples = _sample_map(reg.render())
    assert samples[("repro_test_total", ())] == 4
    assert samples[("repro_test_depth", ())] == 6


def test_get_or_create_same_series():
    """Re-registering (server restart over one service) must hand back
    the same live series, not raise or zero it."""
    reg = MetricsRegistry()
    a = reg.counter("repro_test_total", labels={"view": "v"})
    a.inc(5)
    b = reg.counter("repro_test_total", labels={"view": "v"})
    assert b is a and b.value == 5
    with pytest.raises(MetricError):
        reg.gauge("repro_test_total")  # same name, different kind


def test_callback_gauge_reads_at_scrape_time():
    reg = MetricsRegistry()
    state = {"n": 1}
    reg.gauge_fn("repro_test_live", lambda: state["n"])
    assert _sample_map(reg.render())[("repro_test_live", ())] == 1
    state["n"] = 42
    assert _sample_map(reg.render())[("repro_test_live", ())] == 42


def test_histogram_buckets_and_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.05, 0.5, 0.5, 0.5, 0.5, 5.0, 5.0, 5.0, 50.0):
        h.observe(v)
    cum = h.cumulative()
    assert cum == [(0.1, 2), (1.0, 6), (10.0, 9), (math.inf, 10)]
    # p50 falls in (0.1, 1.0]: 2 below, 4 inside, rank 5 → interpolated
    p50 = h.percentile(50)
    assert 0.1 < p50 <= 1.0
    # a rank in the +Inf bucket clamps to the top finite bound
    assert h.percentile(99) == 10.0
    # standalone interpolation helper agrees with the histogram
    assert bucket_percentile(cum, 50) == pytest.approx(p50)


def test_exposition_renders_valid_prometheus():
    reg = MetricsRegistry()
    reg.counter("repro_test_total", help="with \"quotes\" and \\slash",
                labels={"view": 'v"1"', "rel": "a\\b"}).inc()
    reg.histogram("repro_test_seconds", buckets=(0.5,)).observe(0.1)
    text = reg.render()
    # HELP/TYPE precede samples; histograms expand to _bucket/_sum/_count
    assert re.search(r"^# TYPE repro_test_total counter$", text, re.M)
    assert re.search(r"^# TYPE repro_test_seconds histogram$", text, re.M)
    assert 'le="+Inf"' in text
    samples = parse_prometheus(text)
    names = {s.name for s in samples}
    assert {"repro_test_total", "repro_test_seconds_bucket",
            "repro_test_seconds_sum", "repro_test_seconds_count"} <= names
    # escaped labels survive the round trip
    (ctr,) = [s for s in samples if s.name == "repro_test_total"]
    assert ctr.labels == {"view": 'v"1"', "rel": "a\\b"}


def test_parse_rejects_malformed_exposition():
    with pytest.raises(MetricError):
        parse_prometheus("this is { not prometheus\n")


def test_cardinality_bound_folds_overflow():
    reg = MetricsRegistry(max_series_per_family=3)
    fam_children = [
        reg.counter("repro_test_total", labels={"view": f"v{i}"})
        for i in range(5)
    ]
    for c in fam_children:
        c.inc()  # detached overflow children must not crash
    samples = _sample_map(reg.render())
    kept = [k for k in samples if k[0] == "repro_test_total"]
    assert len(kept) == 3
    assert samples[("repro_registry_dropped_series_total", ())] == 2


def test_scope_close_removes_series():
    reg = MetricsRegistry()
    scope = reg.scope(view="doomed")
    scope.counter("repro_test_total").inc()
    scope.gauge_fn("repro_test_depth", lambda: 1)
    assert "doomed" in reg.render()
    scope.close()
    assert "doomed" not in reg.render()


def test_merge_expositions_stamps_shard_labels():
    a = MetricsRegistry()
    a.counter("repro_test_total", help="h", labels={"view": "v"}).inc(2)
    b = MetricsRegistry()
    b.counter("repro_test_total", help="h", labels={"view": "v"}).inc(5)
    merged = merge_expositions(
        [({"shard": "0"}, a.render()), ({"shard": "1"}, b.render())]
    )
    samples = _sample_map(merged)
    assert samples[("repro_test_total",
                    (("shard", "0"), ("view", "v")))] == 2
    assert samples[("repro_test_total",
                    (("shard", "1"), ("view", "v")))] == 5
    # HELP/TYPE appear once per family, not once per source page
    assert merged.count("# TYPE repro_test_total counter") == 1


def test_histogram_thread_hammer_conserves_counts():
    """8 writer threads on one histogram: no observation may be lost
    or double-counted, and the bucket counts must stay cumulative."""
    reg = MetricsRegistry()
    h = reg.histogram("repro_test_seconds", buckets=DEFAULT_BUCKETS)
    per_thread, n_threads = 2_000, 8
    values = [b * 1.5 for b in DEFAULT_BUCKETS]  # straddle every bucket

    def hammer(seed: int):
        for i in range(per_thread):
            h.observe(values[(seed + i) % len(values)])

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    cum = h.cumulative()
    assert cum[-1][1] == per_thread * n_threads
    assert all(b <= a for (_, b), (_, a) in zip(cum, cum[1:]))
    samples = _sample_map(reg.render())
    assert samples[("repro_test_seconds_count", ())] == per_thread * n_threads


# ----------------------------------------------------------------------
# Tracer units
# ----------------------------------------------------------------------


def test_span_nesting_and_assembly():
    tracer = Tracer()
    with tracer.span("admission", relation="R", seq=1) as admission:
        with tracer.span("flush", admission.ctx, seq=1) as flush:
            with tracer.span("maintain", flush.ctx, seq=1):
                pass
    trees = assemble(tracer.spans())
    assert len(trees) == 1
    (root,) = trees[0]["spans"]
    assert root["stage"] == "admission"
    assert root["children"][0]["stage"] == "flush"
    assert root["children"][0]["children"][0]["stage"] == "maintain"


def test_trace_context_header_and_wire_roundtrip():
    ctx = TraceContext("abcd1234", "p-1")
    assert TraceContext.parse(ctx.header()) == ctx
    assert TraceContext.from_wire(ctx.to_wire()) == ctx
    assert TraceContext.parse("garbage") is None
    assert TraceContext.parse(None) is None
    assert TraceContext.from_wire({"id": "x"}) is None


def test_disabled_tracer_emits_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("admission", seq=1) as h:
        assert h.ctx is None
    assert tracer.spans() == []


def test_recent_filters_by_view_seq_and_coalesced_seqs():
    tracer = Tracer()
    tracer.span("admission", view="a", seq=1).finish()
    tracer.span("flush", view="b", seqs=[2, 3]).finish()
    assert len(tracer.recent(view="a")) == 1
    assert len(tracer.recent(seq=3)) == 1  # membership in seqs list
    assert tracer.recent(seq=9) == []


def test_ndjson_tee_writes_parseable_spans(tmp_path):
    import json

    out = tmp_path / "spans.ndjson"
    tracer = Tracer(out=str(out))
    tracer.span("admission", seq=1).finish()
    tracer.span("flush", seq=1).finish()
    tracer.close()
    lines = out.read_text().splitlines()
    assert len(lines) == 2
    spans = [Span.from_dict(json.loads(line)) for line in lines]
    assert {s.stage for s in spans} == {"admission", "flush"}


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


def test_service_metrics_cover_sync_and_async_views():
    service = ViewService(catalog=CATALOG)
    service.create_view("sync_v", SQL_CNT_A, backend="rivm-batch")
    service.create_view("async_v", SQL_PER_B, backend="async:rivm-batch")
    try:
        for _ in range(3):
            service.on_batch("R", GMR({(1, 10): 1}))
        service.on_batch("S", GMR({(10, 2): 1}))
        service.drain()
        samples = _sample_map(service.registry.render())
        v = ("view", "sync_v")
        assert samples[("repro_view_batches_total", (v,))] == 3
        assert samples[("repro_view_maintain_seconds_count", (v,))] == 3
        assert samples[("repro_service_seq", ())] == 4
        # async views expose queue depth and the ingest-layer counters
        assert ("repro_ingest_queue_depth", (("view", "async_v"),)) in samples
        assert samples[
            ("repro_ingest_flushes", (("view", "async_v"),))
        ] >= 1
        # ... and flushes feed the shared maintain histogram
        assert samples[
            ("repro_view_maintain_seconds_count", (("view", "async_v"),))
        ] >= 1
    finally:
        service.drop_view("sync_v")
        service.drop_view("async_v")


def test_drop_view_retires_its_series():
    service = ViewService(catalog=CATALOG)
    service.create_view("v", SQL_CNT_A, backend="async:rivm-batch")
    assert 'view="v"' in service.registry.render()
    service.drop_view("v")
    assert 'view="v"' not in service.registry.render()


def test_admission_span_per_seq():
    service = ViewService(catalog=CATALOG)
    service.create_view("v", SQL_CNT_A, backend="rivm-batch")
    # publish spans are only emitted when someone is listening: the
    # no-subscriber early return precedes the span
    sub = service.subscribe("v", lambda event: None)
    try:
        for _ in range(5):
            service.on_batch("R", GMR({(1, 10): 1}))
        admissions = [
            s for s in service.tracer.spans() if s.stage == "admission"
        ]
        assert sorted(s.attrs["seq"] for s in admissions) == [1, 2, 3, 4, 5]
        # sync maintain + publish chain off the admission in one trace
        trees = service.tracer.recent(seq=3)
        assert len(trees) == 1
        (root,) = trees[0]["spans"]
        assert {c["stage"] for c in root["children"]} == {
            "maintain", "publish",
        }
    finally:
        sub.cancel()
        service.drop_view("v")


def test_stats_counters_survive_concurrent_producers():
    """Regression for the per-view stats race: ``batches_applied`` and
    ``deltas_delivered`` were plain ints mutated from batcher threads
    without the service lock, so concurrent producers lost increments.
    With registry counters, every applied batch and published delta
    must be counted exactly once."""
    service = ViewService(catalog=CATALOG)
    service.create_view("v", SQL_CNT_A, backend="async:rivm-batch")
    events = []
    events_lock = threading.Lock()

    def on_delta(event):
        with events_lock:
            events.append(event)

    sub = service.subscribe("v", on_delta)
    n_threads, per_thread = 6, 40

    def produce(seed: int):
        for i in range(per_thread):
            service.on_batch("R", GMR({(seed, i): 1}))

    threads = [
        threading.Thread(target=produce, args=(t,)) for t in range(n_threads)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.drain()
        handle = service.view("v")
        assert handle.batches_applied == n_threads * per_thread
        with events_lock:
            delivered = len(events)
        assert handle.deltas_delivered == delivered
        assert delivered >= 1
        total = GMR()
        for e in events:
            for t_, m in e.delta.items():
                total.add_tuple(t_, m)
        assert total == service.snapshot("v")
    finally:
        sub.cancel()
        service.drop_view("v")


# ----------------------------------------------------------------------
# Single-server HTTP surface
# ----------------------------------------------------------------------


@pytest.fixture()
def served():
    service = ViewService(catalog=CATALOG)
    server = ViewServer(service).start()
    client = Client(port=server.port)
    try:
        yield service, server, client
    finally:
        client.close()
        server.close()


def test_server_metrics_endpoint(served):
    service, server, client = served
    client.create_view("v", SQL_CNT_A)
    client.batch("R", GMR({(1, 10): 1, (2, 20): 1}))
    text = client.metrics_raw()
    samples = _sample_map(text)
    assert samples[("repro_view_batches_total", (("view", "v"),))] == 1
    assert samples[("repro_service_seq", ())] == 1
    assert ("repro_server_uptime_seconds", ()) in samples
    # raw HTTP: the Prometheus content type is part of the contract
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type").startswith(
            "text/plain; version=0.0.4"
        )
        resp.read()
    finally:
        conn.close()


def test_server_trace_recent_and_header_propagation(served):
    service, _server, client = served
    client.create_view("v", SQL_CNT_A)
    ctx = TraceContext("feedc0dedeadbeef", "client-root")
    reply = client.batch("R", GMR({(1, 10): 1}), trace=ctx)
    assert reply["trace_id"] == "feedc0dedeadbeef"
    trees = client.trace_recent(trace_id="feedc0dedeadbeef")
    assert len(trees) == 1
    (root,) = trees[0]["spans"]
    assert root["stage"] == "admission"
    assert root["attrs"]["seq"] == 1
    stages = {root["stage"]} | {c["stage"] for c in root["children"]}
    # no subscriber on this view, so no publish span — admission and
    # maintain are the whole sync-path trace
    assert {"admission", "maintain"} <= stages
    # seq filter reaches the same trace
    assert client.trace_recent(view="v", seq=1)[0]["trace_id"] == ctx.trace_id


def test_heartbeat_carries_seq_and_uptime(served):
    service, _server, client = served
    client.create_view("v", SQL_CNT_A)
    client.batch("R", GMR({(1, 10): 1}))
    with client.subscribe("v") as stream:
        assert stream.last_heartbeat is None
        deadline = time.monotonic() + 10
        while stream.last_heartbeat is None:
            assert time.monotonic() < deadline, "no heartbeat within 10s"
            stream._read_envelope()
        hb = stream.last_heartbeat
        assert hb["seq"] == 1
        assert hb["uptime_s"] > 0


def test_delivery_counter_counts_stream_writes(served):
    service, _server, client = served
    client.create_view("v", SQL_CNT_A)
    with client.subscribe("v") as stream:
        client.batch("R", GMR({(1, 10): 1}))
        token = client.drain()
        deltas = stream.read_until_mark(token)
        assert len(deltas) == 1
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        samples = _sample_map(client.metrics_raw())
        if ("repro_server_deliveries_total", (("view", "v"),)) in samples:
            break
        time.sleep(0.05)
    assert samples[("repro_server_deliveries_total", (("view", "v"),))] >= 1


def test_top_prefers_scraped_tier_seq_over_shard_pages():
    """Regression: a router's merged /metrics repeats every shard's
    `repro_service_seq` under shard labels — `repro top` must show the
    router's own seq/uptime, not whichever shard page parsed last."""
    from repro.obs.top import TopSnapshot, render_top

    text = "\n".join([
        "# TYPE repro_router_seq gauge",
        "repro_router_seq 7",
        "# TYPE repro_router_uptime_seconds gauge",
        "repro_router_uptime_seconds 12.5",
        "# TYPE repro_service_seq gauge",
        'repro_service_seq{shard="0",replica="0"} 4',
        'repro_service_seq{shard="1",replica="0"} 5',
        "# TYPE repro_view_batches_total counter",
        'repro_view_batches_total{view="v",shard="0",replica="0"} 4',
        'repro_view_batches_total{view="v",shard="1",replica="0"} 3',
        "",
    ])
    snap = TopSnapshot(parse_prometheus(text), at=100.0)
    assert snap.service == {
        "repro_router_seq": 7.0,
        "repro_router_uptime_seconds": 12.5,
    }
    rendered = render_top(snap, None)
    assert "seq=7" in rendered
    # per-view counters still aggregate across the shard pages
    assert snap.views["v"]["batches"] == 7


# ----------------------------------------------------------------------
# Smoke tests (run per Python version in CI)
# ----------------------------------------------------------------------


def test_cluster_metrics_smoke():
    """2 shards + router: ingest a workload, scrape /metrics on the
    router and each shard; the exposition must parse, the router page
    must carry per-shard labels, and the per-view batch counters must
    match what was ingested (the CI smoke contract)."""
    with cluster(2) as (router, _services, servers):
        with Client(port=router.port) as client:
            client.create_view("per_b", SQL_PER_B)
            n_batches = 6
            for i in range(n_batches):
                client.batch("R", GMR({(i, i % 3): 1}))
            client.batch("S", GMR({(0, 7): 1}))
            client.drain()

            router_page = client.metrics_raw()
            samples = _sample_map(router_page)
            assert samples[
                ("repro_router_batches_total", (("relation", "R"),))
            ] == n_batches
            assert samples[("repro_router_seq", ())] == n_batches + 1
            shard_labels = {
                s.labels["shard"]
                for s in parse_prometheus(router_page)
                if "shard" in s.labels
            }
            assert shard_labels == {"0", "1"}
            # shard-side batch counters, summed across the shard pages,
            # must cover every routed batch exactly once
            per_shard = [
                s.value
                for s in parse_prometheus(router_page)
                if s.name == "repro_view_batches_total"
                and s.labels.get("view") == "per_b"
            ]
            assert sum(per_shard) == n_batches + 1

            # each shard also serves its own unlabeled exposition
            for server in servers:
                with Client(port=server.port) as direct:
                    assert ("repro_service_seq", ()) in _sample_map(
                        direct.metrics_raw()
                    )


def test_cluster_single_batch_trace_smoke():
    """One batch through a 2-shard cluster with a live subscriber:
    /trace/recent on the router must return ONE assembled trace whose
    spans cover admission, scatter, flush, maintain, publish, merge and
    deliver — all sharing the ingest trace id (the acceptance bar)."""
    with cluster(2) as (router, _services, _servers):
        with Client(port=router.port) as client:
            client.create_view("cnt", SQL_CNT_A, backend="async:rivm-batch")
            stream = client.subscribe("cnt")
            reader = threading.Thread(
                target=lambda: list(stream), daemon=True
            )
            reader.start()
            ctx = TraceContext("0123456789abcdef", "origin")
            client.batch("R", GMR({(1, 1): 1, (2, 2): 1, (3, 3): 1}),
                         trace=ctx)
            client.drain()

            def assembled_stages():
                trees = client.trace_recent(trace_id=ctx.trace_id)
                if not trees:
                    return None, set()
                stages = set()
                stack = list(trees[0]["spans"])
                while stack:
                    node = stack.pop()
                    stages.add(node["stage"])
                    stack.extend(node["children"])
                return trees, stages

            want = {"admission", "scatter", "flush", "maintain",
                    "publish", "merge", "deliver"}
            deadline = time.monotonic() + 10
            while True:
                trees, stages = assembled_stages()
                if trees is not None and want <= stages:
                    break
                assert time.monotonic() < deadline, (
                    f"incomplete trace after 10s: {stages}"
                )
                time.sleep(0.1)
            assert len(trees) == 1  # one batch, one trace
            # the router admission span carries the router seq; the
            # shard flush span carries the shard's own seq — both 1
            flat = []
            stack = list(trees[0]["spans"])
            while stack:
                node = stack.pop()
                flat.append(node)
                stack.extend(node["children"])
            admissions = [
                n for n in flat
                if n["stage"] == "admission"
                and n["attrs"].get("tier") == "router"
            ]
            assert len(admissions) == 1 and admissions[0]["attrs"]["seq"] == 1
            assert all(n["trace_id"] == ctx.trace_id for n in flat)
            stream.close()
            reader.join(timeout=5)


def test_router_batch_span_counts_match_ingest_smoke():
    """Router admission spans are one-per-accepted-batch: after N
    ingests the trace ring must hold exactly N router admissions with
    seqs 1..N (the batch-count half of the CI smoke contract)."""
    with cluster(2) as (router, _services, _servers):
        with Client(port=router.port) as client:
            client.create_view("cnt", SQL_CNT_A)
            n = 5
            for i in range(n):
                client.batch("R", GMR({(i, i): 1}))
            client.drain()
        admissions = [
            s for s in router.tracer.spans() if s.stage == "admission"
        ]
        assert sorted(s.attrs["seq"] for s in admissions) == list(
            range(1, n + 1)
        )
