"""Native changefeeds: last_delta() without snapshot materialization.

The recursive engines compute the top-level delta inside their triggers
anyway; ``last_delta()`` must surface exactly that accumulation —
O(|delta|) per call — instead of the base-class default that diffs two
full snapshot copies (O(|view|) per batch).  The hot-path test poisons
``snapshot()`` outright: a native changefeed never needs it.
"""

from __future__ import annotations

import random

import pytest

from repro.eval import Database, evaluate
from repro.exec import create_backend
from repro.ring import GMR
from repro.workloads import MICRO_QUERIES

NATIVE_BACKENDS = ("rivm-single", "rivm-batch", "rivm-specialized")


def _stream(spec, seed=3, n_batches=6):
    rng = random.Random(seed)
    rels = sorted(spec.updatable)
    out = []
    for i in range(n_batches):
        pairs = [
            ((rng.randrange(5), rng.randrange(5)), rng.choice((1, 1, -1)))
            for _ in range(8)
        ]
        batch = GMR.from_pairs(pairs)
        if not batch.is_zero():
            out.append((rels[i % len(rels)], batch))
    return out


@pytest.mark.parametrize("backend_name", NATIVE_BACKENDS)
@pytest.mark.parametrize("query", ["M1", "M2", "M3", "M4"])
def test_native_delta_accumulates_to_view(backend_name, query):
    """Per-batch native deltas sum to the maintained view — including
    M4, whose top view is maintained by ':=' re-evaluation."""
    spec = MICRO_QUERIES[query]
    backend = create_backend(backend_name, spec)
    reference = Database()
    acc = GMR()
    for relation, batch in _stream(spec):
        backend.on_batch(relation, batch)
        reference.apply_update(relation, batch)
        acc.add_inplace(backend.last_delta())
        assert acc == evaluate(spec.query, reference)
    assert acc == backend.snapshot()


@pytest.mark.parametrize("backend_name", NATIVE_BACKENDS)
def test_no_snapshot_materialization_on_hot_path(backend_name, monkeypatch):
    """The changefeed must not touch snapshot() or the base-class
    snapshot-diff state: poison snapshot and stream through."""
    spec = MICRO_QUERIES["M1"]
    backend = create_backend(backend_name, spec)

    def poisoned():
        raise AssertionError(
            "last_delta() materialized a full snapshot on the hot path"
        )

    monkeypatch.setattr(backend, "snapshot", poisoned)
    reference = Database()
    acc = GMR()
    for relation, batch in _stream(spec):
        backend.on_batch(relation, batch)
        reference.apply_update(relation, batch)
        acc.add_inplace(backend.last_delta())
    assert acc == evaluate(spec.query, reference)
    # The base-class fallback stashes a full snapshot copy per call
    # under _changefeed_prev; a native feed never creates it.
    assert not hasattr(backend, "_changefeed_prev")


@pytest.mark.parametrize("backend_name", NATIVE_BACKENDS)
def test_changefeed_coalesces_and_empties(backend_name):
    spec = MICRO_QUERIES["M1"]
    backend = create_backend(backend_name, spec)
    for relation, batch in _stream(spec, n_batches=4):
        backend.on_batch(relation, batch)
    # One call covers everything since the stream started...
    assert backend.last_delta() == backend.snapshot()
    # ...and nothing new processed means an empty delta.
    assert backend.last_delta().is_zero()


@pytest.mark.parametrize("backend_name", NATIVE_BACKENDS)
def test_initialize_feeds_the_changefeed(backend_name):
    """Warm starts flow through the changefeed as the initial delta."""
    spec = MICRO_QUERIES["M1"]
    base = Database()
    base.insert_rows("R", [(1, 2), (2, 3)])
    base.insert_rows("S", [(2, 4)])
    base.insert_rows("T", [(4, 9)])
    backend = create_backend(backend_name, spec)
    backend.initialize(base)
    assert backend.last_delta() == backend.snapshot() == evaluate(
        spec.query, base
    )
