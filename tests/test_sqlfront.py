"""The SQL frontend: parsing, lowering, errors, and — most important —
semantic agreement between parsed SQL and hand-written algebra."""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.query.ast import Assign, Cmp, Exists, Join, Rel, Sum
from repro.query.builder import cmp, join, rel, sum_over, value
from repro.query.schema import base_relations, out_cols
from repro.query.sqlfront import SqlError, parse_sql, sql_to_spec
from repro.ring import GMR

CATALOG = {
    "R": ("a", "b"),
    "S": ("b", "c"),
    "T": ("c", "d"),
}


def _db():
    db = Database()
    db.insert_rows("R", [(i % 4, i % 3) for i in range(12)])
    db.insert_rows("S", [(i % 3, i % 5) for i in range(10)])
    db.insert_rows("T", [(i % 5, i) for i in range(8)])
    return db


# ----------------------------------------------------------------------
# Basic parsing and structure
# ----------------------------------------------------------------------


def test_count_star_single_table():
    q = parse_sql("SELECT COUNT(*) FROM R", CATALOG)
    assert isinstance(q, Sum)
    assert q.group_by == ()
    assert base_relations(q) == {"R"}


def test_group_by_produces_group_columns():
    q = parse_sql("SELECT b, COUNT(*) FROM R GROUP BY b", CATALOG)
    assert isinstance(q, Sum)
    assert out_cols(q) == ("R_b",)


def test_natural_join_from_equality_predicate():
    q = parse_sql(
        "SELECT COUNT(*) FROM R, S WHERE R.b = S.b", CATALOG
    )
    rels = [p for p in q.child.parts] if isinstance(q.child, Join) else [q.child]
    rel_nodes = [p for p in rels if isinstance(p, Rel)]
    assert len(rel_nodes) == 2
    # Both relations share the join column name — a natural join, with
    # no residual comparison factor.
    cols_r = dict(zip(["R", "S"], [set(r.cols) for r in rel_nodes]))
    assert cols_r["R"] & cols_r["S"], "no shared join column"
    assert not any(isinstance(p, Cmp) for p in rels)


def test_filter_predicate_stays_as_comparison():
    q = parse_sql("SELECT COUNT(*) FROM R WHERE R.a > 2", CATALOG)
    assert any(isinstance(p, Cmp) for p in q.child.parts)


def test_aliases():
    q = parse_sql(
        "SELECT COUNT(*) FROM R x, R y WHERE x.a = y.a", CATALOG
    )
    names = {p.name for p in q.child.parts if isinstance(p, Rel)}
    assert names == {"R"}
    cols = [p.cols for p in q.child.parts if isinstance(p, Rel)]
    assert cols[0] != cols[1]  # distinct occurrence columns
    assert set(cols[0]) & set(cols[1])  # but joined on the x.a class


def test_distinct_wraps_in_exists():
    q = parse_sql("SELECT DISTINCT a FROM R", CATALOG)
    assert isinstance(q, Exists)


def test_scalar_subquery_becomes_assignment():
    q = parse_sql(
        "SELECT COUNT(*) FROM R WHERE R.a < "
        "(SELECT COUNT(*) FROM S WHERE S.b = R.b)",
        CATALOG,
    )
    kinds = [type(p) for p in q.child.parts]
    assert Assign in kinds
    assert Cmp in kinds


def test_exists_subquery():
    q = parse_sql(
        "SELECT COUNT(*) FROM R WHERE EXISTS "
        "(SELECT COUNT(*) FROM S WHERE S.b = R.b)",
        CATALOG,
    )
    assert any(isinstance(p, Assign) for p in q.child.parts)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT COUNT(*) FROM",               # missing table
        "SELECT COUNT(*) FROM Unknown",       # unknown table
        "SELECT COUNT(*) FROM R WHERE",       # dangling WHERE
        "SELECT nope FROM R",                 # unknown column
        "SELECT COUNT(*) FROM R WHERE R.a ~ 1",  # bad operator
        "SELECT b FROM R, S",                 # ambiguous bare column
        "FROM R",                             # missing SELECT
        "SELECT COUNT(*) FROM R extra garbage()",
    ],
)
def test_rejects_malformed_sql(sql):
    with pytest.raises(SqlError):
        parse_sql(sql, CATALOG)


def test_rejects_duplicate_alias():
    with pytest.raises(SqlError):
        parse_sql("SELECT COUNT(*) FROM R, R", CATALOG)


# ----------------------------------------------------------------------
# Error messages are actionable: they name the bad reference AND what
# the catalog/scope actually offers.
# ----------------------------------------------------------------------


def test_unknown_table_error_lists_catalog():
    with pytest.raises(SqlError, match=r"unknown table 'NOPE'.*R, S, T"):
        parse_sql("SELECT COUNT(*) FROM NOPE", CATALOG)


def test_unknown_column_error_lists_table_columns():
    with pytest.raises(
        SqlError, match=r"table 'R' has no column 'z'.*its columns: a, b"
    ):
        parse_sql("SELECT COUNT(*) FROM R WHERE R.z > 1", CATALOG)


def test_unknown_table_alias_error_lists_from_aliases():
    with pytest.raises(
        SqlError, match=r"unknown table alias 'x' in x\.a.*aliases in scope: R"
    ):
        parse_sql("SELECT COUNT(*) FROM R WHERE x.a > 1", CATALOG)


def test_inner_scope_column_typo_blames_the_inner_table():
    """A misspelled column on a valid subquery alias must not escape to
    the outer scope and be misreported as an unknown alias."""
    with pytest.raises(
        SqlError, match=r"table 'S2' has no column 'bb'.*its columns: b, c"
    ):
        parse_sql(
            "SELECT COUNT(*) FROM R WHERE R.a < "
            "(SELECT COUNT(*) FROM S S2 WHERE S2.bb = R.b)",
            CATALOG,
        )


def test_unknown_bare_column_error_lists_scope():
    with pytest.raises(
        SqlError, match=r"unknown column 'z'; columns in scope: a, b"
    ):
        parse_sql("SELECT z, COUNT(*) FROM R GROUP BY z", CATALOG)


def test_ambiguous_column_error_suggests_qualifier():
    with pytest.raises(
        SqlError, match=r"ambiguous column 'b'.*provided by R, S.*qualify"
    ):
        parse_sql("SELECT COUNT(*) FROM R, S WHERE b > 1", CATALOG)


def test_unsupported_function_error_names_supported_aggregates():
    with pytest.raises(
        SqlError, match=r"unsupported function 'MAX'.*COUNT\(\*\) and SUM"
    ):
        parse_sql("SELECT MAX(a) FROM R", CATALOG)


def test_non_comparison_operator_is_rejected():
    with pytest.raises(SqlError, match="not a comparison operator"):
        parse_sql("SELECT COUNT(*) FROM R WHERE R.a , 1", CATALOG)


def test_incomplete_predicate_reports_expectation():
    with pytest.raises(SqlError, match="expected"):
        parse_sql("SELECT COUNT(*) FROM R WHERE R.a + 1", CATALOG)


def test_tokenizer_error_shows_offending_text():
    with pytest.raises(SqlError, match="cannot tokenize"):
        parse_sql("SELECT COUNT(*) FROM R WHERE R.a > 'str'", CATALOG)


# ----------------------------------------------------------------------
# Semantics: parsed SQL agrees with hand-written algebra
# ----------------------------------------------------------------------


def test_count_matches_algebra():
    db = _db()
    q_sql = parse_sql("SELECT COUNT(*) FROM R WHERE R.a > 1", CATALOG)
    q_alg = sum_over(
        [], join(rel("R", "R_a", "R_b"), cmp("R_a", ">", 1))
    )
    assert evaluate(q_sql, db_renamed(db)) == evaluate(q_alg, db_renamed(db))


def db_renamed(db):
    # Column names are positional in GMRs, so any Database works for
    # both namings; this helper exists for readability.
    return db


def test_join_count_matches_algebra():
    db = _db()
    q_sql = parse_sql(
        "SELECT COUNT(*) FROM R, S WHERE R.b = S.b", CATALOG
    )
    q_alg = sum_over(
        [], join(rel("R", "a", "b"), rel("S", "b", "c"))
    )
    assert evaluate(q_sql, db) == evaluate(q_alg, db)


def test_sum_aggregate_matches_algebra():
    db = _db()
    q_sql = parse_sql(
        "SELECT b, SUM(a) FROM R GROUP BY b", CATALOG
    )
    q_alg = sum_over(["b"], join(rel("R", "a", "b"), value("a")))
    got = evaluate(q_sql, db)
    want = evaluate(q_alg, db)
    assert got.data == want.data  # same keys/values (names differ)


def test_arithmetic_in_sum():
    db = _db()
    q_sql = parse_sql("SELECT SUM(a * 2 + 1) FROM R", CATALOG)
    q_alg = parse_sql("SELECT SUM(a) FROM R", CATALOG)
    total = evaluate(q_sql, db).get(())
    base = evaluate(q_alg, db).get(())
    n = evaluate(parse_sql("SELECT COUNT(*) FROM R", CATALOG), db).get(())
    assert total == 2 * base + n


def test_correlated_nested_aggregate_semantics():
    """The Example 3.1 query: COUNT of R rows whose a is below the
    per-b count of S rows."""
    db = _db()
    q_sql = parse_sql(
        "SELECT COUNT(*) FROM R WHERE R.a < "
        "(SELECT COUNT(*) FROM S WHERE S.b = R.b)",
        CATALOG,
    )
    expected = 0
    s_rows = list(db.get_view("S").items())
    for (a, b), m in db.get_view("R").items():
        count = sum(sm for (sb, sc), sm in s_rows if sb == b)
        if a < count:
            expected += m
    assert evaluate(q_sql, db).get(()) == expected


def test_distinct_semantics():
    db = _db()
    q = parse_sql("SELECT DISTINCT a FROM R WHERE R.b > 0", CATALOG)
    got = evaluate(q, db)
    expected = {
        (a,) for (a, b), m in db.get_view("R").items() if b > 0
    }
    assert set(got.data) == expected
    assert all(m == 1 for m in got.data.values())


def test_three_way_join_chain():
    db = _db()
    q_sql = parse_sql(
        "SELECT COUNT(*) FROM R, S, T "
        "WHERE R.b = S.b AND S.c = T.c",
        CATALOG,
    )
    q_alg = sum_over(
        [],
        join(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d")),
    )
    assert evaluate(q_sql, db) == evaluate(q_alg, db)


# ----------------------------------------------------------------------
# End-to-end: parsed SQL through the IVM pipeline
# ----------------------------------------------------------------------


def test_parsed_query_is_maintainable():
    q = parse_sql(
        "SELECT COUNT(*) FROM R, S WHERE R.b = S.b AND R.a > 0",
        CATALOG,
    )
    program = apply_batch_preaggregation(compile_query(q, "SQLQ"))
    engine = RecursiveIVMEngine(program, mode="batch")
    reference = Database()
    import random

    rng = random.Random(4)
    for step in range(8):
        name = ("R", "S")[step % 2]
        batch = GMR()
        for _ in range(20):
            batch.add_tuple((rng.randint(0, 4), rng.randint(0, 4)), 1)
        engine.on_batch(name, batch)
        reference.apply_update(name, batch)
    assert engine.snapshot() == evaluate(q, reference)


def test_parsed_nested_query_is_maintainable():
    q = parse_sql(
        "SELECT COUNT(*) FROM R WHERE R.a < "
        "(SELECT COUNT(*) FROM S WHERE S.b = R.b)",
        CATALOG,
    )
    program = apply_batch_preaggregation(compile_query(q, "SQLN"))
    engine = RecursiveIVMEngine(program, mode="batch")
    reference = Database()
    import random

    rng = random.Random(5)
    for step in range(6):
        name = ("R", "S")[step % 2]
        batch = GMR()
        for _ in range(15):
            batch.add_tuple((rng.randint(0, 3), rng.randint(0, 3)), 1)
        engine.on_batch(name, batch)
        reference.apply_update(name, batch)
    assert engine.snapshot() == evaluate(q, reference)


def test_sql_to_spec():
    spec = sql_to_spec(
        "SQLDEMO",
        "SELECT COUNT(*) FROM R, S WHERE R.b = S.b",
        CATALOG,
    )
    assert spec.name == "SQLDEMO"
    assert spec.updatable == frozenset({"R", "S"})
    assert "parsed from SQL" in spec.notes
