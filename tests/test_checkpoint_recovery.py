"""Fault tolerance: checkpointing, failure injection, and recovery."""

import pytest

from repro.distributed import (
    CheckpointPolicy,
    FailureInjector,
    FaultTolerantCluster,
    SimulatedCluster,
    compile_distributed,
)
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import TPCH_QUERIES


def _setup(name="Q3", n_workers=3, policy=None, injector=None, batches=8):
    spec = TPCH_QUERIES[name]
    prepared = prepare_stream(spec, 30, sf=0.0003, max_batches=batches)
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    ft = FaultTolerantCluster(
        dprog, n_workers=n_workers, policy=policy, injector=injector
    )
    _preload_static(ft.cluster, prepared, dprog)
    return spec, prepared, ft


def _run(spec, prepared, ft):
    reference = prepared.fresh_static()
    for relation, batch in prepared.batches:
        ft.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    return evaluate(spec.query, reference)


def test_failure_free_run_matches_reference():
    spec, prepared, ft = _setup(policy=CheckpointPolicy(interval=3))
    expected = _run(spec, prepared, ft)
    assert ft.snapshot() == expected
    assert not ft.recoveries


def test_checkpoints_taken_at_interval():
    spec, prepared, ft = _setup(policy=CheckpointPolicy(interval=2), batches=8)
    _run(spec, prepared, ft)
    assert len(ft.checkpoint_latencies_s) == 4
    assert all(lat > 0 for lat in ft.checkpoint_latencies_s)


def test_checkpointing_disabled():
    spec, prepared, ft = _setup(policy=CheckpointPolicy(interval=None))
    _run(spec, prepared, ft)
    assert ft.checkpoint_latencies_s == []


@pytest.mark.parametrize("fail_at", [1, 4, 6])
def test_recovery_restores_correct_state(fail_at):
    """A worker failure mid-stream must not corrupt the view."""
    spec, prepared, ft = _setup(
        policy=CheckpointPolicy(interval=3),
        injector=FailureInjector(failures={fail_at: 1}),
    )
    expected = _run(spec, prepared, ft)
    assert ft.snapshot() == expected
    assert len(ft.recoveries) == 1
    event = ft.recoveries[0]
    assert event.batch_index == fail_at
    assert event.failed_worker == 1


def test_recovery_without_checkpoint_replays_from_start():
    spec, prepared, ft = _setup(
        policy=CheckpointPolicy(interval=None),
        injector=FailureInjector(failures={5: 0}),
    )
    expected = _run(spec, prepared, ft)
    assert ft.snapshot() == expected
    event = ft.recoveries[0]
    assert event.restored_from == -1
    assert event.replayed_batches == 5


def test_frequent_checkpoints_shorten_recovery():
    """The §4 trade-off: tighter intervals cost per-batch latency but
    bound replay work."""

    def recovery_with_interval(interval):
        spec, prepared, ft = _setup(
            policy=CheckpointPolicy(interval=interval),
            injector=FailureInjector(failures={7: 2}),
        )
        _run(spec, prepared, ft)
        return ft.recoveries[0]

    tight = recovery_with_interval(2)
    loose = recovery_with_interval(None)
    assert tight.replayed_batches < loose.replayed_batches


def test_checkpoint_latency_visible_in_metrics():
    """Checkpoint cost extends the batch latency (the paper's
    'detrimental effects on the latency of processing')."""
    spec, prepared, ft_cp = _setup(policy=CheckpointPolicy(interval=1))
    _run(spec, prepared, ft_cp)

    spec2, prepared2, ft_no = _setup(policy=CheckpointPolicy(interval=None))
    _run(spec2, prepared2, ft_no)

    assert (
        ft_cp.metrics.total_latency_s > ft_no.metrics.total_latency_s
    )


def test_batches_metric_counts_logical_stream_once():
    """Replayed batches do not inflate the batch count."""
    spec, prepared, ft = _setup(
        policy=CheckpointPolicy(interval=3),
        injector=FailureInjector(failures={5: 0}),
    )
    _run(spec, prepared, ft)
    assert ft.metrics.batches == len(prepared.batches)


def test_multiple_failures():
    spec, prepared, ft = _setup(
        policy=CheckpointPolicy(interval=2),
        injector=FailureInjector(failures={2: 0, 6: 1}),
        batches=8,
    )
    expected = _run(spec, prepared, ft)
    assert ft.snapshot() == expected
    assert len(ft.recoveries) == 2
