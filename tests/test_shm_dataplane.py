"""The shared-memory data plane: codec, segment pool, leak hygiene.

The ``multiproc`` backend's zero-copy plane rests on three contracts
tested here in isolation (the end-to-end differential lives in
``test_multiproc_backend.py``):

* the `ShmColumnarBlock` codec is a faithful GMR round-trip through
  any buffer — bytes, bytearray, or a shared-memory segment;
* the `SegmentPool` recycles segments by size class, tracks refcounts,
  and unlinks everything at close — no ``/dev/shm`` residue;
* descriptors stay small: what crosses the pipe is O(1) regardless of
  payload size.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.ring import GMR
from repro.storage import SegmentAttacher, SegmentPool, attach_segment
from repro.storage.columnar import (
    ShmColumnarBlock,
    decode_gmr,
    encode_gmr,
    encode_pairs,
)
from repro.storage.pool import _size_class


def _shm_names() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # non-Linux fallback: skip checks
        pytest.skip("no /dev/shm on this platform")
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro")}


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
CODEC_CASES = [
    GMR(),
    GMR({(): 4}),  # zero-width keys
    GMR({(1, 2): 3, (4, 5): -6}),
    GMR({(1.5, "x"): 2.25}),
    GMR({("", "αβ😀"): 1, ("longer string " * 20, ""): -2}),
    GMR({(10**40,): 1}),  # int64 overflow -> pickled column
    # (NaN keys are excluded: NaN != NaN makes dict equality fail for
    # ANY serializer, pickle included; the dedicated test below checks
    # the codec's structural fidelity for them.)
    GMR({(None, 1): 1, (True, 2): 1}),  # exotic types
    GMR({(1,): 1, (2, 3): 1}),  # ragged widths -> pickled pairs
    GMR({(i, i * 0.5, f"s{i}"): (-1) ** i * (i + 1) for i in range(200)}),
]


@pytest.mark.parametrize("gmr", CODEC_CASES, ids=range(len(CODEC_CASES)))
def test_codec_roundtrip(gmr):
    block = encode_gmr(gmr)
    data = block.to_bytes()
    assert len(data) == block.nbytes
    assert decode_gmr(data) == gmr


def test_codec_nan_column_roundtrips_via_pickle_fallback():
    import math

    g = GMR({(float("nan"), 1): 1})
    back = decode_gmr(encode_gmr(g).to_bytes())
    ((key, mult),) = back.data.items()
    assert math.isnan(key[0]) and key[1] == 1 and mult == 1


def test_codec_huge_int_precision_preserved():
    """Big ints must not be silently squeezed through float64."""
    n = 2**63 + 3  # overflows int64; float64 would round it
    g = GMR({(n,): 1})
    back = decode_gmr(encode_gmr(g).to_bytes())
    assert list(back.data) == [(n,)]


def test_codec_write_into_oversized_buffer():
    g = GMR({(i, f"v{i}"): i + 1 for i in range(64)})
    block = encode_gmr(g)
    buf = bytearray(block.nbytes + 1000)
    assert block.write_into(buf) == block.nbytes
    assert decode_gmr(buf) == g


def test_codec_rejects_garbage():
    with pytest.raises(ValueError, match="magic"):
        decode_gmr(b"\x00" * 64)


def test_descriptor_is_small_independent_of_payload():
    """What the pipe carries for an shm payload is a tiny tuple."""
    big = GMR({(i, "x" * 100): 1 for i in range(5000)})
    pool = SegmentPool()
    try:
        block = encode_gmr(big)
        seg = pool.acquire(block.nbytes)
        block.write_into(seg.buf)
        descriptor = ("s", seg.name, block.nbytes, seg.generation)
        assert len(pickle.dumps(descriptor)) < 128
        assert block.nbytes > 100_000
    finally:
        pool.close()


def test_encode_pairs_matches_encode_gmr():
    g = GMR({(1, "a"): 2, (3, "b"): -1})
    assert (
        encode_pairs(g.data.items()).to_bytes() == encode_gmr(g).to_bytes()
    )


# ----------------------------------------------------------------------
# SegmentPool
# ----------------------------------------------------------------------
def test_size_classes_are_powers_of_two():
    assert _size_class(1) == 4096
    assert _size_class(4096) == 4096
    assert _size_class(4097) == 8192
    assert _size_class(100_000) == 131072


def test_pool_recycles_by_size_class():
    pool = SegmentPool()
    try:
        a = pool.acquire(1000)
        name, gen = a.name, a.generation
        pool.release(name)
        b = pool.acquire(2000)  # same 4 KiB class -> same segment
        assert b.name == name and b.generation == gen + 1
        c = pool.acquire(10_000)  # different class -> new segment
        assert c.name != name
        assert pool.created == 2 and pool.recycled == 1
    finally:
        pool.close()


def test_pool_refcounts_broadcast_release():
    pool = SegmentPool()
    try:
        seg = pool.acquire(100, refs=3)
        pool.release(seg.name)
        pool.release(seg.name)
        assert pool.stats()["inflight"] == 1  # one reader outstanding
        pool.release(seg.name)
        assert pool.stats()["inflight"] == 0
        assert pool.stats()["free"] == 1
    finally:
        pool.close()


def test_pool_release_all_inflight():
    pool = SegmentPool()
    try:
        pool.acquire(100, refs=5)
        pool.acquire(10_000, refs=2)
        pool.release_all_inflight()
        s = pool.stats()
        assert s["inflight"] == 0 and s["free"] == 2
    finally:
        pool.close()


def test_pool_close_unlinks_everything():
    before = _shm_names()
    pool = SegmentPool()
    segs = [pool.acquire(5000) for _ in range(4)]
    for seg in segs:
        assert os.path.exists(f"/dev/shm/{seg.name}")
    pool.close()
    assert _shm_names() == before
    with pytest.raises(ValueError, match="closed"):
        pool.acquire(10)
    pool.close()  # idempotent


def test_attach_reads_creator_writes():
    pool = SegmentPool()
    try:
        g = GMR({(i,): i + 1 for i in range(100)})
        block = encode_gmr(g)
        seg = pool.acquire(block.nbytes)
        block.write_into(seg.buf)
        shm = attach_segment(seg.name)
        try:
            assert decode_gmr(shm.buf[: block.nbytes]) == g
        finally:
            shm.close()
    finally:
        pool.close()


def test_attacher_caches_by_name():
    pool = SegmentPool()
    att = SegmentAttacher()
    try:
        seg = pool.acquire(100)
        first = att.get(seg.name)
        assert att.get(seg.name) is first
    finally:
        att.close()
        pool.close()


# ----------------------------------------------------------------------
# End-to-end leak hygiene
# ----------------------------------------------------------------------
def test_backend_lifecycle_leaves_no_segments():
    """A full shm-plane run — including a worker restart — unlinks every
    segment it created."""
    import signal

    from repro.exec import create_backend
    from repro.workloads import MICRO_QUERIES

    before = _shm_names()
    spec = MICRO_QUERIES["M1"]
    backend = create_backend(
        "multiproc", spec, n_workers=2, data_plane="shm",
        reply_timeout_s=10.0,
    )
    try:
        for i in range(4):
            relation = sorted(spec.updatable)[i % len(spec.updatable)]
            backend.on_batch(relation, GMR({(i, i + 1): 1, (i, 9): -1}))
        victim = backend._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5.0)
        backend.on_batch(sorted(spec.updatable)[0], GMR({(7, 7): 1}))
        backend.snapshot()
        assert backend.metrics.restarts >= 1
    finally:
        backend.close()
    assert _shm_names() == before
