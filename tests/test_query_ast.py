"""Unit tests for the query AST: construction, equality, utilities."""

import pytest

from repro.query import (
    Arith,
    Assign,
    Cmp,
    Col,
    Const,
    Exists,
    Join,
    Lit,
    Rel,
    Sum,
    Union,
    ValueF,
    assign,
    cmp,
    const,
    delta,
    exists,
    join,
    neg,
    rel,
    register_function,
    sum_over,
    union,
    value,
)
from repro.query.ast import (
    children,
    eval_term,
    is_expr,
    rebuild,
    rename_term,
    term_cols,
)
from repro.query.builder import add, div, mul, sub


def test_structural_equality():
    a = join(rel("R", "A", "B"), rel("S", "B", "C"))
    b = join(rel("R", "A", "B"), rel("S", "B", "C"))
    assert a == b
    assert hash(a) == hash(b)


def test_structural_inequality_on_order():
    a = join(rel("R", "A"), rel("S", "A"))
    b = join(rel("S", "A"), rel("R", "A"))
    assert a != b  # join order is operational information


def test_join_flattens():
    q = join(rel("R", "A"), join(rel("S", "A"), rel("T", "A")))
    assert isinstance(q, Join)
    assert len(q.parts) == 3


def test_join_drops_unit_const():
    q = join(const(1), rel("R", "A"))
    assert q == rel("R", "A")


def test_join_empty_is_one():
    assert join() == Const(1)


def test_union_flattens():
    q = union(rel("R", "A"), union(rel("S", "A"), rel("T", "A")))
    assert isinstance(q, Union)
    assert len(q.parts) == 3


def test_union_empty_is_zero():
    assert union() == Const(0)


def test_union_single_passthrough():
    assert union(rel("R", "A")) == rel("R", "A")


def test_neg_is_scale_by_minus_one():
    q = neg(rel("R", "A"))
    assert isinstance(q, Join)
    assert q.parts[0] == Const(-1)


def test_builder_coercions():
    c = cmp("A", "<", 5)
    assert c.lhs == Col("A")
    assert c.rhs == Lit(5)
    a = assign("X", "A")
    assert a.child == Col("A")
    v = value(mul("A", 2))
    assert isinstance(v.term, Arith)


def test_delta_builder():
    d = delta("R", "A", "B")
    assert d.name == "R"
    assert d.cols == ("A", "B")


def test_term_cols():
    t = mul(add("A", "B"), sub("C", 1))
    assert term_cols(t) == frozenset({"A", "B", "C"})
    assert term_cols(Lit(5)) == frozenset()


def test_eval_term_arithmetic():
    env = {"A": 10, "B": 4}
    assert eval_term(add("A", "B"), env) == 14
    assert eval_term(sub("A", "B"), env) == 6
    assert eval_term(mul("A", "B"), env) == 40
    assert eval_term(div("A", "B"), env) == 2.5


def test_eval_term_unknown_op():
    with pytest.raises(ValueError):
        eval_term(Arith("%", Lit(1), Lit(2)), {})


def test_registered_function_terms():
    from repro.query.ast import Func

    register_function("half", lambda x: x // 2)
    t = Func("half", (Col("A"),))
    assert eval_term(t, {"A": 9}) == 4
    assert term_cols(t) == frozenset({"A"})
    renamed = rename_term(t, {"A": "Z"})
    assert renamed.args[0] == Col("Z")


def test_unregistered_function_raises():
    from repro.query.ast import Func

    with pytest.raises(KeyError):
        eval_term(Func("no_such_fn", ()), {})


def test_rename_term():
    t = add("A", mul("B", 3))
    r = rename_term(t, {"A": "X", "B": "Y"})
    assert term_cols(r) == frozenset({"X", "Y"})


def test_children_and_rebuild_roundtrip():
    q = sum_over(["B"], join(rel("R", "A", "B"), cmp("A", ">", 1)))
    kids = children(q)
    assert len(kids) == 1
    assert rebuild(q, kids) == q


def test_children_of_leaves_empty():
    assert children(rel("R", "A")) == ()
    assert children(const(3)) == ()
    assert children(cmp("A", "<", 1)) == ()


def test_children_of_assign_with_query():
    a = assign("X", sum_over([], rel("S", "B")))
    assert children(a) == (sum_over([], rel("S", "B")),)


def test_children_of_assign_with_value_term():
    a = assign("X", "A")
    assert children(a) == ()


def test_rebuild_rejects_children_on_leaf():
    with pytest.raises(ValueError):
        rebuild(rel("R", "A"), (rel("S", "B"),))


def test_is_expr():
    assert is_expr(rel("R", "A"))
    assert is_expr(exists(rel("R", "A")))
    assert not is_expr(Col("A"))
    assert not is_expr("A")


def test_repr_smoke():
    q = sum_over(
        ["B"],
        join(rel("R", "A", "B"), assign("X", sum_over([], rel("S", "B2"))),
             cmp("A", "<", "X")),
    )
    s = repr(q)
    assert "Sum[B]" in s
    assert "X :=" in s
