"""Unit tests for counters and the cache simulator."""

import pytest

from repro.metrics import CacheLevel, CacheSimulator, Counters


def test_counters_virtual_instructions_weighted():
    c = Counters()
    c.tuples_scanned = 10
    c.index_lookups = 5
    assert c.virtual_instructions() == 10 * Counters._W_SCAN + 5 * Counters._W_LOOKUP


def test_counters_merge_and_reset():
    a = Counters(tuples_scanned=3)
    b = Counters(tuples_scanned=4, index_lookups=1)
    a.merge(b)
    assert a.tuples_scanned == 7
    assert a.index_lookups == 1
    a.reset()
    assert a.virtual_instructions() == 0


def test_counters_snapshot_keys():
    snap = Counters().snapshot()
    assert "virtual_instructions" in snap
    assert snap["tuples_scanned"] == 0


def test_cache_level_hit_after_miss():
    c = CacheLevel(1024, line_bytes=64, ways=2)
    assert c.access(0) is False
    assert c.access(0) is True
    assert c.access(8) is True  # same 64-byte line
    assert c.stats.references == 3
    assert c.stats.misses == 1


def test_cache_level_lru_eviction():
    # 2 ways, 1 set: third distinct line evicts the least recent.
    c = CacheLevel(128, line_bytes=64, ways=2)
    assert c.n_sets == 1
    c.access(0)
    c.access(64)
    c.access(0)  # refresh line 0
    c.access(128)  # evicts line 64
    assert c.access(64) is False  # miss: was evicted
    assert c.access(0) is False  # 0 was evicted by 64's refill


def test_cache_level_invalid_geometry():
    with pytest.raises(ValueError):
        CacheLevel(100, line_bytes=64, ways=8)


def test_cache_level_reset():
    c = CacheLevel(1024)
    c.access(0)
    c.reset()
    assert c.stats.references == 0
    assert c.access(0) is False


def test_cache_stats_hit_rate():
    c = CacheLevel(1024)
    assert c.stats.hit_rate == 0.0
    c.access(0)
    c.access(0)
    assert c.stats.hit_rate == 0.5


def test_simulator_llc_sees_only_l1_misses():
    sim = CacheSimulator(l1_bytes=1024, llc_bytes=16 * 1024)
    for _ in range(3):
        sim.access(0)
    rep = sim.report()
    assert rep["l1_refs"] == 3
    assert rep["l1_misses"] == 1
    assert rep["llc_refs"] == 1


def test_simulator_access_record_spans_lines():
    sim = CacheSimulator(l1_bytes=1024, llc_bytes=16 * 1024)
    sim.access_record(0, 130)  # spans 3 lines of 64B
    assert sim.report()["l1_refs"] == 3


def test_simulator_working_set_effect():
    """A working set larger than L1 but within LLC thrashes L1 only."""
    sim = CacheSimulator(l1_bytes=1024, llc_bytes=64 * 1024)
    addresses = [i * 64 for i in range(64)]  # 4KB working set
    for _ in range(4):
        for a in addresses:
            sim.access(a)
    rep = sim.report()
    assert rep["l1_misses"] > len(addresses)  # keeps missing in L1
    # After the first pass, the LLC holds the whole set.
    assert rep["llc_misses"] == len(addresses)


def test_simulator_reset():
    sim = CacheSimulator()
    sim.access(0)
    sim.reset()
    assert sim.report()["l1_refs"] == 0
