"""Mixed insert/delete streams (footnote 3 of the paper) and the
engines' behaviour under them."""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine, SpecializedIVMEngine
from repro.workloads import MICRO_QUERIES, TPCH_QUERIES, generate_micro, generate_tpch
from repro.workloads.streams import stream_batches_with_deletions


def test_deletion_stream_contains_negative_multiplicities():
    tables = generate_micro(sf=0.05, seed=3)
    saw_negative = False
    for _, batch in stream_batches_with_deletions(
        tables, 20, delete_fraction=0.4, seed=3
    ):
        if any(m < 0 for m in batch.data.values()):
            saw_negative = True
            break
    assert saw_negative


def test_deletion_stream_never_deletes_missing_tuples():
    """Deletions only target previously inserted tuples, so the running
    multiset never goes negative overall."""
    from repro.ring import GMR

    tables = generate_micro(sf=0.05, seed=5)
    state: dict[str, GMR] = {}
    for name, batch in stream_batches_with_deletions(
        tables, 15, delete_fraction=0.4, seed=5
    ):
        acc = state.setdefault(name, GMR())
        acc.add_inplace(batch)
        assert all(m > 0 for m in acc.data.values()), name


def test_zero_delete_fraction_matches_insert_only_totals():
    from repro.workloads.streams import stream_batches

    tables = generate_micro(sf=0.05, seed=7)
    plain = sum(
        sum(b.data.values()) for _, b in stream_batches(tables, 25)
    )
    mixed = sum(
        sum(b.data.values())
        for _, b in stream_batches_with_deletions(
            tables, 25, delete_fraction=0.0
        )
    )
    assert plain == mixed


def test_rejects_bad_fraction():
    tables = generate_micro(sf=0.02)
    with pytest.raises(ValueError):
        list(stream_batches_with_deletions(tables, 10, delete_fraction=1.0))


@pytest.mark.parametrize("name", ["M1", "M2", "M3"])
def test_micro_maintenance_under_deletions(name):
    spec = MICRO_QUERIES[name]
    tables = generate_micro(sf=0.05, seed=13)
    program = apply_batch_preaggregation(
        compile_query(spec.query, spec.name, updatable=spec.updatable)
    )
    engine = RecursiveIVMEngine(program, mode="batch")

    static = Database()
    for tname, rows in tables.items():
        if tname not in spec.updatable:
            static.insert_rows(tname, rows)
    engine.initialize(static.copy())
    reference = static.copy()

    for relation, batch in stream_batches_with_deletions(
        tables, 25, relations=spec.updatable, delete_fraction=0.3, seed=13
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference), name


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q6", "Q17"])
def test_tpch_maintenance_under_deletions(name):
    spec = TPCH_QUERIES[name]
    tables = generate_tpch(sf=0.0001, seed=17)
    program = apply_batch_preaggregation(
        compile_query(spec.query, spec.name, updatable=spec.updatable)
    )
    engine = RecursiveIVMEngine(program, mode="batch")

    static = Database()
    for tname, rows in tables.items():
        if tname not in spec.updatable:
            static.insert_rows(tname, rows)
    engine.initialize(static.copy())
    reference = static.copy()

    for relation, batch in stream_batches_with_deletions(
        tables, 20, relations=spec.updatable, delete_fraction=0.25, seed=17
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference), name


def test_specialized_engine_under_deletions():
    """Record pools must reclaim slots for cancelled records."""
    spec = TPCH_QUERIES["Q6"]
    tables = generate_tpch(sf=0.0001, seed=19)
    program = apply_batch_preaggregation(
        compile_query(spec.query, spec.name, updatable=spec.updatable)
    )
    engine = SpecializedIVMEngine(program, mode="batch")
    engine.initialize(Database())
    reference = Database()

    for relation, batch in stream_batches_with_deletions(
        tables, 20, relations=spec.updatable, delete_fraction=0.3, seed=19
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference)


def test_distributed_cluster_under_deletions():
    from repro.distributed import SimulatedCluster, compile_distributed

    spec = TPCH_QUERIES["Q3"]
    tables = generate_tpch(sf=0.0002, seed=23)
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=3)
    reference = Database()
    static = Database()
    for tname, rows in tables.items():
        if tname not in spec.updatable:
            static.insert_rows(tname, rows)
            reference.insert_rows(tname, rows)
    from repro.harness.scaling import _install_view
    from repro.eval import Evaluator

    evaluator = Evaluator(static)
    for info in dprog.local_program.views.values():
        contents = evaluator.evaluate(info.definition)
        if not contents.is_zero():
            _install_view(
                cluster, info, contents, dprog.partitioning.get(info.name)
            )

    for relation, batch in stream_batches_with_deletions(
        tables, 30, relations=spec.updatable, delete_fraction=0.25, seed=23
    ):
        cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert cluster.snapshot() == evaluate(spec.query, reference)
