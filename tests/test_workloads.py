"""Workload tests: generators, streams, and all 35 query definitions."""

import pytest

from repro.eval import Database, evaluate
from repro.query.schema import base_relations, out_cols
from repro.workloads import (
    TPCDS_QUERIES,
    TPCDS_TABLES,
    TPCH_QUERIES,
    TPCH_TABLES,
    generate_tpcds,
    generate_tpch,
    load_database,
    stream_batches,
)
from repro.workloads.datagen import DATE_MAX
from repro.workloads.streams import interleave


# ----------------------------------------------------------------------
# Data generation
# ----------------------------------------------------------------------


def test_tpch_generator_arities_match_schema():
    tables = generate_tpch(sf=0.0005)
    for name, rows in tables.items():
        assert rows, name
        assert all(len(r) == len(TPCH_TABLES[name]) for r in rows), name


def test_tpcds_generator_arities_match_schema():
    tables = generate_tpcds(sf=0.0005)
    for name, rows in tables.items():
        assert rows, name
        assert all(len(r) == len(TPCDS_TABLES[name]) for r in rows), name


def test_tpch_generator_deterministic():
    a = generate_tpch(sf=0.0005, seed=9)
    b = generate_tpch(sf=0.0005, seed=9)
    assert a == b
    c = generate_tpch(sf=0.0005, seed=10)
    assert a != c


def test_tpch_referential_integrity():
    tables = generate_tpch(sf=0.0005)
    order_keys = {r[0] for r in tables["ORDERS"]}
    part_keys = {r[0] for r in tables["PART"]}
    supp_keys = {r[0] for r in tables["SUPPLIER"]}
    cust_keys = {r[0] for r in tables["CUSTOMER"]}
    for li in tables["LINEITEM"]:
        assert li[0] in order_keys
        assert li[1] in part_keys
        assert li[2] in supp_keys
    for o in tables["ORDERS"]:
        assert o[1] in cust_keys


def test_tpch_cardinalities_proportional():
    tables = generate_tpch(sf=0.001)
    assert len(tables["LINEITEM"]) > len(tables["ORDERS"])
    assert len(tables["ORDERS"]) > len(tables["CUSTOMER"])
    assert len(tables["PARTSUPP"]) > len(tables["PART"])


def test_tpch_value_domains():
    tables = generate_tpch(sf=0.0005)
    for li in tables["LINEITEM"]:
        assert 1 <= li[3] <= 50          # qty
        assert 0 <= li[5] <= 10          # disc (percent)
        assert 0 <= li[6] <= DATE_MAX    # shipdate
        assert li[7] in (0, 1, 2)        # returnflag


def test_partsupp_keys_unique():
    tables = generate_tpch(sf=0.001)
    keys = [(r[0], r[1]) for r in tables["PARTSUPP"]]
    assert len(keys) == len(set(keys))


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------


def test_interleave_round_robin():
    tables = {"A": [(1,), (2,)], "B": [(10,), (20,), (30,)]}
    events = list(interleave(tables))
    assert events == [
        ("A", (1,)), ("B", (10,)),
        ("A", (2,)), ("B", (20,)),
        ("B", (30,)),
    ]


def test_stream_batches_sizes_and_totals():
    tables = {"A": [(i,) for i in range(7)]}
    batches = list(stream_batches(tables, batch_size=3))
    assert [len(b) for _, b in batches] == [3, 3, 1]
    total = sum(int(m) for _, b in batches for m in b.data.values())
    assert total == 7


def test_stream_batches_restricted_relations():
    tables = {"A": [(1,)], "B": [(2,)]}
    batches = list(stream_batches(tables, 10, relations=frozenset({"A"})))
    assert [r for r, _ in batches] == ["A"]


def test_stream_batches_cover_all_tuples():
    tables = generate_tpch(sf=0.0003)
    streamed = {}
    for r, b in stream_batches(tables, batch_size=10):
        streamed[r] = streamed.get(r, 0) + int(sum(b.data.values()))
    # Multiset semantics: duplicate generated rows accumulate, so
    # compare tuple counts.
    for name, rows in tables.items():
        assert streamed.get(name, 0) == len(rows)


def test_load_database():
    tables = {"A": [(1,), (1,), (2,)]}
    db = load_database(tables)
    assert db.get_view("A").get((1,)) == 2


# ----------------------------------------------------------------------
# Query definitions: structural sanity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_query_well_formed(name):
    spec = TPCH_QUERIES[name]
    assert out_cols(spec.query) is not None
    rels = base_relations(spec.query)
    assert rels <= set(TPCH_TABLES)
    assert spec.updatable <= rels


@pytest.mark.parametrize("name", sorted(TPCDS_QUERIES))
def test_tpcds_query_well_formed(name):
    spec = TPCDS_QUERIES[name]
    rels = base_relations(spec.query)
    assert rels <= set(TPCDS_TABLES)
    assert spec.updatable <= rels


def test_expected_query_counts():
    assert len(TPCH_QUERIES) == 22
    assert len(TPCDS_QUERIES) == 13


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_query_evaluates_on_generated_data(name):
    db = load_database(generate_tpch(sf=0.0004, seed=3))
    g = evaluate(TPCH_QUERIES[name].query, db)
    assert g is not None  # evaluation completes; contents may be empty


@pytest.mark.parametrize("name", sorted(TPCDS_QUERIES))
def test_tpcds_query_evaluates_on_generated_data(name):
    db = load_database(generate_tpcds(sf=0.0004, seed=3))
    g = evaluate(TPCDS_QUERIES[name].query, db)
    assert g is not None


@pytest.mark.slow
def test_selective_queries_nonempty_at_moderate_scale():
    """Spot check that filters aren't so tight everything is empty."""
    db = load_database(generate_tpch(sf=0.002, seed=5))
    nonempty = 0
    for name in ("Q1", "Q3", "Q5", "Q10", "Q12", "Q13", "Q18"):
        if not evaluate(TPCH_QUERIES[name].query, db).is_zero():
            nonempty += 1
    assert nonempty >= 5
