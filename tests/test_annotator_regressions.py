"""Regression tests for distributed-annotation correctness bugs.

Both bugs were found by the all-queries distributed sweep
(test_distributed_workloads.py); these tests pin the specific
mechanisms so they cannot silently return.
"""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.distributed import SimulatedCluster, compile_distributed
from repro.distributed.annotate import (
    _matching_key_column,
    annotate_program,
    default_partitioning,
)
from repro.distributed.tags import Dist, RANDOM
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.query.ast import Repart, Scatter, children
from repro.query.schema import out_cols
from repro.workloads import TPCH_QUERIES


# ----------------------------------------------------------------------
# Bug 1: partitioning heuristic was blind to renamed key columns
# (Q17's Q17_V3(pkey2, qty2) stayed Local, so the correlated assign was
# shipped by a free variable — "Scatter[pkey] of a (S,) relation").
# ----------------------------------------------------------------------


def test_matching_key_column_exact():
    assert _matching_key_column("pkey", ("pkey", "qty")) == "pkey"


def test_matching_key_column_renamed_suffix():
    assert _matching_key_column("pkey", ("pkey2", "qty")) == "pkey2"
    assert _matching_key_column("ckey", ("ckey12",)) == "ckey12"


def test_matching_key_column_rejects_lookalikes():
    assert _matching_key_column("pkey", ("pkeyx", "qty")) is None
    assert _matching_key_column("key", ()) is None


def test_q17_self_join_views_are_partitioned():
    spec = TPCH_QUERIES["Q17"]
    program = compile_query(spec.query, "Q17", updatable=spec.updatable)
    part = default_partitioning(program, spec.key_hints)
    renamed_views = [
        info.name
        for info in program.views.values()
        if any(c.startswith("pkey") and c != "pkey" for c in info.cols)
        and not any(c == "pkey" for c in info.cols)
    ]
    assert renamed_views, "expected self-join views with renamed pkey"
    for name in renamed_views:
        assert isinstance(part[name], Dist), f"{name} not partitioned"


def _all_transformers(program, part):
    dprog = annotate_program(program, part, delta_tag=RANDOM)
    out = []

    def visit(e):
        if isinstance(e, (Scatter, Repart)):
            out.append(e)
        for c in children(e):
            visit(c)

    for trig in dprog.triggers.values():
        for s in trig.statements:
            visit(s.expr)
    return out


@pytest.mark.parametrize("name", ["Q17", "Q16", "Q20", "Q21", "Q22"])
def test_no_transformer_partitions_on_missing_column(name):
    """A transformer's keys must be columns of the contents it moves."""
    spec = TPCH_QUERIES[name]
    program = apply_batch_preaggregation(
        compile_query(spec.query, name, updatable=spec.updatable)
    )
    part = default_partitioning(program, spec.key_hints)
    for t in _all_transformers(program, part):
        assert set(t.keys) <= set(out_cols(t.child)), (
            f"{name}: {type(t).__name__}{t.keys} over {out_cols(t.child)}"
        )


# ----------------------------------------------------------------------
# Bug 2: nested aggregates do not gate emission, so a worker that does
# not own a key must never evaluate it against its local partition
# (Q16's X == 0 condition emitted on every worker, multiplying the
# result by the worker count).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_workers", [2, 3, 5])
def test_q16_not_exists_counts_once(n_workers):
    """The NOT EXISTS-style condition must contribute exactly once per
    qualifying tuple, independent of worker count."""
    spec = TPCH_QUERIES["Q16"]
    prepared = prepare_stream(spec, 40, sf=0.0003, max_batches=4)
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=n_workers)
    _preload_static(cluster, prepared, dprog)
    reference = prepared.fresh_static()
    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert cluster.snapshot() == evaluate(spec.query, reference)


def test_m3_distinct_counts_once():
    """Exists-based DISTINCT must not multiply by the worker count."""
    from repro.workloads import MICRO_QUERIES

    spec = MICRO_QUERIES["M3"]
    prepared = prepare_stream(
        spec, 30, workload="micro", sf=0.03, max_batches=4
    )
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=4)
    _preload_static(cluster, prepared, dprog)
    reference = prepared.fresh_static()
    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    result = cluster.snapshot()
    assert result == evaluate(spec.query, reference)
    # DISTINCT semantics: every multiplicity is exactly one.
    assert all(m == 1 for m in result.data.values())
