"""The process-parallel backend: real workers, simulated-cluster oracle.

The `multiproc` backend executes the same DistributedProgram as
SimulatedCluster, so the cluster is its semantic oracle: any stream —
including one mixing insertions and deletions — must leave both with
identical snapshots.  The suite also covers the failure contract
(worker death raises BackendError instead of hanging), lifecycle, and
composition with the ViewService.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.eval import Database, evaluate
from repro.exec import BackendError, create_backend
from repro.query import join, rel, sum_over
from repro.ring import GMR
from repro.service import ViewService
from repro.workloads import MICRO_QUERIES
from repro.workloads.spec import QuerySpec

Q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

SPEC = QuerySpec(
    name="mp_q",
    query=Q,
    updatable=frozenset({"R", "S"}),
    key_hints={"R": ("A",), "S": ("B",)},
)


def _mixed_stream(spec: QuerySpec, seed: int = 7, n_batches: int = 8):
    """A deterministic insert+delete stream over the spec's relations."""
    import random

    rng = random.Random(seed)
    rels = sorted(spec.updatable)
    batches = []
    for i in range(n_batches):
        relation = rels[i % len(rels)]
        pairs = [
            ((rng.randrange(6), rng.randrange(6)), 1)
            for _ in range(10)
        ]
        # Mix deletions in after the stream has built some state.
        if i >= len(rels):
            pairs.extend(
                ((rng.randrange(6), rng.randrange(6)), -1) for _ in range(4)
            )
        batch = GMR.from_pairs(pairs)
        if not batch.is_zero():
            batches.append((relation, batch))
    return batches


@pytest.mark.parametrize("data_plane", ["pickle", "shm"])
@pytest.mark.parametrize("workload", ["M1", "M2", "M3"])
def test_differential_against_simulated_cluster(workload, data_plane):
    """Same insert+delete stream -> identical snapshots, batch by batch,
    on both data planes."""
    spec = MICRO_QUERIES[workload]
    oracle = create_backend("cluster", spec, n_workers=3)
    backend = create_backend(
        "multiproc", spec, n_workers=3, data_plane=data_plane
    )
    try:
        for relation, batch in _mixed_stream(spec):
            oracle.on_batch(relation, batch)
            backend.on_batch(relation, batch)
            assert backend.snapshot() == oracle.snapshot(), (
                f"{workload} diverged from the simulated cluster after a "
                f"batch on {relation} ({data_plane} data plane)"
            )
    finally:
        backend.close()


def test_tracks_reference_with_deletions():
    backend = create_backend("multiproc", SPEC, n_workers=2)
    try:
        reference = Database()
        for relation, batch in _mixed_stream(SPEC):
            backend.on_batch(relation, batch)
            reference.apply_update(relation, batch)
            assert backend.snapshot() == evaluate(Q, reference)
    finally:
        backend.close()


def test_worker_count_and_metrics():
    backend = create_backend("multiproc", SPEC, n_workers=3)
    try:
        assert backend.n_workers == 3
        assert len(backend._handles) == 3
        for relation, batch in _mixed_stream(SPEC, n_batches=4):
            backend.on_batch(relation, batch)
        m = backend.metrics
        assert m.batches == len(m.wall_s) == len(m.scaleout_s) > 0
        assert all(s <= w + 1e-9 for s, w in zip(m.scaleout_s, m.wall_s))
        assert m.balance() >= 1.0
    finally:
        backend.close()


def test_initialize_installs_partitions():
    base = Database()
    base.insert_rows("R", [(1, 10), (2, 20), (3, 10)])
    base.insert_rows("S", [(10, 5), (20, 6)])
    backend = create_backend("multiproc", SPEC, n_workers=2)
    try:
        backend.initialize(base)
        assert backend.snapshot() == evaluate(Q, base)
        batch = GMR({(5, 20): 1, (1, 10): -1})
        backend.on_batch("R", batch)
        base.apply_update("R", batch)
        assert backend.snapshot() == evaluate(Q, base)
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Failure contract (restart_budget=0: the strict fail-fast mode)
# ----------------------------------------------------------------------
def test_worker_crash_raises_backend_error_not_hang():
    """With no restart budget, a dying worker is a clear BackendError."""
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=5.0,
        restart_budget=0,
    )
    try:
        backend.on_batch("R", GMR({(1, 10): 1}))
        victim = backend._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5.0)
        with pytest.raises(BackendError, match="worker 0"):
            # The batch may fail at send (broken pipe) or at the reply
            # wait (liveness poll); both must diagnose the dead worker.
            for _ in range(3):
                backend.on_batch("S", GMR({(10, 5): 1}))
    finally:
        backend.close()


def test_failed_backend_refuses_further_use():
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=5.0,
        restart_budget=0,
    )
    try:
        os.kill(backend._handles[1].process.pid, signal.SIGKILL)
        backend._handles[1].process.join(5.0)
        with pytest.raises(BackendError):
            for _ in range(3):
                backend.on_batch("R", GMR({(1, 10): 1}))
        with pytest.raises(BackendError, match="already failed"):
            backend.on_batch("R", GMR({(2, 20): 1}))
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Worker elasticity (restart + journal replay)
# ----------------------------------------------------------------------
def _kill_worker(backend, index):
    victim = backend._handles[index].process
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(5.0)
    return victim.pid


@pytest.mark.parametrize("data_plane", ["pickle", "shm"])
def test_killed_worker_restarted_and_partition_replayed(data_plane):
    """A SIGKILLed worker is resurrected, its partition replayed, and
    the stream continues with snapshots identical to the oracle."""
    spec = MICRO_QUERIES["M1"]
    oracle = create_backend("cluster", spec, n_workers=2)
    backend = create_backend(
        "multiproc", spec, n_workers=2, reply_timeout_s=10.0,
        data_plane=data_plane,
    )
    try:
        stream = _mixed_stream(spec)
        half = len(stream) // 2
        for relation, batch in stream[:half]:
            oracle.on_batch(relation, batch)
            backend.on_batch(relation, batch)
        old_pid = _kill_worker(backend, 0)
        for relation, batch in stream[half:]:
            oracle.on_batch(relation, batch)
            backend.on_batch(relation, batch)
            assert backend.snapshot() == oracle.snapshot()
        assert backend.metrics.restarts >= 1
        assert backend._handles[0].process.pid != old_pid
        assert backend._handles[0].process.is_alive()
    finally:
        backend.close()


def test_recovery_replays_initialized_partitions():
    """Recovery restores installed base partitions, not just deltas."""
    base = Database()
    base.insert_rows("R", [(1, 10), (2, 20), (3, 10), (4, 20)])
    base.insert_rows("S", [(10, 5), (20, 6)])
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=10.0
    )
    try:
        backend.initialize(base)
        _kill_worker(backend, 1)
        batch = GMR({(5, 20): 1, (1, 10): -1})
        backend.on_batch("R", batch)
        base.apply_update("R", batch)
        assert backend.snapshot() == evaluate(Q, base)
        assert backend.metrics.restarts >= 1
    finally:
        backend.close()


def test_checkpoint_bounds_replay():
    """With a short checkpoint cadence, recovery replays from the dump
    (the committed journal is truncated) and still converges."""
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=10.0,
        checkpoint_every=2,
    )
    try:
        reference = Database()
        stream = _mixed_stream(SPEC, n_batches=7)
        for i, (relation, batch) in enumerate(stream):
            backend.on_batch(relation, batch)
            reference.apply_update(relation, batch)
            if i == 4:
                sup = backend._supervisor
                # The cadence really truncated the journal...
                assert any(j.checkpoint for j in sup.journals)
                _kill_worker(backend, 0)
        assert backend.snapshot() == evaluate(Q, reference)
        assert backend.metrics.restarts >= 1
    finally:
        backend.close()


def test_restart_budget_exhaustion_poisons():
    """Deaths beyond the budget fall back to the poisoning contract."""
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=5.0,
        restart_budget=1,
    )
    try:
        backend.on_batch("R", GMR({(1, 10): 1}))
        _kill_worker(backend, 0)
        backend.on_batch("R", GMR({(2, 20): 1}))  # absorbed: budget 1 -> 0
        _kill_worker(backend, 1)
        with pytest.raises(BackendError, match="restart budget"):
            for _ in range(3):
                backend.on_batch("S", GMR({(10, 5): 1}))
        with pytest.raises(BackendError, match="already failed"):
            backend.on_batch("R", GMR({(3, 30): 1}))
    finally:
        backend.close()


def test_close_then_use_raises():
    backend = create_backend("multiproc", SPEC, n_workers=2)
    backend.on_batch("R", GMR({(1, 10): 1}))
    backend.close()
    backend.close()  # idempotent
    with pytest.raises(BackendError, match="closed"):
        backend.on_batch("R", GMR({(2, 20): 1}))
    for h in backend._handles:
        h.process.join(5.0)
        assert not h.process.is_alive()


def test_context_manager_stops_workers():
    with create_backend("multiproc", SPEC, n_workers=2) as backend:
        backend.on_batch("R", GMR({(1, 10): 1}))
        handles = backend._handles
    for h in handles:
        h.process.join(5.0)
        assert not h.process.is_alive()


def test_unknown_relation_raises_keyerror():
    with create_backend("multiproc", SPEC, n_workers=2) as backend:
        with pytest.raises(KeyError, match="NOPE"):
            backend.on_batch("NOPE", GMR({(1,): 1}))


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def test_multiproc_view_in_service():
    """The backend composes with ViewService sessions + changefeeds."""
    service = ViewService(catalog={"R": ("A", "B"), "S": ("B", "C")})
    service.create_view("par", SPEC, backend="multiproc", n_workers=2)
    service.create_view("ref", SPEC, backend="rivm-batch")
    acc = GMR()
    service.subscribe("par", lambda event: acc.add_inplace(event.delta))
    try:
        for relation, batch in _mixed_stream(SPEC, n_batches=6):
            service.on_batch(relation, batch)
            assert service.snapshot("par") == service.snapshot("ref")
        assert acc == service.snapshot("par")
    finally:
        service.view("par").backend.close()
