"""The process-parallel backend: real workers, simulated-cluster oracle.

The `multiproc` backend executes the same DistributedProgram as
SimulatedCluster, so the cluster is its semantic oracle: any stream —
including one mixing insertions and deletions — must leave both with
identical snapshots.  The suite also covers the failure contract
(worker death raises BackendError instead of hanging), lifecycle, and
composition with the ViewService.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.eval import Database, evaluate
from repro.exec import BackendError, create_backend
from repro.query import join, rel, sum_over
from repro.ring import GMR
from repro.service import ViewService
from repro.workloads import MICRO_QUERIES
from repro.workloads.spec import QuerySpec

Q = sum_over(["B"], join(rel("R", "A", "B"), rel("S", "B", "C")))

SPEC = QuerySpec(
    name="mp_q",
    query=Q,
    updatable=frozenset({"R", "S"}),
    key_hints={"R": ("A",), "S": ("B",)},
)


def _mixed_stream(spec: QuerySpec, seed: int = 7, n_batches: int = 8):
    """A deterministic insert+delete stream over the spec's relations."""
    import random

    rng = random.Random(seed)
    rels = sorted(spec.updatable)
    batches = []
    for i in range(n_batches):
        relation = rels[i % len(rels)]
        pairs = [
            ((rng.randrange(6), rng.randrange(6)), 1)
            for _ in range(10)
        ]
        # Mix deletions in after the stream has built some state.
        if i >= len(rels):
            pairs.extend(
                ((rng.randrange(6), rng.randrange(6)), -1) for _ in range(4)
            )
        batch = GMR.from_pairs(pairs)
        if not batch.is_zero():
            batches.append((relation, batch))
    return batches


@pytest.mark.parametrize("workload", ["M1", "M2", "M3"])
def test_differential_against_simulated_cluster(workload):
    """Same insert+delete stream -> identical snapshots, batch by batch."""
    spec = MICRO_QUERIES[workload]
    oracle = create_backend("cluster", spec, n_workers=3)
    backend = create_backend("multiproc", spec, n_workers=3)
    try:
        for relation, batch in _mixed_stream(spec):
            oracle.on_batch(relation, batch)
            backend.on_batch(relation, batch)
            assert backend.snapshot() == oracle.snapshot(), (
                f"{workload} diverged from the simulated cluster after a "
                f"batch on {relation}"
            )
    finally:
        backend.close()


def test_tracks_reference_with_deletions():
    backend = create_backend("multiproc", SPEC, n_workers=2)
    try:
        reference = Database()
        for relation, batch in _mixed_stream(SPEC):
            backend.on_batch(relation, batch)
            reference.apply_update(relation, batch)
            assert backend.snapshot() == evaluate(Q, reference)
    finally:
        backend.close()


def test_worker_count_and_metrics():
    backend = create_backend("multiproc", SPEC, n_workers=3)
    try:
        assert backend.n_workers == 3
        assert len(backend._handles) == 3
        for relation, batch in _mixed_stream(SPEC, n_batches=4):
            backend.on_batch(relation, batch)
        m = backend.metrics
        assert m.batches == len(m.wall_s) == len(m.scaleout_s) > 0
        assert all(s <= w + 1e-9 for s, w in zip(m.scaleout_s, m.wall_s))
        assert m.balance() >= 1.0
    finally:
        backend.close()


def test_initialize_installs_partitions():
    base = Database()
    base.insert_rows("R", [(1, 10), (2, 20), (3, 10)])
    base.insert_rows("S", [(10, 5), (20, 6)])
    backend = create_backend("multiproc", SPEC, n_workers=2)
    try:
        backend.initialize(base)
        assert backend.snapshot() == evaluate(Q, base)
        batch = GMR({(5, 20): 1, (1, 10): -1})
        backend.on_batch("R", batch)
        base.apply_update("R", batch)
        assert backend.snapshot() == evaluate(Q, base)
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Failure contract
# ----------------------------------------------------------------------
def test_worker_crash_raises_backend_error_not_hang():
    """A worker dying mid-stream surfaces as a clear BackendError."""
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=5.0
    )
    try:
        backend.on_batch("R", GMR({(1, 10): 1}))
        victim = backend._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5.0)
        with pytest.raises(BackendError, match="worker 0"):
            # The batch may fail at send (broken pipe) or at the reply
            # wait (liveness poll); both must diagnose the dead worker.
            for _ in range(3):
                backend.on_batch("S", GMR({(10, 5): 1}))
    finally:
        backend.close()


def test_failed_backend_refuses_further_use():
    backend = create_backend(
        "multiproc", SPEC, n_workers=2, reply_timeout_s=5.0
    )
    try:
        os.kill(backend._handles[1].process.pid, signal.SIGKILL)
        backend._handles[1].process.join(5.0)
        with pytest.raises(BackendError):
            for _ in range(3):
                backend.on_batch("R", GMR({(1, 10): 1}))
        with pytest.raises(BackendError, match="already failed"):
            backend.on_batch("R", GMR({(2, 20): 1}))
    finally:
        backend.close()


def test_close_then_use_raises():
    backend = create_backend("multiproc", SPEC, n_workers=2)
    backend.on_batch("R", GMR({(1, 10): 1}))
    backend.close()
    backend.close()  # idempotent
    with pytest.raises(BackendError, match="closed"):
        backend.on_batch("R", GMR({(2, 20): 1}))
    for h in backend._handles:
        h.process.join(5.0)
        assert not h.process.is_alive()


def test_context_manager_stops_workers():
    with create_backend("multiproc", SPEC, n_workers=2) as backend:
        backend.on_batch("R", GMR({(1, 10): 1}))
        handles = backend._handles
    for h in handles:
        h.process.join(5.0)
        assert not h.process.is_alive()


def test_unknown_relation_raises_keyerror():
    with create_backend("multiproc", SPEC, n_workers=2) as backend:
        with pytest.raises(KeyError, match="NOPE"):
            backend.on_batch("NOPE", GMR({(1,): 1}))


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def test_multiproc_view_in_service():
    """The backend composes with ViewService sessions + changefeeds."""
    service = ViewService(catalog={"R": ("A", "B"), "S": ("B", "C")})
    service.create_view("par", SPEC, backend="multiproc", n_workers=2)
    service.create_view("ref", SPEC, backend="rivm-batch")
    acc = GMR()
    service.subscribe("par", lambda event: acc.add_inplace(event.delta))
    try:
        for relation, batch in _mixed_stream(SPEC, n_batches=6):
            service.on_batch(relation, batch)
            assert service.snapshot("par") == service.snapshot("ref")
        assert acc == service.snapshot("par")
    finally:
        service.view("par").backend.close()
