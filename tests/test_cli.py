"""The command-line interface."""

import pytest

from repro.cli import main


def test_list_queries(capsys):
    assert main(["list-queries"]) == 0
    out = capsys.readouterr().out
    assert "Q3" in out
    assert "tpcds" in out
    assert "M2" in out


def test_compile_workload_query(capsys):
    assert main(["compile", "Q6"]) == 0
    out = capsys.readouterr().out
    assert "ON UPDATE LINEITEM" in out
    assert "materialized views" in out


def test_compile_with_preagg(capsys):
    assert main(["compile", "Q6", "--preagg"]) == 0
    out = capsys.readouterr().out
    assert "_PRE" in out


def test_compile_adhoc_sql(capsys):
    rc = main(
        ["compile", "--sql", "SELECT COUNT(*) FROM R, S WHERE R.b = S.b"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ON UPDATE R" in out
    assert "ON UPDATE S" in out


def test_run_reports_throughput(capsys):
    rc = main(
        [
            "run", "Q6", "--batch-size", "50", "--sf", "0.0002",
            "--max-batches", "4",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "tuples/s" in out
    assert "rivm-batch" in out


def test_run_single_tuple_mode(capsys):
    rc = main(
        [
            "run", "Q6", "--strategy", "rivm-single", "--batch-size", "0",
            "--sf", "0.0002", "--max-batches", "3",
        ]
    )
    assert rc == 0
    assert "Single" in capsys.readouterr().out


def test_distributed_plan(capsys):
    assert main(["distributed", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "BLOCK" in out
    assert "distributed program" in out


def test_distributed_sweep(capsys):
    rc = main(
        [
            "distributed", "Q6", "--workers", "2,4",
            "--tuples-per-worker", "30", "--sf", "0.0005",
            "--max-batches", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_advise(capsys):
    assert main(["advise", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "default" in out
    assert "driver-only" in out


def test_unknown_query_exits():
    with pytest.raises(SystemExit):
        main(["compile", "NOPE"])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
