"""The command-line interface."""

import pytest

from repro.cli import main


def test_list_queries(capsys):
    assert main(["list-queries"]) == 0
    out = capsys.readouterr().out
    assert "Q3" in out
    assert "tpcds" in out
    assert "M2" in out


def test_compile_workload_query(capsys):
    assert main(["compile", "Q6"]) == 0
    out = capsys.readouterr().out
    assert "ON UPDATE LINEITEM" in out
    assert "materialized views" in out


def test_compile_with_preagg(capsys):
    assert main(["compile", "Q6", "--preagg"]) == 0
    out = capsys.readouterr().out
    assert "_PRE" in out


def test_compile_adhoc_sql(capsys):
    rc = main(
        ["compile", "--sql", "SELECT COUNT(*) FROM R, S WHERE R.b = S.b"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ON UPDATE R" in out
    assert "ON UPDATE S" in out


def test_run_reports_throughput(capsys):
    rc = main(
        [
            "run", "Q6", "--batch-size", "50", "--sf", "0.0002",
            "--max-batches", "4",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "tuples/s" in out
    assert "rivm-batch" in out


def test_run_single_tuple_mode(capsys):
    rc = main(
        [
            "run", "Q6", "--backend", "rivm-single", "--batch-size", "0",
            "--sf", "0.0002", "--max-batches", "3",
        ]
    )
    assert rc == 0
    assert "Single" in capsys.readouterr().out


def test_run_strategy_is_deprecated_alias(capsys):
    with pytest.warns(DeprecationWarning, match="--backend"):
        rc = main(
            [
                "run", "Q6", "--strategy", "reeval", "--batch-size", "50",
                "--sf", "0.0002", "--max-batches", "2",
            ]
        )
    assert rc == 0
    captured = capsys.readouterr()
    assert "reeval" in captured.out          # the alias still selects
    assert "deprecated" in captured.err      # and warns loudly


@pytest.mark.parametrize("workers", ["0", "-2"])
def test_run_rejects_non_positive_workers(workers):
    with pytest.raises(SystemExit, match=r"--workers must be at least 1"):
        main(
            [
                "run", "Q6", "--backend", "multiproc",
                "--workers", workers, "--sf", "0.0002",
            ]
        )


def test_serve_rejects_non_positive_workers():
    with pytest.raises(SystemExit, match=r"--workers must be at least 1"):
        main(
            [
                "serve", "M1", "--workload", "micro",
                "--backends", "multiproc", "--workers", "0",
            ]
        )


def test_run_multiproc_data_plane_flag(capsys):
    rc = main(
        [
            "run", "M1", "--workload", "micro", "--backend", "multiproc",
            "--workers", "2", "--data-plane", "shm", "--sf", "0.02",
            "--max-batches", "3", "--batch-size", "20",
        ]
    )
    assert rc == 0
    assert "multiproc" in capsys.readouterr().out


def test_run_unknown_backend_exits():
    with pytest.raises(SystemExit, match="unknown backend"):
        main(["run", "Q6", "--backend", "warp-drive"])


def test_serve_hosts_multiple_views(capsys):
    rc = main(
        [
            "serve", "Q6", "M2",
            "--sql", "RS=SELECT COUNT(*) FROM R, S WHERE R.b = S.b",
            "--backends", "rivm-batch,reeval",
            "--batch-size", "30", "--workload", "micro",
            "--sf", "0.002", "--max-batches", "8",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "serving 3 views over one stream" in captured.out
    assert "RS" in captured.out
    assert "tuples/s routed" in captured.out
    # Q6 streams LINEITEM, which the micro workload never generates:
    # the run succeeds but warns that the view is starved.
    assert "will stay empty" in captured.err
    assert "'Q6'" in captured.err


def test_serve_requires_a_view():
    with pytest.raises(SystemExit, match="at least one view"):
        main(["serve"])


def test_serve_rejects_malformed_sql_option():
    with pytest.raises(SystemExit, match="NAME=SELECT"):
        main(["serve", "--sql", "no-equals-sign"])


def test_serve_rejects_unknown_backend():
    with pytest.raises(SystemExit, match="unknown backend"):
        main(["serve", "Q6", "--backends", "warp-drive"])


def test_serve_rejects_empty_backend_list():
    with pytest.raises(SystemExit, match="at least one backend"):
        main(["serve", "Q6", "--backends", ","])


def test_serve_rejects_duplicate_view_names():
    with pytest.raises(SystemExit, match="duplicate view name"):
        main(["serve", "Q6", "Q6"])


def test_serve_prefers_requested_workload_for_colliding_names(capsys):
    """Q3 exists in both TPC-H and TPC-DS; --workload tpcds must bind
    the TPC-DS one (whose stream actually feeds it)."""
    rc = main(
        [
            "serve", "Q3", "--workload", "tpcds", "--batch-size", "30",
            "--sf", "0.0005", "--max-batches", "6",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "STORE_SALES" in out          # TPC-DS relations, not LINEITEM
    import re

    n_tuples = int(re.search(r"(\d+) streamed tuples", out).group(1))
    assert n_tuples > 0


def test_run_async_end_to_end(capsys):
    rc = main(
        [
            "run", "M1", "--workload", "micro", "--async",
            "--policy", "adaptive", "--max-batch", "40",
            "--sf", "0.01", "--max-batches", "4",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "async:rivm-batch" in out
    assert "tuples/s" in out


def test_run_async_flags_reach_backend_factory(monkeypatch):
    """--async/--policy/--max-batch/--max-delay/--workers land in the
    backend name and backend_options handed to the harness."""
    from repro.harness import LocalResult

    seen = {}

    def fake_measure_throughput(spec, backend, batch_size, **kwargs):
        seen["backend"] = backend
        seen["kwargs"] = kwargs
        return LocalResult(
            query=spec.name, strategy=backend, batch_size=batch_size,
            throughput=1.0, virtual_throughput=1.0, n_tuples=1,
            elapsed_s=0.1,
        )

    monkeypatch.setattr(
        "repro.harness.measure_throughput", fake_measure_throughput
    )
    rc = main(
        [
            "run", "Q6", "--backend", "multiproc", "--workers", "3",
            "--async", "--policy", "delay", "--max-batch", "64",
            "--max-delay", "0.01",
        ]
    )
    assert rc == 0
    assert seen["backend"] == "async:multiproc"
    assert seen["kwargs"]["n_workers"] == 3
    assert seen["kwargs"]["policy"] == "delay"
    assert seen["kwargs"]["max_batch"] == 64
    assert seen["kwargs"]["max_delay_s"] == 0.01


def test_run_async_knobs_require_async_flag():
    with pytest.raises(SystemExit, match="--async"):
        main(["run", "Q6", "--policy", "adaptive"])
    with pytest.raises(SystemExit, match="--async"):
        main(["serve", "M1", "--workload", "micro", "--max-batch", "10"])


def test_run_accepts_explicit_async_backend_name(monkeypatch):
    """async:<backend> is a first-class --backend value: the async
    knobs apply without a redundant --async, and the name is never
    double-wrapped (even with --async given too)."""
    from repro.harness import LocalResult

    seen = {}

    def fake_measure_throughput(spec, backend, batch_size, **kwargs):
        seen["backend"] = backend
        seen["kwargs"] = kwargs
        return LocalResult(
            query=spec.name, strategy=backend, batch_size=batch_size,
            throughput=1.0, virtual_throughput=1.0, n_tuples=1,
            elapsed_s=0.1,
        )

    monkeypatch.setattr(
        "repro.harness.measure_throughput", fake_measure_throughput
    )
    assert main(["run", "Q6", "--backend", "async:reeval"]) == 0
    assert seen["backend"] == "async:reeval"
    assert "policy" not in seen["kwargs"]
    rc = main(
        [
            "run", "Q6", "--backend", "async:reeval", "--async",
            "--policy", "adaptive",
        ]
    )
    assert rc == 0
    assert seen["backend"] == "async:reeval"  # not async:async:reeval
    assert seen["kwargs"]["policy"] == "adaptive"
    assert main(
        ["run", "Q6", "--backend", "async:reeval", "--max-batch", "9"]
    ) == 0
    assert seen["kwargs"]["max_batch"] == 9  # implied by the name


def test_serve_async_flags_reach_view_defs(monkeypatch):
    """serve --async wraps every round-robin backend and forwards the
    ingestion options into each ViewDef."""
    from repro.harness import ServiceResult, ViewStats

    seen = {}

    def fake_measure_service_throughput(defs, batch_size, **kwargs):
        seen["defs"] = list(defs)
        return ServiceResult(
            views=[
                ViewStats(
                    name=d.name, backend=d.backend, streamed=("R",),
                    batches_applied=1, deltas_delivered=1,
                    snapshot_tuples=1,
                )
                for d in seen["defs"]
            ],
            n_tuples=1, routed_tuples=1, n_batches=1, elapsed_s=0.1,
        )

    monkeypatch.setattr(
        "repro.harness.measure_service_throughput",
        fake_measure_service_throughput,
    )
    rc = main(
        [
            "serve", "M1", "M2", "--workload", "micro",
            "--backends", "rivm-batch,reeval", "--workers", "2",
            "--async", "--policy", "fixed", "--max-batch", "32",
        ]
    )
    assert rc == 0
    assert [d.backend for d in seen["defs"]] == [
        "async:rivm-batch", "async:reeval",
    ]
    for d in seen["defs"]:
        assert d.options["policy"] == "fixed"
        assert d.options["max_batch"] == 32
        assert d.options["n_workers"] == 2


def test_serve_mixed_async_list_scopes_knobs(monkeypatch):
    """An explicitly async backend in a mixed --backends list implies
    the knobs for *its* views only; synchronous backends stay
    synchronous and unconfigured."""
    from repro.harness import ServiceResult, ViewStats

    seen = {}

    def fake_measure_service_throughput(defs, batch_size, **kwargs):
        seen["defs"] = list(defs)
        return ServiceResult(
            views=[
                ViewStats(
                    name=d.name, backend=d.backend, streamed=("R",),
                    batches_applied=1, deltas_delivered=1,
                    snapshot_tuples=1,
                )
                for d in seen["defs"]
            ],
            n_tuples=1, routed_tuples=1, n_batches=1, elapsed_s=0.1,
        )

    monkeypatch.setattr(
        "repro.harness.measure_service_throughput",
        fake_measure_service_throughput,
    )
    rc = main(
        [
            "serve", "M1", "M2", "--workload", "micro",
            "--backends", "async:rivm-batch,rivm-single",
            "--max-batch", "64",
        ]
    )
    assert rc == 0
    first, second = seen["defs"]
    assert first.backend == "async:rivm-batch"
    assert first.options["max_batch"] == 64
    assert second.backend == "rivm-single"
    assert "max_batch" not in second.options


def test_serve_async_end_to_end(capsys):
    rc = main(
        [
            "serve", "M1", "M2", "--workload", "micro", "--async",
            "--max-batch", "25", "--batch-size", "30",
            "--sf", "0.002", "--max-batches", "8",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "async:rivm-batch" in out
    assert "serving 2 views over one stream" in out


def test_distributed_plan(capsys):
    assert main(["distributed", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "BLOCK" in out
    assert "distributed program" in out


def test_distributed_sweep(capsys):
    rc = main(
        [
            "distributed", "Q6", "--workers", "2,4",
            "--tuples-per-worker", "30", "--sf", "0.0005",
            "--max-batches", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_advise(capsys):
    assert main(["advise", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "default" in out
    assert "driver-only" in out


def test_unknown_query_exits():
    with pytest.raises(SystemExit):
        main(["compile", "NOPE"])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
