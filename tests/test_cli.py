"""The command-line interface."""

import pytest

from repro.cli import main


def test_list_queries(capsys):
    assert main(["list-queries"]) == 0
    out = capsys.readouterr().out
    assert "Q3" in out
    assert "tpcds" in out
    assert "M2" in out


def test_compile_workload_query(capsys):
    assert main(["compile", "Q6"]) == 0
    out = capsys.readouterr().out
    assert "ON UPDATE LINEITEM" in out
    assert "materialized views" in out


def test_compile_with_preagg(capsys):
    assert main(["compile", "Q6", "--preagg"]) == 0
    out = capsys.readouterr().out
    assert "_PRE" in out


def test_compile_adhoc_sql(capsys):
    rc = main(
        ["compile", "--sql", "SELECT COUNT(*) FROM R, S WHERE R.b = S.b"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ON UPDATE R" in out
    assert "ON UPDATE S" in out


def test_run_reports_throughput(capsys):
    rc = main(
        [
            "run", "Q6", "--batch-size", "50", "--sf", "0.0002",
            "--max-batches", "4",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "tuples/s" in out
    assert "rivm-batch" in out


def test_run_single_tuple_mode(capsys):
    rc = main(
        [
            "run", "Q6", "--backend", "rivm-single", "--batch-size", "0",
            "--sf", "0.0002", "--max-batches", "3",
        ]
    )
    assert rc == 0
    assert "Single" in capsys.readouterr().out


def test_run_strategy_is_deprecated_alias(capsys):
    with pytest.warns(DeprecationWarning, match="--backend"):
        rc = main(
            [
                "run", "Q6", "--strategy", "reeval", "--batch-size", "50",
                "--sf", "0.0002", "--max-batches", "2",
            ]
        )
    assert rc == 0
    captured = capsys.readouterr()
    assert "reeval" in captured.out          # the alias still selects
    assert "deprecated" in captured.err      # and warns loudly


def test_run_unknown_backend_exits():
    with pytest.raises(SystemExit, match="unknown backend"):
        main(["run", "Q6", "--backend", "warp-drive"])


def test_serve_hosts_multiple_views(capsys):
    rc = main(
        [
            "serve", "Q6", "M2",
            "--sql", "RS=SELECT COUNT(*) FROM R, S WHERE R.b = S.b",
            "--backends", "rivm-batch,reeval",
            "--batch-size", "30", "--workload", "micro",
            "--sf", "0.002", "--max-batches", "8",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "serving 3 views over one stream" in captured.out
    assert "RS" in captured.out
    assert "tuples/s routed" in captured.out
    # Q6 streams LINEITEM, which the micro workload never generates:
    # the run succeeds but warns that the view is starved.
    assert "will stay empty" in captured.err
    assert "'Q6'" in captured.err


def test_serve_requires_a_view():
    with pytest.raises(SystemExit, match="at least one view"):
        main(["serve"])


def test_serve_rejects_malformed_sql_option():
    with pytest.raises(SystemExit, match="NAME=SELECT"):
        main(["serve", "--sql", "no-equals-sign"])


def test_serve_rejects_unknown_backend():
    with pytest.raises(SystemExit, match="unknown backend"):
        main(["serve", "Q6", "--backends", "warp-drive"])


def test_serve_rejects_empty_backend_list():
    with pytest.raises(SystemExit, match="at least one backend"):
        main(["serve", "Q6", "--backends", ","])


def test_serve_rejects_duplicate_view_names():
    with pytest.raises(SystemExit, match="duplicate view name"):
        main(["serve", "Q6", "Q6"])


def test_serve_prefers_requested_workload_for_colliding_names(capsys):
    """Q3 exists in both TPC-H and TPC-DS; --workload tpcds must bind
    the TPC-DS one (whose stream actually feeds it)."""
    rc = main(
        [
            "serve", "Q3", "--workload", "tpcds", "--batch-size", "30",
            "--sf", "0.0005", "--max-batches", "6",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "STORE_SALES" in out          # TPC-DS relations, not LINEITEM
    import re

    n_tuples = int(re.search(r"(\d+) streamed tuples", out).group(1))
    assert n_tuples > 0


def test_distributed_plan(capsys):
    assert main(["distributed", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "BLOCK" in out
    assert "distributed program" in out


def test_distributed_sweep(capsys):
    rc = main(
        [
            "distributed", "Q6", "--workers", "2,4",
            "--tuples-per-worker", "30", "--sf", "0.0005",
            "--max-batches", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "weak scaling" in out


def test_advise(capsys):
    assert main(["advise", "Q3"]) == 0
    out = capsys.readouterr().out
    assert "default" in out
    assert "driver-only" in out


def test_unknown_query_exits():
    with pytest.raises(SystemExit):
        main(["compile", "NOPE"])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
