"""Unit tests for the storage substrate: pools, indexes, columnar."""

import pytest

import random

from repro.ring import GMR
from repro.storage import ColumnarBatch, RecordPool
from repro.storage.columnar import encode_gmr, estimate_gmr_bytes


# ----------------------------------------------------------------------
# RecordPool
# ----------------------------------------------------------------------


def test_pool_upsert_and_get():
    p = RecordPool(("A", "B"))
    p.upsert((1, 10), 2)
    assert p.get((1, 10)) == 2
    assert p.get((9, 9)) == 0
    assert len(p) == 1


def test_pool_upsert_accumulates():
    p = RecordPool(("A",))
    p.upsert((1,), 2)
    p.upsert((1,), 3)
    assert p.get((1,)) == 5
    assert len(p) == 1


def test_pool_cancellation_deletes_record():
    p = RecordPool(("A",))
    p.upsert((1,), 2)
    p.upsert((1,), -2)
    assert len(p) == 0
    assert (1,) not in p
    assert p.free_slots() == 1


def test_pool_zero_insert_is_noop():
    p = RecordPool(("A",))
    p.upsert((1,), 0)
    assert len(p) == 0
    assert p.capacity() == 0


def test_pool_free_list_reuses_slots():
    p = RecordPool(("A",))
    p.upsert((1,), 1)
    p.upsert((2,), 1)
    p.delete((1,))
    cap = p.capacity()
    p.upsert((3,), 1)
    assert p.capacity() == cap  # slot recycled, no growth
    assert p.get((3,)) == 1


def test_pool_delete_missing_returns_false():
    p = RecordPool(("A",))
    assert p.delete((1,)) is False


def test_pool_scan_skips_free_slots():
    p = RecordPool(("A",))
    for i in range(5):
        p.upsert((i,), 1)
    p.delete((2,))
    assert sorted(k for k, _ in p.items()) == [(0,), (1,), (3,), (4,)]


def test_pool_slice_index():
    p = RecordPool(("A", "B"), slice_indexes=(("B",),))
    p.upsert((1, 10), 1)
    p.upsert((2, 10), 2)
    p.upsert((3, 20), 3)
    got = sorted(p.slice(0, (10,)))
    assert got == [((1, 10), 1), ((2, 10), 2)]
    assert list(p.slice(0, (99,))) == []


def test_pool_slice_index_updated_on_delete():
    p = RecordPool(("A", "B"), slice_indexes=(("B",),))
    p.upsert((1, 10), 1)
    p.upsert((2, 10), 1)
    p.upsert((2, 10), -1)  # cancels → record removed from bucket
    assert sorted(p.slice(0, (10,))) == [((1, 10), 1)]


def test_pool_add_slice_index_backfills():
    p = RecordPool(("A", "B"))
    p.upsert((1, 10), 1)
    p.upsert((2, 20), 1)
    idx = p.add_slice_index(("B",))
    assert sorted(p.slice(idx, (20,))) == [((2, 20), 1)]


def test_pool_slice_index_lookup_by_colset():
    p = RecordPool(("A", "B", "C"), slice_indexes=(("B", "C"),))
    assert p.slice_index_for(frozenset({"B", "C"})) == 0
    assert p.slice_index_for(frozenset({"A"})) is None


def test_pool_gmr_interface_compat():
    p = RecordPool(("A", "B"))
    p.add_inplace(GMR({(1, 10): 2, (2, 20): 3}))
    assert p.data == {(1, 10): 2, (2, 20): 3}
    assert not p.is_zero()
    g = p.project([1])
    assert g.get((10,)) == 2
    e = p.exists()
    assert e.get((2, 20)) == 1


def test_pool_replace_contents():
    p = RecordPool(("A",))
    p.upsert((1,), 1)
    p.replace_contents(GMR({(5,): 7}))
    assert p.data == {(5,): 7}


def test_pool_tracer_receives_addresses():
    trace = []
    p = RecordPool(("A",), tracer=lambda addr, size: trace.append((addr, size)))
    p.upsert((1,), 1)
    p.get((1,))
    assert len(trace) == 2
    assert trace[0] == trace[1]  # same record → same address
    assert trace[0][1] == p.record_bytes


def test_pool_addresses_disjoint_across_pools():
    p1 = RecordPool(("A",))
    p2 = RecordPool(("A",))
    assert p1.base_address != p2.base_address


# ----------------------------------------------------------------------
# ColumnarBatch
# ----------------------------------------------------------------------


def test_columnar_roundtrip():
    g = GMR({(1, "x"): 2, (2, "y"): -1})
    b = ColumnarBatch.from_gmr(g, ("A", "B"))
    assert len(b) == 2
    assert b.to_gmr() == g


def test_columnar_from_rows():
    b = ColumnarBatch.from_rows([(1, 2), (1, 2), (3, 4)], ("A", "B"))
    g = b.to_gmr()
    assert g.get((1, 2)) == 2
    assert g.get((3, 4)) == 1


def test_columnar_filter_column():
    b = ColumnarBatch.from_rows([(1, 5), (2, 10), (3, 15)], ("A", "B"))
    f = b.filter_column("B", lambda v: v > 6)
    assert f.to_gmr() == GMR({(2, 10): 1, (3, 15): 1})


def test_columnar_project_keeps_duplicates():
    b = ColumnarBatch.from_rows([(1, 5), (2, 5)], ("A", "B"))
    p = b.project(("B",))
    assert len(p) == 2  # not merged


def test_columnar_aggregate_merges_and_cancels():
    b = ColumnarBatch(("A", "B"))
    b.append((1, 5), 1)
    b.append((2, 5), 1)
    b.append((3, 6), 1)
    b.append((3, 6), -1)
    a = b.aggregate(("B",))
    assert a.to_gmr() == GMR({(5,): 2})


def test_columnar_serialized_bytes_is_actual_wire_size():
    """serialized_bytes == the byte length of the real encoding."""
    b = ColumnarBatch.from_rows([(1, "abc"), (2, "defg")], ("A", "B"))
    wire = encode_gmr(b.to_gmr()).to_bytes()
    assert b.serialized_bytes() == len(wire)


def test_estimate_gmr_bytes_is_actual_wire_size():
    """The estimate the coordinator's cost model trusts is measured,
    not approximated: it equals len() of the encoding that actually
    crosses the process boundary."""
    cases = [
        GMR(),
        GMR({(1, "ab"): 1}),
        GMR({(i, f"s{i}", i * 1.5): (-1) ** i for i in range(50)}),
        GMR({(10**30, "overflow"): 2}),  # pickled-column fallback
        GMR({(1, 2): 1, (3, 4, 5): 1}),  # ragged -> pickled pairs
    ]
    for g in cases:
        assert estimate_gmr_bytes(g) == len(encode_gmr(g).to_bytes())


def test_estimate_tracks_string_payload_growth():
    small = GMR({(1, "x"): 1})
    big = GMR({(1, "x" * 500): 1})
    assert (
        estimate_gmr_bytes(big) - estimate_gmr_bytes(small) >= 499
    )


def test_columnar_column_access():
    b = ColumnarBatch.from_rows([(1, 5), (2, 6)], ("A", "B"))
    assert b.column("B") == [5, 6]
    with pytest.raises(ValueError):
        b.column("Z")


# ----------------------------------------------------------------------
# Round-trip fidelity (the shm codec builds on this path)
# ----------------------------------------------------------------------


def _random_gmr(rng: random.Random, width: int, n: int) -> GMR:
    """A randomized GMR with mixed-type columns and negative
    multiplicities (deletion batches)."""
    value_makers = [
        lambda: rng.randrange(-(10**6), 10**6),
        lambda: rng.random() * 1e4 - 5e3,
        lambda: "".join(
            rng.choice("abcdefgh αβγ😀") for _ in range(rng.randrange(0, 9))
        ),
        # A column mixing ints, floats, and strings in the same position
        # (forces the codec's pickled-column fallback).
        lambda: rng.choice(
            [rng.randrange(100), rng.random(), f"m{rng.randrange(10)}"]
        ),
    ]
    makers = [rng.choice(value_makers) for _ in range(width)]
    g = GMR()
    for _ in range(n):
        key = tuple(m() for m in makers)
        mult = rng.choice([-3, -1, 1, 2, 7])
        g.add_tuple(key, mult)
    return g


@pytest.mark.parametrize("seed", range(8))
def test_columnar_batch_roundtrip_property(seed):
    """from_gmr -> to_gmr is the identity over randomized GMRs,
    including deletions, empty batches, and mixed-type columns."""
    rng = random.Random(seed)
    width = rng.randrange(1, 5)
    n = rng.randrange(0, 60)
    g = _random_gmr(rng, width, n)
    cols = tuple(f"C{i}" for i in range(width))
    assert ColumnarBatch.from_gmr(g, cols).to_gmr() == g


def test_columnar_batch_roundtrip_empty_and_degenerate():
    assert ColumnarBatch.from_gmr(GMR(), ("A",)).to_gmr() == GMR()
    g = GMR({(1,): -2})  # pure deletion
    assert ColumnarBatch.from_gmr(g, ("A",)).to_gmr() == g


@pytest.mark.parametrize("seed", range(8))
def test_wire_codec_roundtrip_property(seed):
    """encode_gmr -> decode_gmr is the identity over the same space."""
    from repro.storage.columnar import decode_gmr

    rng = random.Random(seed + 100)
    g = _random_gmr(rng, rng.randrange(1, 5), rng.randrange(0, 60))
    assert decode_gmr(encode_gmr(g).to_bytes()) == g
