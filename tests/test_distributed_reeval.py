"""The distributed re-evaluation baseline (Spark SQL comparator)."""

import pytest

from repro.baselines import (
    compile_distributed_reeval,
    compile_reeval_program,
)
from repro.distributed import SimulatedCluster
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import TPCH_QUERIES


def test_reeval_program_structure():
    spec = TPCH_QUERIES["Q3"]
    program = compile_reeval_program(
        spec.query, "Q3", updatable=spec.updatable
    )
    # One trigger per updatable relation, each: merge batch, re-evaluate.
    assert set(program.triggers) == set(spec.updatable)
    for trig in program.triggers.values():
        assert len(trig.statements) == 2
        merge, reeval = trig.statements
        assert merge.op == "+=" and merge.target == trig.relation
        assert reeval.op == ":=" and reeval.target == program.top_view


def test_reeval_program_views_cover_base_relations():
    spec = TPCH_QUERIES["Q3"]
    program = compile_reeval_program(
        spec.query, "Q3", updatable=spec.updatable
    )
    for rel_name in program.base_relations:
        assert rel_name in program.views


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q6", "Q12"])
def test_distributed_reeval_matches_reference(name):
    spec = TPCH_QUERIES[name]
    prepared = prepare_stream(spec, 40, sf=0.0002, max_batches=5)
    dprog = compile_distributed_reeval(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=3)
    _preload_static(cluster, prepared, dprog)

    reference = prepared.fresh_static()
    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert cluster.snapshot() == evaluate(spec.query, reference), name


def test_distributed_reeval_cost_grows_with_accumulated_state():
    """Re-evaluation latency rises as the base tables accumulate — the
    cost structure that separates it from incremental maintenance."""
    spec = TPCH_QUERIES["Q6"]
    prepared = prepare_stream(spec, 60, sf=0.001, max_batches=10)
    dprog = compile_distributed_reeval(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=2)
    _preload_static(cluster, prepared, dprog)
    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)
    lat = cluster.metrics.latencies_s
    # Later batches see a larger LINEITEM, so the recompute costs more.
    assert lat[-1] > lat[0]


def test_distributed_reeval_slower_than_incremental():
    from repro.distributed import compile_distributed

    spec = TPCH_QUERIES["Q3"]
    prepared = prepare_stream(spec, 100, sf=0.001, max_batches=4)

    reeval_prog = compile_distributed_reeval(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    reeval = SimulatedCluster(reeval_prog, n_workers=4)
    _preload_static(reeval, prepared, reeval_prog)

    ivm_prog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    ivm = SimulatedCluster(ivm_prog, n_workers=4)
    _preload_static(ivm, prepared, ivm_prog)

    for relation, batch in prepared.batches:
        reeval.on_batch(relation, batch)
        ivm.on_batch(relation, batch)

    assert (
        reeval.metrics.total_latency_s > ivm.metrics.total_latency_s
    ), "re-evaluation should cost more than incremental maintenance"
