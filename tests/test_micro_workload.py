"""The micro workload: generators, specs, and end-to-end maintenance."""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine
from repro.workloads import (
    MICRO_BASE_CARDINALITIES,
    MICRO_QUERIES,
    MICRO_TABLES,
    generate_micro,
    stream_batches,
)


def test_generator_is_deterministic():
    a = generate_micro(sf=0.1, seed=5)
    b = generate_micro(sf=0.1, seed=5)
    assert a == b


def test_generator_seed_changes_data():
    a = generate_micro(sf=0.1, seed=5)
    b = generate_micro(sf=0.1, seed=6)
    assert a != b


def test_generator_respects_schema():
    tables = generate_micro(sf=0.05)
    assert set(tables) == set(MICRO_TABLES)
    for name, rows in tables.items():
        width = len(MICRO_TABLES[name])
        assert all(len(r) == width for r in rows)


def test_cardinalities_scale_with_sf():
    small = generate_micro(sf=0.1)
    large = generate_micro(sf=0.5)
    for name in MICRO_BASE_CARDINALITIES:
        assert len(large[name]) > len(small[name])


def test_txns_reference_existing_accounts():
    tables = generate_micro(sf=0.2)
    accounts = {a for a, _ in tables["ACCOUNTS"]}
    assert all(acct in accounts for acct, _ in tables["TXNS"])


@pytest.mark.parametrize("name", sorted(MICRO_QUERIES))
def test_micro_maintenance_matches_reevaluation(name):
    """Every micro query is maintainable end to end."""
    spec = MICRO_QUERIES[name]
    tables = generate_micro(sf=0.05, seed=9)

    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    program = apply_batch_preaggregation(program)
    engine = RecursiveIVMEngine(program, mode="batch")

    static = Database()
    for tname, rows in tables.items():
        if tname not in spec.updatable:
            static.insert_rows(tname, rows)
    engine.initialize(static.copy())

    reference = static.copy()
    for relation, batch in stream_batches(
        tables, 40, relations=spec.updatable
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference), name


@pytest.mark.parametrize("name", ["M1", "M2"])
def test_micro_single_tuple_mode(name):
    spec = MICRO_QUERIES[name]
    tables = generate_micro(sf=0.02, seed=10)

    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    engine = RecursiveIVMEngine(program, mode="single")

    static = Database()
    for tname, rows in tables.items():
        if tname not in spec.updatable:
            static.insert_rows(tname, rows)
    engine.initialize(static.copy())

    reference = static.copy()
    for relation, batch in stream_batches(
        tables, 15, relations=spec.updatable
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference), name


def test_m4_compiles_to_reevaluation_statement():
    """M4's uncorrelated nested aggregate triggers the Section 3.2.3
    re-evaluation decision for updates to TXNS."""
    spec = MICRO_QUERIES["M4"]
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    trig = program.triggers["TXNS"]
    ops = {s.op for s in trig.statements if s.target == program.top_view}
    assert ":=" in ops, "expected a re-evaluation statement for the top view"


def test_m2_compiles_to_incremental_statements():
    """M2's equality-correlated nested aggregate is maintained
    incrementally (domain binds the correlated variable)."""
    spec = MICRO_QUERIES["M2"]
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    trig = program.triggers["TXNS"]
    ops = {s.op for s in trig.statements if s.target == program.top_view}
    assert ops == {"+="}
