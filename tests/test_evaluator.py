"""Unit tests for the reference evaluator."""

import pytest

from repro.eval import Database, evaluate
from repro.query import (
    assign,
    cmp,
    const,
    delta,
    exists,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.builder import mul, sub
from repro.ring import GMR


@pytest.fixture
def db():
    d = Database()
    d.insert_rows("R", [(1, 10), (2, 10), (3, 20)])
    d.insert_rows("S", [(10, "x"), (10, "y"), (20, "z")])
    d.insert_rows("T", [("x", 5), ("y", 6)])
    return d


def test_eval_rel(db):
    g = evaluate(rel("R", "A", "B"), db)
    assert g.get((1, 10)) == 1
    assert len(g) == 3


def test_eval_unknown_rel_is_empty(db):
    assert evaluate(rel("NOPE", "A"), db).is_zero()


def test_eval_rel_with_env_filter(db):
    g = evaluate(rel("R", "A", "B"), db, env={"B": 10})
    assert len(g) == 2


def test_eval_delta_rel(db):
    db.set_delta("R", GMR({(9, 10): 1, (1, 10): -1}))
    g = evaluate(delta("R", "A", "B"), db)
    assert g.get((9, 10)) == 1
    assert g.get((1, 10)) == -1


def test_eval_const(db):
    assert evaluate(const(3), db).get(()) == 3
    assert evaluate(const(0), db).is_zero()


def test_eval_value_term(db):
    assert evaluate(value(mul("A", 2)), db, env={"A": 4}).get(()) == 8
    assert evaluate(value(sub("A", "A")), db, env={"A": 4}).is_zero()


def test_eval_cmp(db):
    assert evaluate(cmp("A", "<", 5), db, env={"A": 3}).get(()) == 1
    assert evaluate(cmp("A", ">=", 5), db, env={"A": 3}).is_zero()
    assert evaluate(cmp("A", "!=", 3), db, env={"A": 3}).is_zero()
    assert evaluate(cmp("A", "==", 3), db, env={"A": 3}).get(()) == 1


def test_eval_join_two_way(db):
    q = join(rel("R", "A", "B"), rel("S", "B", "C"))
    g = evaluate(q, db)
    # B=10 pairs: (1,10)x{x,y}, (2,10)x{x,y}; B=20: (3,20)x{z}.
    assert len(g) == 5
    assert g.get((1, 10, "x")) == 1


def test_eval_join_multiplicities_multiply(db):
    db.set_view("U", GMR({(10,): 2}))
    db.set_view("V", GMR({(10,): 3}))
    q = join(rel("U", "B"), rel("V", "B"))
    assert evaluate(q, db).get((10,)) == 6


def test_eval_join_with_filter(db):
    q = join(rel("R", "A", "B"), cmp("A", ">", 1))
    assert len(evaluate(q, db)) == 2


def test_eval_join_value_scales_multiplicity(db):
    q = sum_over([], join(rel("R", "A", "B"), value("A")))
    # SUM(A) over R = 1 + 2 + 3.
    assert evaluate(q, db).get(()) == 6


def test_eval_example_2_1(db):
    """The running example: count of R ⋈ S ⋈ T grouped by B."""
    q = sum_over(
        ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
    )
    g = evaluate(q, db)
    assert g == GMR({(10,): 4})


def test_eval_sum_group_by(db):
    q = sum_over(["B"], rel("R", "A", "B"))
    g = evaluate(q, db)
    assert g.get((10,)) == 2
    assert g.get((20,)) == 1


def test_eval_sum_scalar(db):
    q = sum_over([], rel("R", "A", "B"))
    assert evaluate(q, db).get(()) == 3


def test_eval_sum_group_by_bound_from_env(db):
    q = sum_over(["Z"], rel("R", "A", "B"))
    g = evaluate(q, db, env={"Z": 99})
    assert g.get((99,)) == 3


def test_eval_sum_unbound_group_by_raises(db):
    q = sum_over(["Z"], rel("R", "A", "B"))
    with pytest.raises(ValueError):
        evaluate(q, db)


def test_eval_union(db):
    q = union(rel("R", "A", "B"), rel("R", "A", "B"))
    g = evaluate(q, db)
    assert g.get((1, 10)) == 2


def test_eval_union_reorders_columns(db):
    db.insert_rows("R2", [(10, 1)])
    q = union(rel("R", "A", "B"), rel("R2", "B", "A"))
    g = evaluate(q, db)
    assert g.get((1, 10)) == 2  # (A=1,B=10) from both parts


def test_eval_union_cancellation(db):
    from repro.query import neg

    q = union(rel("R", "A", "B"), neg(rel("R", "A", "B")))
    assert evaluate(q, db).is_zero()


def test_eval_assign_value(db):
    q = assign("X", 7)
    assert evaluate(q, db).get((7,)) == 1


def test_eval_assign_value_conflicting_binding(db):
    q = assign("X", 7)
    assert evaluate(q, db, env={"X": 8}).is_zero()
    assert evaluate(q, db, env={"X": 7}).get((7,)) == 1


def test_eval_assign_scalar_query_counts_zero(db):
    """Scalar-context aggregates emit 0 (SQL COUNT semantics)."""
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    q = assign("X", qn)
    g = evaluate(q, db, env={"B": 999})  # no S tuples match
    assert g.get((0,)) == 1


def test_eval_nested_aggregate_example_3_1(db):
    """COUNT(*) FROM R WHERE R.A < (COUNT(*) FROM S WHERE R.B=S.B)."""
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    q = sum_over([], join(rel("R", "A", "B"), assign("X", qn), cmp("A", "<", "X")))
    # (1,10): X=2, 1<2 ok; (2,10): X=2, no; (3,20): X=1, no.
    assert evaluate(q, db).get(()) == 1


def test_eval_exists_distinct(db):
    """SELECT DISTINCT A FROM R WHERE B > 3 (Example 3.2)."""
    q = exists(sum_over(["A"], join(rel("R", "A", "B"), cmp("B", ">", 3))))
    g = evaluate(q, db)
    assert g == GMR({(1,): 1, (2,): 1, (3,): 1})


def test_eval_exists_as_condition(db):
    """EXISTS-style condition via (X := Qn) ⋈ (X != 0)."""
    qn = sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))
    q = sum_over(
        [], join(rel("R", "A", "B"), assign("X", qn), cmp("X", "!=", 0))
    )
    assert evaluate(q, db).get(()) == 3  # every R tuple has a matching S


def test_eval_assign_nonscalar_query(db):
    """Assign over a grouped subquery extends tuples by the aggregate."""
    q = assign("X", sum_over(["B"], rel("R", "A", "B")))
    g = evaluate(q, db)
    assert g.get((10, 2)) == 1
    assert g.get((20, 1)) == 1


def test_eval_join_uncorrelated_subquery_memoized(db):
    """An uncorrelated nested aggregate joins as a cartesian factor."""
    qn = sum_over([], rel("S", "B2", "C"))  # = 3, uncorrelated
    q = sum_over([], join(rel("R", "A", "B"), assign("X", qn), cmp("A", "<", "X")))
    # X=3 for all: A in {1,2} qualify.
    assert evaluate(q, db).get(()) == 2


def test_eval_negative_multiplicities_flow_through_join(db):
    db.set_delta("R", GMR({(1, 10): -1}))
    q = sum_over(["B"], join(delta("R", "A", "B"), rel("S", "B", "C")))
    assert evaluate(q, db).get((10,)) == -2


def test_eval_join_respects_shared_column_consistency(db):
    # Self-join through a shared column must not cross-pair tuples.
    q = join(rel("R", "A", "B"), rel("R", "A", "B2"))
    g = evaluate(q, db)
    # Every R tuple matches only itself on A.
    assert all(t[1] == t[2] for t in g)
    assert len(g) == 3
