"""Cross-view sharing: the service-wide shared-subplan DAG.

The acceptance bar (the sharing analogue of the service layer's):
a service with ``sharing=True`` must be **observationally identical**
to one with ``sharing=False`` — same snapshots, same accumulated
subscription deltas, per view, over arbitrary insert+delete streams —
while running strictly fewer maintenance programs when views overlap.
Sharing is an execution strategy, never a semantics change.
"""

import random

import pytest

from repro.eval import Database, evaluate
from repro.exec import available_backends
from repro.query.sqlfront import parse_sql
from repro.ring import GMR
from repro.service import NODE_PREFIX, ServiceError, ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

#: one equi-join+aggregate query in deliberately different spellings
#: (aliases, FROM order) — all must factor onto one shared node
SPELLINGS = [
    "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.a",
    "SELECT x.a, COUNT(*) FROM R x, S y WHERE x.b = y.b GROUP BY x.a",
    "SELECT u.a, COUNT(*) FROM S v, R u WHERE u.b = v.b GROUP BY u.a",
]
#: a second distinct shape over the same tables (different group key)
SQL_PER_B = "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
#: and a single-table shape
SQL_CNT_A = "SELECT a, COUNT(*) FROM R GROUP BY a"

STREAM = [
    ("R", {(1, 10): 1, (2, 20): 1, (3, 10): 1}),
    ("S", {(10, 5): 1, (20, 6): 2}),
    ("T", {(1, 4): 1, (2, 9): 1}),
    ("R", {(1, 10): -1, (4, 20): 1}),
    ("S", {(20, 6): -1, (10, 7): 1}),
    ("R", {(3, 10): -1, (2, 20): -1}),
]


def _stream(service, stream=STREAM):
    for relation, data in stream:
        service.on_batch(relation, GMR(dict(data)))


def _random_stream(seed: int, n_batches: int = 14):
    """A seeded insert+delete stream over R/S/T: deletes only remove
    live tuples, so multiplicities stay meaningful bags."""
    rng = random.Random(seed)
    live = {"R": [], "S": [], "T": []}
    domains = {
        "R": lambda: (rng.randint(1, 5), rng.randint(10, 30)),
        "S": lambda: (rng.randint(10, 30), rng.randint(1, 6)),
        "T": lambda: (rng.randint(1, 5), rng.randint(1, 9)),
    }
    out = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        batch: dict = {}
        for _ in range(rng.randint(1, 4)):
            if live[relation] and rng.random() < 0.35:
                t = rng.choice(live[relation])
                live[relation].remove(t)
                batch[t] = batch.get(t, 0) - 1
            else:
                t = domains[relation]()
                live[relation].append(t)
                batch[t] = batch.get(t, 0) + 1
        batch = {t: m for t, m in batch.items() if m != 0}
        if batch:
            out.append((relation, batch))
    return out


def _make_views(service, backend, names_and_sql):
    accs = {}
    for name, sql in names_and_sql:
        service.create_view(name, sql, backend=backend)
        acc = GMR()
        service.subscribe(
            name, lambda event, acc=acc: acc.add_inplace(event.delta)
        )
        accs[name] = acc
    return accs


# ----------------------------------------------------------------------
# The differential property: sharing on == sharing off, everywhere
# ----------------------------------------------------------------------

ALL_BACKENDS = list(available_backends()) + ["async:rivm-batch"]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_sharing_matches_unshared_on_every_backend(backend):
    """Overlapping views on one backend, randomized insert+delete
    stream: snapshots and accumulated deltas must be identical with
    sharing on and off, and the shared run must actually share."""
    defs = [
        ("v0", SPELLINGS[0]),
        ("v1", SPELLINGS[1]),
        ("v2", SPELLINGS[2]),
        ("per_b", SQL_PER_B),
    ]
    stream = _random_stream(
        seed=sum(ord(c) for c in backend), n_batches=12
    )

    shared = ViewService(catalog=CATALOG, sharing=True)
    unshared = ViewService(catalog=CATALOG, sharing=False)
    try:
        shared_accs = _make_views(shared, backend, defs)
        _make_views(unshared, backend, defs)
        assert shared.maintenance_programs() < len(defs) + 1
        for relation, data in stream:
            shared.on_batch(relation, GMR(dict(data)))
            unshared.on_batch(relation, GMR(dict(data)))
        shared.drain()
        unshared.drain()
        for name, _ in defs:
            snap_shared = shared.snapshot(name)
            snap_unshared = unshared.snapshot(name)
            assert snap_shared == snap_unshared, name
            assert shared_accs[name] == snap_shared, name
    finally:
        for name, _ in defs:
            for svc in (shared, unshared):
                try:
                    svc.drop_view(name)
                except ServiceError:
                    pass


def test_mixed_backends_share_one_node():
    """The node serves consumers on *different* engines: the changefeed
    contract is backend-agnostic."""
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("v_batch", SPELLINGS[0], backend="rivm-batch")
    service.create_view("v_reeval", SPELLINGS[1], backend="reeval")
    service.create_view("v_civm", SPELLINGS[2], backend="civm")
    dump = service.dag_dump()
    assert len(dump["nodes"]) == 1
    assert dump["nodes"][0]["refcount"] == 3
    assert service.maintenance_programs() == 1
    _stream(service)
    reference = ViewService(catalog=CATALOG, sharing=False)
    reference.create_view("ref", SPELLINGS[0])
    _stream(reference)
    expected = reference.snapshot("ref")
    for name in ("v_batch", "v_reeval", "v_civm"):
        assert service.snapshot(name) == expected


# ----------------------------------------------------------------------
# Lifecycle: refcounts, promotion, teardown
# ----------------------------------------------------------------------


def test_refcounted_teardown_across_drop_churn():
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("v0", SPELLINGS[0])
    service.create_view("v1", SPELLINGS[1])
    _stream(service)
    assert len(service.dag_dump()["nodes"]) == 1

    service.drop_view("v0")
    dump = service.dag_dump()
    assert len(dump["nodes"]) == 1  # v1 still consumes it
    assert dump["nodes"][0]["refcount"] == 1

    service.drop_view("v1")
    assert service.dag_dump()["nodes"] == []  # last consumer freed it

    # Churn: the DAG grows back on demand, correctly initialized from
    # the base data streamed so far.
    service.create_view("v2", SPELLINGS[2])
    service.create_view("v3", SPELLINGS[0])
    assert len(service.dag_dump()["nodes"]) == 1
    reference = ViewService(catalog=CATALOG, sharing=False)
    reference.create_view("ref", SPELLINGS[0])
    _stream(reference)
    assert service.snapshot("v2") == reference.snapshot("ref")


def test_promotion_of_a_live_view_into_a_node():
    """A view created first (alone, unshared) is promoted when a second
    view spells the same query: its live engine becomes the node."""
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("first", SPELLINGS[0], backend="reeval")
    _stream(service)  # the view is live and mid-stream before sharing
    assert service.dag_dump()["nodes"] == []

    service.create_view("second", SPELLINGS[1])
    dump = service.dag_dump()
    assert len(dump["nodes"]) == 1
    assert dump["nodes"][0]["refcount"] == 2
    assert sorted(dump["nodes"][0]["consumers"]) == ["first", "second"]
    # the promoted view's engine was reused, not rebuilt
    assert dump["nodes"][0]["backend"] == "reeval"
    assert service.view("first").backend_name == "reeval"

    service.on_batch("R", GMR({(9, 10): 1}))
    service.on_batch("S", GMR({(10, 1): 1}))
    reference = ViewService(catalog=CATALOG, sharing=False)
    reference.create_view("ref", SPELLINGS[0])
    _stream(reference)
    reference.on_batch("R", GMR({(9, 10): 1}))
    reference.on_batch("S", GMR({(10, 1): 1}))
    expected = reference.snapshot("ref")
    assert service.snapshot("first") == expected
    assert service.snapshot("second") == expected


def test_internal_node_names_are_hidden_and_reserved():
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("v0", SPELLINGS[0])
    service.create_view("v1", SPELLINGS[1])
    assert service.views() == ("v0", "v1")  # nodes never listed
    with pytest.raises(ServiceError):
        service.create_view(f"{NODE_PREFIX}mine", SQL_CNT_A)


def test_fan_in_gauge_counts_direct_and_consumed_inputs():
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("v0", SPELLINGS[0])
    service.create_view("v1", SPELLINGS[1])
    handle = service.view("v1")
    assert len(handle.route_rels) + len(handle.consumes) == 1
    expo = service.registry.render()
    assert 'repro_view_fan_in{view="v1"} 1' in expo
    assert "repro_service_shared_subviews 1" in expo


# ----------------------------------------------------------------------
# drop_view exception safety (regression: half-registered teardown)
# ----------------------------------------------------------------------


def test_drop_view_cleans_up_when_backend_close_raises():
    """A backend whose close() raises must not leave the service
    half-registered: the view is gone, its subscriptions are dead, its
    shared-node edges are released, and the name is reusable."""
    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("keeper", SPELLINGS[0])
    service.create_view("doomed", SPELLINGS[1], backend="async:rivm-batch")
    _stream(service)
    service.drain()
    events = []
    sub = service.subscribe("doomed", events.append)

    handle = service.view("doomed")
    original_close = handle.backend.close

    def exploding_close():
        original_close()
        raise RuntimeError("boom on close")

    handle.backend.close = exploding_close
    with pytest.raises(RuntimeError, match="boom on close"):
        service.drop_view("doomed")

    assert "doomed" not in service.views()
    assert not sub.active
    dump = service.dag_dump()
    assert dump["nodes"][0]["refcount"] == 1  # edge released
    # the name is immediately reusable (metrics scope was closed too)
    service.create_view("doomed", SPELLINGS[1])
    assert service.dag_dump()["nodes"][0]["refcount"] == 2
    n_events = len(events)
    service.on_batch("R", GMR({(8, 10): 1}))
    assert len(events) == n_events  # old subscription stays dead


# ----------------------------------------------------------------------
# The DAG over HTTP
# ----------------------------------------------------------------------


def test_dag_dump_over_http():
    """``GET /views?dag=1`` exposes nodes, consumers, and per-view
    routing; the plain listing is unchanged and never shows nodes."""
    import http.client
    import json

    from repro.net import ViewServer

    service = ViewService(catalog=CATALOG, sharing=True)
    service.create_view("v0", SPELLINGS[0])
    service.create_view("v1", SPELLINGS[1])
    with ViewServer(service) as server:
        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request("GET", "/views")
        plain = json.loads(conn.getresponse().read())
        assert sorted(plain) == ["v0", "v1"]

        conn.request("GET", "/views?dag=1")
        body = json.loads(conn.getresponse().read())
        assert sorted(body["views"]) == ["v0", "v1"]
        dag = body["dag"]
        assert dag["sharing"] is True
        assert dag["maintenance_programs"] == 1
        (node,) = dag["nodes"]
        assert node["name"].startswith(NODE_PREFIX)
        assert sorted(node["consumers"]) == ["v0", "v1"]
        assert node["refcount"] == 2
        assert dag["views"]["v1"]["shared"] is True
        assert dag["views"]["v1"]["consumes"] == [node["name"]]


# ----------------------------------------------------------------------
# Durability composition
# ----------------------------------------------------------------------


def test_durable_recovery_rebuilds_the_dag(tmp_path):
    from repro.durability import DurableViewService

    wal = str(tmp_path / "wal")
    service = DurableViewService(wal, catalog=CATALOG)
    service.create_view("v0", SPELLINGS[0])
    service.create_view("v1", SPELLINGS[1])
    _stream(service)
    expected = service.snapshot("v0")
    assert len(service.dag_dump()["nodes"]) == 1
    service.close()

    recovered = DurableViewService(wal, catalog=CATALOG)
    dump = recovered.dag_dump()
    assert len(dump["nodes"]) == 1
    assert sorted(dump["nodes"][0]["consumers"]) == ["v0", "v1"]
    assert recovered.snapshot("v0") == expected
    assert recovered.snapshot("v1") == expected
    recovered.close()


# ----------------------------------------------------------------------
# Scale smoke (also the CI shared-views step: -k smoke)
# ----------------------------------------------------------------------


def test_smoke_twenty_overlapping_views_share():
    """20 views over ~3 distinct shapes: far fewer maintenance programs
    than views, with every snapshot identical to the unshared run."""
    defs = []
    for i in range(20):
        if i % 4 == 3:
            sql = SQL_PER_B if i % 8 == 3 else SQL_CNT_A
        else:
            sql = SPELLINGS[i % 3]
        defs.append((f"view_{i}", sql))

    shared = ViewService(catalog=CATALOG, sharing=True)
    unshared = ViewService(catalog=CATALOG, sharing=False)
    accs = _make_views(shared, "rivm-batch", defs)
    _make_views(unshared, "rivm-batch", defs)

    assert shared.maintenance_programs() < 20
    assert unshared.maintenance_programs() == 20

    stream = list(STREAM) + _random_stream(seed=7, n_batches=20)
    for relation, data in stream:
        shared.on_batch(relation, GMR(dict(data)))
        unshared.on_batch(relation, GMR(dict(data)))

    for name, _ in defs:
        snap = shared.snapshot(name)
        assert snap == unshared.snapshot(name), name
        assert accs[name] == snap, name
