"""Pickle round-trips for everything the multiproc workers ship.

The process-parallel backend sends query specs and plan descriptions
over pipes and rebuilds compiled pipelines on the far side, so every
spec, expression, distributed program, and partitioning plan must
survive ``pickle`` unchanged — no lambdas or closures anywhere in the
serializable surface.  These are regression tests: a workload helper
that grows a closure breaks the parallel backend at a distance.
"""

from __future__ import annotations

import pickle

import pytest

from repro.compiler import compile_query
from repro.distributed import compile_distributed
from repro.distributed.partitioning import candidate_partitionings
from repro.parallel import WorkerTask, program_fingerprint
from repro.ring import GMR
from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES

ALL_SPECS = [
    (family, name, queries[name])
    for family, queries in (
        ("micro", MICRO_QUERIES),
        ("tpch", TPCH_QUERIES),
        ("tpcds", TPCDS_QUERIES),
    )
    for name in sorted(queries)
]


@pytest.mark.parametrize(
    "family,name,spec", ALL_SPECS, ids=[f"{f}-{n}" for f, n, _ in ALL_SPECS]
)
def test_query_spec_roundtrips(family, name, spec):
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.name == spec.name
    assert clone.query == spec.query  # Exprs are frozen dataclasses
    assert clone.updatable == spec.updatable
    assert clone.key_hints == spec.key_hints


@pytest.mark.parametrize("name", ["M1", "M2", "Q1", "Q3", "Q6"])
def test_distributed_program_roundtrips(name):
    """The whole compiled distributed program (tags, triggers, fused
    blocks) must pickle and keep an identical structure fingerprint —
    the property the worker handshake verifies at startup."""
    spec = (MICRO_QUERIES | TPCH_QUERIES)[name]
    dprog = compile_distributed(
        spec.query,
        name=spec.name,
        key_hints=spec.key_hints,
        updatable=spec.updatable,
    )
    clone = pickle.loads(pickle.dumps(dprog))
    assert clone.describe() == dprog.describe()
    assert program_fingerprint(clone) == program_fingerprint(dprog)
    assert clone.top_view == dprog.top_view


def test_partitioning_candidates_roundtrip():
    spec = MICRO_QUERIES["M1"]
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    for cand in candidate_partitionings(program, spec.key_hints):
        clone = pickle.loads(pickle.dumps(cand))
        assert clone.name == cand.name
        assert clone.tags == cand.tags


def test_worker_task_roundtrips():
    spec = MICRO_QUERIES["M1"]
    task = WorkerTask(
        spec=spec,
        opt_level=3,
        n_workers=4,
        index=2,
        use_compiled=True,
        fingerprint="abc123",
    )
    clone = pickle.loads(pickle.dumps(task))
    assert clone == WorkerTask(
        spec=clone.spec,
        opt_level=3,
        n_workers=4,
        index=2,
        use_compiled=True,
        fingerprint="abc123",
    )
    assert clone.spec.query == spec.query


def test_gmr_roundtrips_including_negative_multiplicities():
    g = GMR({(1, "x"): 2, (3, "y"): -1, (0.5, "z"): 1.25})
    clone = pickle.loads(pickle.dumps(g))
    assert clone == g
    assert clone.data == g.data
