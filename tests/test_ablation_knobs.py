"""The ablation knobs must be semantics-preserving.

``compile_query(use_domain=False)`` and
``SpecializedIVMEngine(enable_indexes=False)`` change only the cost of
maintenance, never the maintained view; ``apply_batch_preaggregation``
must be pure (its input program unchanged).
"""

import pytest

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine, SpecializedIVMEngine
from repro.harness.ablation import (
    domain_extraction_ablation,
    preaggregation_ablation,
    specialization_ablation,
)
from repro.workloads import (
    MICRO_QUERIES,
    TPCH_QUERIES,
    generate_micro,
    generate_tpch,
    stream_batches,
)


def _stream_and_check(spec, tables, engine, batch_size=25):
    static = Database()
    for name, rows in tables.items():
        if name not in spec.updatable:
            static.insert_rows(name, rows)
    engine.initialize(static.copy())
    reference = static.copy()
    for relation, batch in stream_batches(
        tables, batch_size, relations=spec.updatable
    ):
        engine.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert engine.snapshot() == evaluate(spec.query, reference)


@pytest.mark.parametrize("name", ["Q17", "Q22", "Q11"])
def test_use_domain_false_still_correct_tpch(name):
    spec = TPCH_QUERIES[name]
    tables = generate_tpch(sf=0.0001, seed=21)
    program = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=False
    )
    program = apply_batch_preaggregation(program)
    _stream_and_check(spec, tables, RecursiveIVMEngine(program, mode="batch"))


@pytest.mark.parametrize("name", ["M2", "M3"])
def test_use_domain_false_still_correct_micro(name):
    spec = MICRO_QUERIES[name]
    tables = generate_micro(sf=0.03, seed=22)
    program = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=False
    )
    program = apply_batch_preaggregation(program)
    _stream_and_check(spec, tables, RecursiveIVMEngine(program, mode="batch"))


def test_use_domain_changes_compiled_program():
    spec = MICRO_QUERIES["M2"]
    on = compile_query(spec.query, "M2", updatable=spec.updatable)
    off = compile_query(
        spec.query, "M2", updatable=spec.updatable, use_domain=False
    )
    assert on.describe() != off.describe()


@pytest.mark.parametrize("name", ["Q3", "Q10"])
def test_enable_indexes_false_still_correct(name):
    spec = TPCH_QUERIES[name]
    tables = generate_tpch(sf=0.0001, seed=23)
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    program = apply_batch_preaggregation(program)
    engine = SpecializedIVMEngine(
        program, mode="batch", enable_indexes=False
    )
    _stream_and_check(spec, tables, engine)


def test_enable_indexes_false_drops_slice_indexes():
    spec = TPCH_QUERIES["Q3"]
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    program = apply_batch_preaggregation(program)
    with_idx = SpecializedIVMEngine(program)
    without_idx = SpecializedIVMEngine(program, enable_indexes=False)
    n_with = sum(
        len(p.slice_index_columns) for p in with_idx.pools.values()
    )
    n_without = sum(
        len(p.slice_index_columns) for p in without_idx.pools.values()
    )
    assert n_without == 0
    assert n_with > 0


def test_preaggregation_is_pure():
    spec = TPCH_QUERIES["Q3"]
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    before = program.describe()
    out = apply_batch_preaggregation(program)
    assert program.describe() == before
    assert out is not program
    assert out.describe() != before


def test_preaggregation_absorbs_delta_only_values():
    """A ValueF fed solely by the delta and needed by nothing else is
    folded into the pre-aggregation (the Q1 batch-collapse mechanism)."""
    spec = TPCH_QUERIES["Q1"]
    program = apply_batch_preaggregation(
        compile_query(spec.query, spec.name, updatable=spec.updatable)
    )
    trig = program.triggers["LINEITEM"]
    pre = [s for s in trig.statements if s.scope == "batch"]
    assert pre, "expected pre-aggregation statements"
    # The pre-aggregated batch keeps only group-ish columns — far fewer
    # than LINEITEM's 10.
    assert all(len(s.target_cols) < 6 for s in pre)


# ----------------------------------------------------------------------
# Ablation runners: result equality is asserted inside each runner, so
# a plain call doubles as a correctness test.
# ----------------------------------------------------------------------


def test_domain_extraction_ablation_runner():
    r = domain_extraction_ablation(
        MICRO_QUERIES["M2"], batch_size=15, workload="micro",
        sf=0.1, max_batches=4, warm_fraction=0.8,
    )
    assert r.knob == "domain-extraction"
    assert r.on_virtual_instructions > 0
    assert r.off_virtual_instructions > 0


def test_preaggregation_ablation_runner():
    r = preaggregation_ablation(
        TPCH_QUERIES["Q6"], batch_size=50, sf=0.0002, max_batches=4
    )
    assert r.knob == "batch-preaggregation"
    assert r.virtual_speedup > 0


def test_specialization_ablation_runner():
    r = specialization_ablation(
        TPCH_QUERIES["Q3"], batch_size=50, sf=0.0002, max_batches=4
    )
    assert r.knob == "index-specialization"
    assert r.virtual_speedup > 0
