"""Specialized (pool-backed) engine: equivalence + cache tracing."""

import random

import pytest

from repro.compiler import (
    analyze_access_patterns,
    apply_batch_preaggregation,
    compile_query,
)
from repro.eval import Database, evaluate
from repro.exec import RecursiveIVMEngine, SpecializedIVMEngine
from repro.metrics import CacheSimulator
from repro.query import assign, cmp, exists, join, rel, sum_over
from repro.ring import GMR

Q3WAY = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
)

Q_NESTED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("A", "<", "X"),
    ),
)


def _stream(rng, rels, n, size):
    out = []
    for _ in range(n):
        r = rng.choice(rels)
        g = GMR()
        for _ in range(size):
            g.add_tuple((rng.randint(0, 4), rng.randint(0, 4)), 1)
        out.append((r, g))
    return out


@pytest.mark.parametrize("query,rels", [(Q3WAY, ["R", "S", "T"]), (Q_NESTED, ["R", "S"])])
def test_specialized_engine_matches_reference(query, rels):
    rng = random.Random(42)
    stream = _stream(rng, rels, 20, 3)
    program = apply_batch_preaggregation(compile_query(query, "spec"))
    engine = SpecializedIVMEngine(program, mode="batch")
    db = Database()
    for r, batch in stream:
        engine.on_batch(r, batch)
        db.apply_update(r, batch)
        assert engine.snapshot() == evaluate(query, db)


def test_specialized_single_mode_matches_reference():
    rng = random.Random(43)
    stream = _stream(rng, ["R", "S", "T"], 10, 3)
    program = compile_query(Q3WAY, "spec1")
    engine = SpecializedIVMEngine(program, mode="single")
    db = Database()
    for r, batch in stream:
        engine.on_batch(r, batch)
        db.apply_update(r, batch)
        assert engine.snapshot() == evaluate(Q3WAY, db)


def test_specialized_engine_emits_cache_trace():
    sim = CacheSimulator()
    program = apply_batch_preaggregation(compile_query(Q3WAY, "ctrace"))
    engine = SpecializedIVMEngine(program, cache_sim=sim)
    rng = random.Random(44)
    for r, batch in _stream(rng, ["R", "S", "T"], 10, 5):
        engine.on_batch(r, batch)
    rep = engine.cache_report()
    assert rep["l1_refs"] > 0
    assert rep["l1_misses"] > 0
    assert rep["l1_misses"] <= rep["l1_refs"]
    # LLC only sees L1 misses.
    assert rep["llc_refs"] == rep["l1_misses"]


def test_specialized_engine_no_cache_sim_report_empty():
    program = compile_query(Q3WAY, "noc")
    engine = SpecializedIVMEngine(program)
    assert engine.cache_report() == {}


def test_index_selection_creates_slice_indexes():
    """Example 2.3: M_S is sliced by B in the R-trigger, so its pool
    carries a non-unique index over B."""
    program = compile_query(Q3WAY, "idx")
    patterns = analyze_access_patterns(program)
    engine = SpecializedIVMEngine(program)
    # Views used with partially-bound keys must have slice indexes.
    sliced = [
        name
        for name, pat in patterns.items()
        if pat.slices and name in engine.pools
    ]
    assert sliced, "expected at least one sliced view in the 3-way join"
    for name in sliced:
        assert engine.pools[name].slice_index_columns, name


def test_initialize_from_snapshot_pools():
    db = Database()
    db.insert_rows("R", [(1, 10)])
    db.insert_rows("S", [(10, 20)])
    db.insert_rows("T", [(20, 5)])
    program = compile_query(Q3WAY, "warm2")
    engine = SpecializedIVMEngine(program)
    engine.initialize(db)
    assert engine.snapshot() == evaluate(Q3WAY, db)
