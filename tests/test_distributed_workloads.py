"""Distributed maintenance of every workload query.

The decisive integration property for Section 4: for each TPC-H /
TPC-DS / micro query, the compiled distributed program running on the
simulated cluster maintains exactly the view a from-scratch local
evaluation produces — for every optimization level and several worker
counts.
"""

import pytest

from repro.distributed import SimulatedCluster, compile_distributed
from repro.eval import evaluate
from repro.harness.scaling import _preload_static
from repro.harness.setup import prepare_stream
from repro.workloads import MICRO_QUERIES, TPCDS_QUERIES, TPCH_QUERIES


def _run(spec, workload, n_workers=3, opt_level=3, sf=0.0003, batches=4):
    prepared = prepare_stream(
        spec, 40, workload=workload, sf=sf, max_batches=batches
    )
    dprog = compile_distributed(
        spec.query, name=spec.name, key_hints=spec.key_hints,
        opt_level=opt_level, updatable=spec.updatable,
    )
    cluster = SimulatedCluster(dprog, n_workers=n_workers)
    _preload_static(cluster, prepared, dprog)
    reference = prepared.fresh_static()
    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)
        reference.apply_update(relation, batch)
    assert cluster.snapshot() == evaluate(spec.query, reference), spec.name


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_distributed_matches_reference(name):
    _run(TPCH_QUERIES[name], "tpch")


@pytest.mark.parametrize("name", sorted(TPCDS_QUERIES))
def test_tpcds_distributed_matches_reference(name):
    _run(TPCDS_QUERIES[name], "tpcds", sf=0.0005)


@pytest.mark.parametrize("name", sorted(MICRO_QUERIES))
def test_micro_distributed_matches_reference(name):
    _run(MICRO_QUERIES[name], "micro", sf=0.03)


@pytest.mark.parametrize("opt_level", [0, 1, 2, 3])
@pytest.mark.parametrize("name", ["Q3", "Q17", "Q21"])
def test_optimization_levels_preserve_results(name, opt_level):
    """Optimization is performance-only at every level, including for
    the nested-aggregate queries whose correlated subexpressions need
    interior replication."""
    _run(TPCH_QUERIES[name], "tpch", opt_level=opt_level)


@pytest.mark.parametrize("n_workers", [1, 2, 5])
def test_worker_count_does_not_change_results(n_workers):
    _run(TPCH_QUERIES["Q17"], "tpch", n_workers=n_workers)
