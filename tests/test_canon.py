"""Expression canonicalisation (the compiler pass behind cross-view
subplan sharing).

The contract under test: two spellings of the same query — different
aliases, different FROM-clause order — canonicalize to the *same*
hashable key with a usable column bijection, while queries that differ
in tables, literals, or join linkage canonicalize apart.  The miss
direction is allowed (a missed match costs one extra maintenance
program); the false-share direction is not.
"""

import pytest

from repro.compiler import (
    canonicalize,
    fingerprint,
    is_shareable,
    shareable_subtrees,
)
from repro.query.ast import DeltaRel, Exists, Join, Rel, Repart, Sum, Union
from repro.query.builder import cmp, join, rel, sum_over
from repro.query.schema import out_cols, rename_columns
from repro.query.sqlfront import parse_sql

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")}


def _canon_sql(sql: str):
    return canonicalize(parse_sql(sql, CATALOG))


# ----------------------------------------------------------------------
# Collisions: spellings that MUST share
# ----------------------------------------------------------------------


def test_alias_invariance():
    """SQL aliases disappear under canonicalisation."""
    c1, m1 = _canon_sql(
        "SELECT x.a, COUNT(*) FROM R x, S y WHERE x.b = y.b GROUP BY x.a"
    )
    c2, m2 = _canon_sql(
        "SELECT u.a, COUNT(*) FROM R u, S v WHERE u.b = v.b GROUP BY u.a"
    )
    assert c1 == c2
    assert fingerprint(c1) == fingerprint(c2)


def test_join_commutativity():
    """FROM-clause order is operational, not semantic."""
    c1, _ = _canon_sql(
        "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.a"
    )
    c2, _ = _canon_sql(
        "SELECT R.a, COUNT(*) FROM S, R WHERE R.b = S.b GROUP BY R.a"
    )
    assert c1 == c2


def test_algebra_vs_sql_spellings_collide():
    """A hand-built algebra expression and the SQL front's output of
    the same query canonicalize together."""
    expr = sum_over(["a"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    q = parse_sql(
        "SELECT R.a, COUNT(*) FROM S, R WHERE S.b = R.b GROUP BY R.a",
        CATALOG,
    )
    assert canonicalize(expr)[0] == canonicalize(q)[0]


def test_union_commutativity():
    u1 = Union((rel("R", "a", "b"), rel("S", "a", "b")))
    u2 = Union((rel("S", "a", "b"), rel("R", "a", "b")))
    assert canonicalize(u1)[0] == canonicalize(u2)[0]


def test_canonical_form_is_idempotent():
    c1, _ = _canon_sql(
        "SELECT R.a, COUNT(*) FROM S, R WHERE R.b = S.b GROUP BY R.a"
    )
    c2, _ = canonicalize(c1)
    assert c1 == c2


# ----------------------------------------------------------------------
# Separations: queries that MUST NOT share
# ----------------------------------------------------------------------


def test_different_tables_do_not_collide():
    c1, _ = _canon_sql("SELECT a, COUNT(*) FROM R GROUP BY a")
    c2, _ = canonicalize(sum_over(["c"], rel("T", "c", "d")))
    assert c1 != c2


def test_different_literals_do_not_collide():
    c1, _ = _canon_sql(
        "SELECT a, COUNT(*) FROM R WHERE R.b > 10 GROUP BY a"
    )
    c2, _ = _canon_sql(
        "SELECT a, COUNT(*) FROM R WHERE R.b > 20 GROUP BY a"
    )
    assert c1 != c2


def test_different_join_linkage_does_not_collide():
    """Same tables, different equi-join columns: distinct queries."""
    on_b = sum_over(["a"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    cross = sum_over(["a"], join(rel("R", "a", "b"), rel("S", "x", "c")))
    assert canonicalize(on_b)[0] != canonicalize(cross)[0]


def test_different_group_by_does_not_collide():
    c1, _ = _canon_sql(
        "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.a"
    )
    c2, _ = _canon_sql(
        "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
    )
    assert c1 != c2


# ----------------------------------------------------------------------
# The mapping: a bijection that translates between spellings
# ----------------------------------------------------------------------


def test_mapping_is_a_bijection_onto_canonical_names():
    expr = sum_over(["a"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    canon, mapping = canonicalize(expr)
    assert len(set(mapping.values())) == len(mapping)
    assert all(v.startswith("_c") for v in mapping.values())
    assert rename_columns(expr, mapping) is not None  # total over expr


def test_mapping_translates_output_columns_across_spellings():
    """Composing one spelling's mapping with the inverse of the other
    carries output columns between the two — the property the shared
    node relies on to re-key its changefeed for each consumer."""
    e1 = sum_over(["a"], join(rel("R", "a", "b"), rel("S", "b", "c")))
    e2 = sum_over(["x"], join(rel("S", "y", "z"), rel("R", "x", "y")))
    c1, m1 = canonicalize(e1)
    c2, m2 = canonicalize(e2)
    assert c1 == c2
    inv2 = {v: k for k, v in m2.items()}
    translated = [inv2[m1[c]] for c in out_cols(e1)]
    assert translated == list(out_cols(e2))


def test_fingerprint_is_short_stable_hex():
    expr = sum_over(["a"], rel("R", "a", "b"))
    fp = fingerprint(expr)
    assert fp == fingerprint(expr)
    assert len(fp) == 12
    int(fp, 16)  # hex


# ----------------------------------------------------------------------
# Shareability
# ----------------------------------------------------------------------


def test_bare_relation_is_not_shareable():
    assert not is_shareable(rel("R", "a", "b"))


def test_join_and_sum_are_shareable():
    j = join(rel("R", "a", "b"), rel("S", "b", "c"))
    assert is_shareable(j)
    assert is_shareable(sum_over(["a"], j))
    assert is_shareable(Exists(rel("R", "a", "b")))


def test_delta_rel_and_location_transformers_are_not_shareable():
    j = Join((DeltaRel("R", ("a", "b")), Rel("S", ("b", "c"))))
    assert not is_shareable(j)
    assert not is_shareable(
        Sum(("a",), Repart(("a",), rel("R", "a", "b")))
    )


def test_free_variables_make_a_subtree_unshareable():
    """A comparison against a column bound by an enclosing join is not
    self-contained and must not become a standalone node."""
    filtered = join(rel("R", "a", "b"), cmp("b", ">", 0))
    assert is_shareable(filtered)
    # the Cmp alone has a free variable; it never appears standalone
    assert not is_shareable(cmp("b", ">", 0))


def test_shareable_subtrees_outermost_first_and_deduped():
    inner = join(rel("R", "a", "b"), rel("S", "b", "c"))
    outer = sum_over(["a"], inner)
    subs = shareable_subtrees(outer)
    assert subs[0] == outer
    assert inner in subs
    assert len(subs) == len(set(subs))
