"""Trace-structure properties on randomized async streams.

The ISSUE 8 property bar: over a randomized insert+delete stream
ingested into ``async:rivm-batch`` (and a synchronous control view),
the trace rings must satisfy

* **seq coverage** — exactly one ``admission`` span per assigned seq,
  seqs 1..N with no gaps or duplicates;
* **flush partition** — the ``seqs`` lists of a view's ``flush`` spans
  partition exactly the set of seqs routed to that view (coalescing
  merges entries, it never loses or duplicates one);
* **well-nestedness** — every span's parent resolves within its own
  trace (or the span is a root), the parent graph is acyclic, and a
  ``maintain`` span's interval lies inside its owning ``flush``.
"""

import random
import threading

import pytest

from repro.obs import Span
from repro.ring import GMR
from repro.service import ViewService

CATALOG = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "d")}

SQL_PER_B = (
    "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
)
SQL_CNT_A = "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"


def _random_stream(seed: int, n_batches: int) -> list[tuple[str, GMR]]:
    """Deterministic insert+delete batches over R/S/T (deletions only
    remove rows inserted earlier in the stream)."""
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {"R": [], "S": [], "T": []}
    batches: list[tuple[str, GMR]] = []
    for _ in range(n_batches):
        relation = rng.choice(("R", "S", "T"))
        data: dict[tuple, int] = {}
        for _ in range(rng.randint(1, 5)):
            if live[relation] and rng.random() < 0.35:
                victim = rng.choice(live[relation])
                live[relation].remove(victim)
                data[victim] = data.get(victim, 0) - 1
            else:
                row = (rng.randint(1, 8), rng.randint(1, 15))
                live[relation].append(row)
                data[row] = data.get(row, 0) + 1
        if data:
            batches.append((relation, GMR(data)))
    return batches


def _drive(seed: int, n_batches: int):
    """Stream a randomized workload into one async + one sync view;
    returns ``(spans, routed)`` where ``routed[view]`` is the set of
    seqs whose batch reached that view."""
    service = ViewService(catalog=CATALOG)
    service.create_view("async_v", SQL_PER_B, backend="async:rivm-batch")
    service.create_view("sync_v", SQL_CNT_A, backend="rivm-batch")
    subs = [
        service.subscribe("async_v", lambda event: None),
        service.subscribe("sync_v", lambda event: None),
    ]
    routed: dict[str, set[int]] = {"async_v": set(), "sync_v": set()}
    streams = {"async_v": frozenset({"R", "S"}), "sync_v": frozenset({"R"})}
    try:
        for relation, batch in _random_stream(seed, n_batches):
            seq, _touched = service.ingest(relation, batch)
            for view, rels in streams.items():
                if relation in rels:
                    routed[view].add(seq)
        service.drain()
        return service.tracer.spans(), routed
    finally:
        for sub in subs:
            sub.cancel()
        service.drop_view("async_v")
        service.drop_view("sync_v")


@pytest.mark.parametrize("seed", [7, 23, 91])
def test_admission_covers_every_seq_exactly_once(seed):
    spans, routed = _drive(seed, n_batches=60)
    admissions = [s for s in spans if s.stage == "admission"]
    seqs = sorted(s.attrs["seq"] for s in admissions)
    n = len(routed["async_v"] | routed["sync_v"] |
            {s.attrs["seq"] for s in admissions})
    assert seqs == list(range(1, len(seqs) + 1))
    assert len(seqs) == n  # no admission outside the assigned range


@pytest.mark.parametrize("seed", [7, 23, 91])
def test_flush_seqs_partition_routed_seqs(seed):
    spans, routed = _drive(seed, n_batches=60)
    flushes = [
        s for s in spans
        if s.stage == "flush" and s.attrs.get("view") == "async_v"
    ]
    seen: list[int] = []
    for f in flushes:
        assert f.attrs["seqs"], "flush span with an empty seqs list"
        assert f.attrs["seq"] == max(f.attrs["seqs"])
        seen.extend(f.attrs["seqs"])
    assert len(seen) == len(set(seen)), "a seq was flushed twice"
    assert set(seen) == routed["async_v"], (
        "flush seqs must cover exactly the seqs routed to the view"
    )


@pytest.mark.parametrize("seed", [7, 23])
def test_span_trees_are_well_nested(seed):
    spans, _routed = _drive(seed, n_batches=60)
    by_id: dict[str, Span] = {s.span_id: s for s in spans}
    assert len(by_id) == len(spans), "span ids must be unique"
    for s in spans:
        if s.parent_id is None or s.parent_id not in by_id:
            continue  # root, or parent from another process/window
        parent = by_id[s.parent_id]
        assert parent.trace_id == s.trace_id, (
            "a parent edge may never cross traces"
        )
        # acyclic: walk to a root, never revisiting
        hops, cur = set(), s
        while cur.parent_id is not None and cur.parent_id in by_id:
            assert cur.span_id not in hops, "cycle in the parent graph"
            hops.add(cur.span_id)
            cur = by_id[cur.parent_id]
    # maintain spans run inside their flush (same thread, same scope):
    # the intervals must nest
    eps = 5e-3  # time.time() granularity across the two stamps
    for s in spans:
        if s.stage != "maintain" or s.parent_id not in by_id:
            continue
        parent = by_id[s.parent_id]
        if parent.stage != "flush":
            continue  # sync maintains chain straight off admission
        assert s.start >= parent.start - eps
        assert s.start + s.dur_s <= parent.start + parent.dur_s + eps


def test_concurrent_producers_keep_seq_coverage():
    """The same coverage property under 4 racing producer threads —
    the admission span is emitted under the service lock, so the ring
    must still hold exactly one admission per assigned seq."""
    service = ViewService(catalog=CATALOG)
    service.create_view("async_v", SQL_PER_B, backend="async:rivm-batch")
    n_threads, per_thread = 4, 30

    def produce(seed: int):
        rng = random.Random(seed)
        for _ in range(per_thread):
            relation = rng.choice(("R", "S"))
            service.on_batch(
                relation, GMR({(rng.randint(1, 8), rng.randint(1, 15)): 1})
            )

    threads = [
        threading.Thread(target=produce, args=(t,)) for t in range(n_threads)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.drain()
        admissions = [
            s for s in service.tracer.spans() if s.stage == "admission"
        ]
        total = n_threads * per_thread
        assert sorted(s.attrs["seq"] for s in admissions) == list(
            range(1, total + 1)
        )
        flushed = [
            q for s in service.tracer.spans()
            if s.stage == "flush" for q in s.attrs["seqs"]
        ]
        assert sorted(flushed) == list(range(1, total + 1))
    finally:
        service.drop_view("async_v")
