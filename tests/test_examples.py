"""Smoke tests: every example script runs to completion.

Each example asserts its own correctness internally (maintained views
are checked against re-evaluation), so a zero exit code is a real
end-to-end test of the public API.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sql_frontend.py",
    "clickstream_monitoring.py",
    "batch_size_tuning.py",
    "distributed_scaleout.py",
    "fault_tolerant_pipeline.py",
]


def _run(script: str, timeout: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = _run(script, timeout=240)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


@pytest.mark.slow
def test_fraud_detection_example_runs():
    """The domain-extraction showcase deliberately runs the expensive
    recompute-twice variant, so it gets a generous timeout."""
    proc = _run("fraud_detection.py", timeout=420)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "domain extraction speedup" in proc.stdout
