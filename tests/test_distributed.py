"""Distributed compilation and simulated-cluster equivalence tests.

The strongest property in this file: for every query, partitioning,
optimization level, and worker count, the distributed program executed
on the simulated cluster must produce exactly the same view contents as
a from-scratch evaluation — transformers only move data.
"""

import random

import pytest

from repro.distributed import (
    Dist,
    Local,
    SimulatedCluster,
    annotate_program,
    compile_distributed,
    default_partitioning,
)
from repro.distributed.blocks import (
    Block,
    build_blocks,
    fuse_blocks,
    statements_commute,
)
from repro.distributed.optimize import optimize_expr, transformer_count
from repro.distributed.planner import plan_jobs
from repro.distributed.program import DistStatement
from repro.distributed.tags import LOCAL, RANDOM, partition_of
from repro.compiler import apply_batch_preaggregation, compile_query
from repro.eval import Database, evaluate
from repro.query import assign, cmp, exists, join, rel, sum_over
from repro.query.ast import Gather, Join, Rel, Repart, Scatter, Sum
from repro.ring import GMR

Q3WAY = sum_over(
    ["B"], join(rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D"))
)

Q_AGG = sum_over([], join(rel("R", "A", "B"), cmp("A", ">", 1)))

Q_NESTED = sum_over(
    [],
    join(
        rel("R", "A", "B"),
        assign("X", sum_over([], join(rel("S", "B2", "C"), cmp("B", "==", "B2")))),
        cmp("A", "<", "X"),
    ),
)

HINTS = {"R": ("B",), "S": ("B",), "T": ("C",)}


def _stream(rng, rels, n, size):
    out = []
    for _ in range(n):
        r = rng.choice(rels)
        g = GMR()
        for _ in range(size):
            g.add_tuple((rng.randint(0, 5), rng.randint(0, 5)), 1)
        out.append((r, g))
    return out


# ----------------------------------------------------------------------
# Equivalence: the headline property
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_workers", [1, 2, 5])
@pytest.mark.parametrize("opt_level", [0, 1, 2, 3])
def test_cluster_matches_reference_three_way(n_workers, opt_level):
    dprog = compile_distributed(
        Q3WAY, "d3", key_hints=HINTS, opt_level=opt_level
    )
    cluster = SimulatedCluster(dprog, n_workers=n_workers)
    db = Database()
    rng = random.Random(100 + n_workers + opt_level)
    for r, batch in _stream(rng, ["R", "S", "T"], 15, 3):
        cluster.on_batch(r, batch)
        db.apply_update(r, batch)
        assert cluster.snapshot() == evaluate(Q3WAY, db), (
            f"diverged (workers={n_workers}, O{opt_level})"
        )


@pytest.mark.parametrize("worker_side", [True, False])
def test_cluster_matches_reference_ingestion_modes(worker_side):
    dprog = compile_distributed(
        Q3WAY, "ding", key_hints=HINTS,
        worker_side_ingestion=worker_side,
    )
    cluster = SimulatedCluster(dprog, n_workers=3)
    db = Database()
    rng = random.Random(55)
    for r, batch in _stream(rng, ["R", "S", "T"], 12, 4):
        cluster.on_batch(r, batch)
        db.apply_update(r, batch)
        assert cluster.snapshot() == evaluate(Q3WAY, db)


def test_cluster_matches_reference_scalar_aggregate():
    dprog = compile_distributed(Q_AGG, "dagg", key_hints=HINTS)
    cluster = SimulatedCluster(dprog, n_workers=4)
    db = Database()
    rng = random.Random(9)
    for r, batch in _stream(rng, ["R"], 10, 5):
        cluster.on_batch(r, batch)
        db.apply_update(r, batch)
        assert cluster.snapshot() == evaluate(Q_AGG, db)


def test_cluster_matches_reference_nested_aggregate():
    hints = {"R": ("B",), "S": ("B2",)}
    dprog = compile_distributed(Q_NESTED, "dnest", key_hints=hints)
    cluster = SimulatedCluster(dprog, n_workers=3)
    db = Database()
    rng = random.Random(21)
    for r, batch in _stream(rng, ["R", "S"], 12, 3):
        cluster.on_batch(r, batch)
        db.apply_update(r, batch)
        assert cluster.snapshot() == evaluate(Q_NESTED, db)


def test_all_views_consistent_after_stream():
    """Not just the top view: every distributed view partition must sum
    to the view's definition evaluated over the base state."""
    dprog = compile_distributed(Q3WAY, "dall", key_hints=HINTS)
    cluster = SimulatedCluster(dprog, n_workers=3)
    db = Database()
    rng = random.Random(31)
    for r, batch in _stream(rng, ["R", "S", "T"], 10, 4):
        cluster.on_batch(r, batch)
        db.apply_update(r, batch)
    for info in dprog.local_program.views.values():
        assert cluster.view(info.name) == evaluate(info.definition, db), (
            f"view {info.name} inconsistent"
        )


def test_partition_invariant_respected():
    """Each worker may hold only tuples its partition function owns."""
    dprog = compile_distributed(Q3WAY, "dinv", key_hints=HINTS)
    n = 4
    cluster = SimulatedCluster(dprog, n_workers=n)
    rng = random.Random(41)
    for r, batch in _stream(rng, ["R", "S", "T"], 10, 4):
        cluster.on_batch(r, batch)
    for name, tag in dprog.partitioning.items():
        if not isinstance(tag, Dist) or name not in dprog.local_program.views:
            continue
        cols = dprog.local_program.views[name].cols
        positions = [cols.index(k) for k in tag.keys]
        for w, wdb in enumerate(cluster.workers):
            for t in wdb.get_view(name):
                key = tuple(t[p] for p in positions)
                assert partition_of(key, n) == w, (
                    f"{name}: tuple {t} on wrong worker"
                )


# ----------------------------------------------------------------------
# Partitioning heuristic
# ----------------------------------------------------------------------


def test_default_partitioning_prefers_ranked_keys():
    program = compile_query(Q3WAY, "dp")
    spec = default_partitioning(program, HINTS)
    top = program.top_view
    assert spec[top] == Dist(("B",))


def test_default_partitioning_local_without_keys():
    program = compile_query(Q_AGG, "dp2")
    spec = default_partitioning(program, {})
    assert all(tag == LOCAL for tag in spec.values())


# ----------------------------------------------------------------------
# Optimizer unit behaviour
# ----------------------------------------------------------------------


def test_simplify_repart_of_already_partitioned():
    part = {"V": Dist(("B",))}
    e = Repart(Rel("V", ("B", "C")), ("B",))
    assert optimize_expr(e, part) == Rel("V", ("B", "C"))


def test_simplify_repart_compose():
    part = {}
    e = Repart(Repart(Rel("V", ("B",)), ("C",)), ("B",))
    out = optimize_expr(e, part)
    assert out == Repart(Rel("V", ("B",)), ("B",))


def test_simplify_gather_of_scatter():
    part = {"V": LOCAL}
    e = Gather(Scatter(Rel("V", ("B",)), ("B",)))
    assert optimize_expr(e, part) == Rel("V", ("B",))


def test_simplify_scatter_of_gather_is_repart():
    part = {}
    e = Scatter(Gather(Rel("V", ("B",))), ("B",))
    out = optimize_expr(e, part)
    assert out == Repart(Rel("V", ("B",)), ("B",))


def test_push_repart_through_join_cancels():
    """Example 4.1's optimization: pushing the outer Repart through the
    join lets it cancel against the inner one, saving one round."""
    part = {"M1": Dist(("A",)), "M2": Dist(("B",))}
    naive = Repart(
        Sum(
            ("A",),
            Join((Repart(Rel("M1", ("A", "B")), ("B",)), Rel("M2", ("A", "B")))),
        ),
        ("A",),
    )
    # Note: M2 is partitioned on B here, so the useful rewrite flips
    # the repart onto M2 via push-down + cancellation against M1's tag.
    optimized = optimize_expr(naive, part)
    assert transformer_count(optimized) <= transformer_count(naive)


def test_optimizer_never_increases_cost():
    part = {"V": Dist(("B",)), "W": Dist(("C",))}
    e = Repart(Join((Rel("V", ("B", "C")), Rel("W", ("C", "D")))), ("C",))
    out = optimize_expr(e, part)
    assert transformer_count(out) <= transformer_count(e)


# ----------------------------------------------------------------------
# Blocks, commutativity, fusion
# ----------------------------------------------------------------------


def _stmt(target, expr, mode="dist", op="+="):
    return DistStatement(target, op, ("B",), expr, "view", RANDOM, mode)


def test_statements_commute_when_disjoint():
    s1 = _stmt("A1", Rel("V", ("B",)))
    s2 = _stmt("A2", Rel("W", ("B",)))
    assert statements_commute(s1, s2)


def test_statements_do_not_commute_read_after_write():
    s1 = _stmt("A1", Rel("V", ("B",)))
    s2 = _stmt("V", Rel("W", ("B",)))
    assert not statements_commute(s1, s2)  # s1 reads V, s2 writes V


def test_pluses_to_same_target_commute():
    s1 = _stmt("A", Rel("V", ("B",)), op="+=")
    s2 = _stmt("A", Rel("W", ("B",)), op="+=")
    assert statements_commute(s1, s2)


def test_replace_does_not_commute_with_same_target():
    s1 = _stmt("A", Rel("V", ("B",)), op=":=")
    s2 = _stmt("A", Rel("W", ("B",)), op="+=")
    assert not statements_commute(s1, s2)


def test_fuse_blocks_merges_same_mode():
    stmts = [
        _stmt("A1", Rel("V1", ("B",)), mode="dist"),
        _stmt("A2", Rel("V2", ("B",)), mode="dist"),
        _stmt("A3", Rel("V3", ("B",)), mode="local"),
        _stmt("A4", Rel("V4", ("B",)), mode="local"),
    ]
    fused = fuse_blocks(build_blocks(stmts))
    assert [b.mode for b in fused] == ["dist", "local"]
    assert len(fused[0].statements) == 2


def test_fuse_blocks_reorders_across_commuting_blocks():
    """The Fig. 5 effect: a later dist statement hops over a local block
    it commutes with, collapsing 4 blocks into 2."""
    stmts = [
        _stmt("A1", Rel("V1", ("B",)), mode="dist"),
        _stmt("L1", Rel("V2", ("B",)), mode="local"),
        _stmt("A2", Rel("V3", ("B",)), mode="dist"),
        _stmt("L2", Rel("V4", ("B",)), mode="local"),
    ]
    fused = fuse_blocks(build_blocks(stmts))
    assert len(fused) == 2
    assert [b.mode for b in fused] == ["dist", "local"]


def test_fuse_blocks_respects_dependencies():
    stmts = [
        _stmt("A1", Rel("V1", ("B",)), mode="dist"),
        _stmt("L1", Rel("A1", ("B",)), mode="local"),  # reads A1
        _stmt("A2", Rel("L1", ("B",)), mode="dist"),  # reads L1
    ]
    fused = fuse_blocks(build_blocks(stmts))
    assert len(fused) == 3  # nothing can move


def test_block_fusion_reduces_block_count_on_real_program():
    dprog = compile_distributed(Q3WAY, "fuse", key_hints=HINTS)
    for trig in dprog.triggers.values():
        unfused = build_blocks(trig.statements)
        fused = fuse_blocks(unfused)
        assert len(fused) <= len(unfused)


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


def test_single_stage_query_plan():
    """A Q6-style single local aggregate: one job, one stage."""
    dprog = compile_distributed(
        Q_AGG, "q6ish", partitioning={v: LOCAL for v in
                                      compile_query(Q_AGG, "x").views},
    )
    # With a local top view and worker-side batches, the trigger runs
    # one distributed pre-aggregation and one gather.
    trig = dprog.triggers["R"]
    plan = plan_jobs(trig.blocks)
    assert plan.n_jobs == 1
    assert plan.n_stages <= 2


def test_multi_stage_query_plan():
    dprog = compile_distributed(Q3WAY, "plan3", key_hints=HINTS)
    for trig in dprog.triggers.values():
        plan = plan_jobs(trig.blocks)
        assert plan.n_jobs >= 1
        assert plan.n_stages >= 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_cluster_metrics_accumulate():
    dprog = compile_distributed(Q3WAY, "met", key_hints=HINTS)
    cluster = SimulatedCluster(dprog, n_workers=2)
    rng = random.Random(77)
    for r, batch in _stream(rng, ["R", "S", "T"], 5, 10):
        latency = cluster.on_batch(r, batch)
        assert latency > 0
    m = cluster.metrics
    assert m.batches == 5
    assert m.jobs >= 5
    assert m.median_latency_s > 0
    assert m.shuffled_bytes > 0
    assert m.throughput_tuples_per_s(5 * 10) > 0


def test_sync_overhead_grows_with_workers():
    """The Q6 weak-scaling mechanism: more workers → more sync cost."""
    dprog = compile_distributed(Q3WAY, "sync", key_hints=HINTS)
    batch = GMR({(i, i % 5): 1 for i in range(50)})
    lat = {}
    for n in (2, 20):
        cluster = SimulatedCluster(dprog, n_workers=n)
        lat[n] = cluster.on_batch("R", batch)
    assert lat[20] > lat[2]
