"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package,
so pip's PEP 517 editable-build path fails; ``python setup.py develop``
installs the package with plain setuptools.  All metadata lives in
``setup.cfg`` (deliberately not pyproject.toml — its presence alone
pushes pip >= 23.1 onto the wheel-requiring path).
"""

from setuptools import setup

setup()
