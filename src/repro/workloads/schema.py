"""Table schemas for the synthetic TPC-H / TPC-DS-style workloads.

Column names double as the query-algebra variable names, so shared join
keys carry the same name in every table that references them (``okey``
joins LINEITEM with ORDERS, and so on).  Dates are day numbers, and
categorical attributes are small integers; both preserve the filter
selectivities and active-domain sizes that drive the paper's
pre-aggregation effects without modeling string formatting.
"""

from __future__ import annotations

#: TPC-H-style schema: table -> ordered column names.
TPCH_TABLES: dict[str, tuple[str, ...]] = {
    # orderkey, partkey, suppkey, quantity, extendedprice, discount,
    # shipdate, returnflag, linestatus, shipmode
    "LINEITEM": (
        "okey", "pkey", "skey", "qty", "eprice", "disc",
        "sdate", "rflag", "lstatus", "smode",
    ),
    # orderkey, custkey, orderdate, orderpriority, shippriority
    "ORDERS": ("okey", "ckey", "odate", "opri", "spri"),
    # custkey, nationkey, mktsegment, acctbal, phone (country code)
    "CUSTOMER": ("ckey", "nkey", "mkt", "acctbal", "phone"),
    # partkey, brand, type, size, container
    "PART": ("pkey", "brand", "ptype", "psize", "container"),
    # suppkey, nationkey (supplier side), acctbal
    "SUPPLIER": ("skey", "snkey", "sacctbal"),
    # partkey, suppkey, availqty, supplycost
    "PARTSUPP": ("pkey", "skey", "availqty", "scost"),
    # nationkey, regionkey
    "NATION": ("nkey", "rkey"),
    # regionkey
    "REGION": ("rkey",),
}

#: Proportional base cardinalities at scale factor 1.0 (tuples).
TPCH_BASE_CARDINALITIES: dict[str, int] = {
    "LINEITEM": 6_000_000,
    "ORDERS": 1_500_000,
    "PARTSUPP": 800_000,
    "PART": 200_000,
    "CUSTOMER": 150_000,
    "SUPPLIER": 10_000,
    "NATION": 25,
    "REGION": 5,
}

#: TPC-DS-style star schema.
TPCDS_TABLES: dict[str, tuple[str, ...]] = {
    # sold_date, item, store, customer, hdemo, quantity, price, profit
    "STORE_SALES": (
        "dkey", "ikey", "stkey", "cdkey", "hdkey",
        "ss_qty", "ss_price", "ss_profit",
    ),
    # date surrogate key, year, month-of-year, day-of-month
    "DATE_DIM": ("dkey", "d_year", "d_moy", "d_dom"),
    # item surrogate key, brand, category, manager
    "ITEM": ("ikey", "i_brand", "i_category", "i_manager"),
    # store surrogate key, county, state
    "STORE": ("stkey", "st_county", "st_state"),
    # customer surrogate key, demographics band
    "CUSTOMER_D": ("cdkey", "cd_band"),
    # household demographics: dependents count, vehicle count
    "HOUSEHOLD": ("hdkey", "hd_dep", "hd_vehicle"),
}

TPCDS_BASE_CARDINALITIES: dict[str, int] = {
    "STORE_SALES": 2_880_000,
    "DATE_DIM": 73_000,
    "ITEM": 18_000,
    "STORE": 12,
    "CUSTOMER_D": 100_000,
    "HOUSEHOLD": 7_200,
}

#: Key columns per relation in decreasing cardinality order — the input
#: to the partitioning heuristic of Section 6.2.
TPCH_KEY_HINTS: dict[str, tuple[str, ...]] = {
    "LINEITEM": ("okey", "pkey", "ckey", "skey"),
    "ORDERS": ("okey", "ckey"),
    "PARTSUPP": ("pkey", "skey"),
    "PART": ("pkey",),
    "CUSTOMER": ("ckey",),
    "SUPPLIER": ("skey",),
}

TPCDS_KEY_HINTS: dict[str, tuple[str, ...]] = {
    "STORE_SALES": ("cdkey", "ikey", "dkey"),
    "CUSTOMER_D": ("cdkey",),
    "ITEM": ("ikey",),
    "DATE_DIM": ("dkey",),
}
