"""Micro workload: the paper's running examples as benchmark queries.

Four queries isolate the mechanisms the TPC workloads exercise in
combination (and sometimes mask behind selective predicates):

* ``M1`` — Example 2.1/2.2: the triple join-count
  ``Sum[B](R(A,B) |><| S(B,C) |><| T(C,D))`` whose recursive
  materialization the paper walks through;
* ``M2`` — Example 3.1-style equality-correlated nested aggregate:
  accounts whose transaction count exceeds a per-account threshold.
  Every outer row carries a distinct correlation key, so domain
  extraction's |batch domain| vs |state| advantage is fully exposed;
* ``M3`` — Example 3.2: DISTINCT via Exists over a filtered projection,
  the duplicate-elimination case that motivates domain expressions;
* ``M4`` — Example 3.3: an *uncorrelated* nested aggregate, the case
  where the Section 3.2.3 decision procedure chooses re-evaluation
  over incremental maintenance.
"""

from __future__ import annotations

import random

from repro.query.builder import (
    assign,
    cmp,
    exists,
    join,
    rel,
    sum_over,
)
from repro.workloads.spec import QuerySpec

#: table name -> column names
MICRO_TABLES: dict[str, tuple[str, ...]] = {
    "R": ("a", "b"),
    "S": ("b", "c"),
    "T": ("c", "d"),
    "ACCOUNTS": ("acct", "threshold"),
    "TXNS": ("acct2", "amount"),
}

#: relative cardinalities at scale factor 1.0
MICRO_BASE_CARDINALITIES: dict[str, int] = {
    "R": 4_000,
    "S": 2_000,
    "T": 2_000,
    "ACCOUNTS": 1_000,
    "TXNS": 8_000,
}


def generate_micro(sf: float = 1.0, seed: int = 42) -> dict[str, list[tuple]]:
    """Deterministic micro dataset; key domains scale with ``sf``."""
    rng = random.Random(seed)
    n = {
        t: max(4, int(c * sf)) for t, c in MICRO_BASE_CARDINALITIES.items()
    }
    dom_b = max(4, n["S"] // 4)
    dom_c = max(4, n["T"] // 4)

    tables: dict[str, list[tuple]] = {}
    tables["R"] = [
        (rng.randrange(50), rng.randrange(dom_b)) for _ in range(n["R"])
    ]
    tables["S"] = [
        (rng.randrange(dom_b), rng.randrange(dom_c)) for _ in range(n["S"])
    ]
    tables["T"] = [
        (rng.randrange(dom_c), rng.randrange(40)) for _ in range(n["T"])
    ]
    tables["ACCOUNTS"] = [
        (acct, rng.randint(2, 12)) for acct in range(n["ACCOUNTS"])
    ]
    tables["TXNS"] = [
        (rng.randrange(n["ACCOUNTS"]), rng.randint(1, 500))
        for _ in range(n["TXNS"])
    ]
    return tables


def _m1() -> QuerySpec:
    query = sum_over(
        ["b"],
        join(rel("R", "a", "b"), rel("S", "b", "c"), rel("T", "c", "d")),
    )
    return QuerySpec(
        name="M1",
        query=query,
        updatable=frozenset({"R", "S", "T"}),
        key_hints={"R": ("b",), "S": ("b", "c"), "T": ("c",)},
        notes="Example 2.1/2.2: the paper's running triple-join count.",
    )


def _m2() -> QuerySpec:
    nested = sum_over(
        [], join(rel("TXNS", "acct2", "amount"), cmp("acct2", "==", "acct"))
    )
    query = sum_over(
        [],
        join(
            rel("ACCOUNTS", "acct", "threshold"),
            assign("txn_count", nested),
            cmp("threshold", "<", "txn_count"),
        ),
    )
    return QuerySpec(
        name="M2",
        query=query,
        updatable=frozenset({"TXNS"}),
        key_hints={"ACCOUNTS": ("acct",), "TXNS": ("acct2",)},
        notes=(
            "Example 3.1-style correlated nested aggregate with an "
            "unguarded outer scan; the domain-extraction showcase."
        ),
    )


def _m3() -> QuerySpec:
    query = exists(
        sum_over(["a"], join(rel("R", "a", "b"), cmp("b", ">", 3)))
    )
    return QuerySpec(
        name="M3",
        query=query,
        updatable=frozenset({"R"}),
        key_hints={"R": ("a",)},
        notes="Example 3.2: SELECT DISTINCT a FROM R WHERE b > 3.",
    )


def _m4() -> QuerySpec:
    nested = sum_over([], rel("TXNS", "acct2", "amount"))
    query = sum_over(
        [],
        join(
            rel("ACCOUNTS", "acct", "threshold"),
            assign("total", nested),
            cmp("threshold", "<", "total"),
        ),
    )
    return QuerySpec(
        name="M4",
        query=query,
        updatable=frozenset({"TXNS"}),
        key_hints={"ACCOUNTS": ("acct",), "TXNS": ("acct2",)},
        notes=(
            "Example 3.3: uncorrelated nested aggregate; the decision "
            "procedure maintains it by (piecewise) re-evaluation."
        ),
    )


MICRO_QUERIES: dict[str, QuerySpec] = {
    spec.name: spec for spec in (_m1(), _m2(), _m3(), _m4())
}
