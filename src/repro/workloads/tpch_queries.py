"""Streaming-adapted TPC-H queries Q1–Q22 in the reproduction algebra.

Each query keeps the structural properties the paper's evaluation
studies — join graph, nesting depth, correlation type of nested
aggregates, predicate selectivity, and aggregation domain size — while
simplifying aspects the algebra does not model (single aggregate per
query, integer-coded categorical values, no string operations).  Per-
query adaptations are documented in the ``notes`` fields; the important
behaviour classes from the paper:

* **Q11, Q15** — inequality-based *uncorrelated* nested aggregates:
  incrementally unmaintainable, the compiler re-evaluates per batch
  (larger batches amortize re-evaluations; huge batch speedups in
  Fig. 7's right panel).
* **Q17, Q18, Q20, Q21** — equality-correlated nested aggregates:
  domain extraction makes them incrementally maintainable.
* **Q1, Q20, Q22** — pre-aggregation projects update batches onto tiny
  active domains (the orders-of-magnitude batch wins of Fig. 7).
* **Q4, Q16, Q21, Q22** — EXISTS / NOT EXISTS via ``(X := Qn)``
  conditions.
"""

from __future__ import annotations

from repro.query import (
    assign,
    cmp,
    exists,
    join,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.builder import add, mul, sub
from repro.workloads.schema import TPCH_KEY_HINTS, TPCH_TABLES
from repro.workloads.spec import QuerySpec


def _rel(name: str, **renames: str):
    cols = tuple(renames.get(c, c) for c in TPCH_TABLES[name])
    return rel(name, *cols)


LINEITEM = _rel("LINEITEM")
ORDERS = _rel("ORDERS")
CUSTOMER = _rel("CUSTOMER")
PART = _rel("PART")
SUPPLIER = _rel("SUPPLIER")
PARTSUPP = _rel("PARTSUPP")
NATION = _rel("NATION")
REGION = _rel("REGION")

#: revenue term used throughout: extendedprice * (100 - disc) / 100,
#: kept integral by working in "percent units".
REVENUE = value(mul("eprice", sub(100, "disc")))


def _spec(name, query, updatable, notes):
    return QuerySpec(
        name=name,
        query=query,
        updatable=frozenset(updatable),
        key_hints=TPCH_KEY_HINTS,
        notes=notes,
    )


TPCH_QUERIES: dict[str, QuerySpec] = {}


def _add(spec: QuerySpec) -> None:
    TPCH_QUERIES[spec.name] = spec


# Q1: pricing summary report — single-table aggregate over a low-
# cardinality group-by (rflag × lstatus).  Batch pre-aggregation
# collapses any batch onto ≤6 groups.
_add(_spec(
    "Q1",
    sum_over(
        ["rflag", "lstatus"],
        join(LINEITEM, cmp("sdate", "<=", 2400), REVENUE),
    ),
    ["LINEITEM"],
    "One SUM aggregate stands in for the 8 aggregates of the original; "
    "the group-by domain (3×2 values) is preserved.",
))

# Q2: minimum-cost supplier.  MIN is outside the ring; substituted by
# an equality-correlated nested COUNT with the same join graph
# (PART⋈PARTSUPP⋈SUPPLIER⋈NATION⋈REGION + correlated subquery on pkey).
_add(_spec(
    "Q2",
    sum_over(
        ["pkey"],
        join(
            PART,
            cmp("psize", "==", 15),
            PARTSUPP,
            SUPPLIER,
            cmp("nkey", "==", "snkey"),
            NATION,
            REGION,
            assign(
                "X",
                sum_over([], join(
                    rel("PARTSUPP", "pkey2", "skey2", "availqty2", "scost2"),
                    cmp("pkey", "==", "pkey2"),
                    cmp("scost2", "<", "scost"),
                )),
            ),
            cmp("X", "==", 0),  # no cheaper supplier exists ⇒ minimum
        ),
    ),
    ["PARTSUPP", "SUPPLIER"],
    "MIN(ps_supplycost) expressed as NOT EXISTS(cheaper supplier): an "
    "equality-correlated nested aggregate with the original join graph.",
))

# Q3: shipping priority — the paper's running distributed example.
_add(_spec(
    "Q3",
    sum_over(
        ["okey"],
        join(
            CUSTOMER,
            cmp("mkt", "==", 1),
            ORDERS,
            cmp("odate", "<", 1200),
            LINEITEM,
            cmp("sdate", ">", 1200),
            REVENUE,
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER"],
    "Revenue by order over CUSTOMER⋈ORDERS⋈LINEITEM with the original "
    "date/segment filters (integer-coded).",
))

# Q4: order priority checking — EXISTS(lineitem received late).
_add(_spec(
    "Q4",
    sum_over(
        ["opri"],
        join(
            ORDERS,
            cmp("odate", ">=", 1000),
            cmp("odate", "<", 1090),
            assign(
                "X",
                sum_over([], join(
                    rel("LINEITEM", "okey2", "pkey2", "skey2", "qty2",
                        "eprice2", "disc2", "sdate2", "rflag2",
                        "lstatus2", "smode2"),
                    cmp("okey", "==", "okey2"),
                    cmp("rflag2", "==", 1),
                )),
            ),
            cmp("X", "!=", 0),
        ),
    ),
    ["ORDERS", "LINEITEM"],
    "EXISTS(l_commitdate < l_receiptdate) becomes EXISTS(rflag2 == 1); "
    "the correlated-EXISTS structure is unchanged.",
))

# Q5: local supplier volume — 6-way join, group by nation.
_add(_spec(
    "Q5",
    sum_over(
        ["nkey"],
        join(
            CUSTOMER,
            ORDERS,
            cmp("odate", ">=", 800),
            cmp("odate", "<", 1165),
            LINEITEM,
            SUPPLIER,
            cmp("nkey", "==", "snkey"),
            NATION,
            cmp("rkey", "==", 2),
            REVENUE,
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER"],
    "REGION filter folded into a comparison on NATION.rkey; the 6-way "
    "join graph and customer-nation = supplier-nation equality remain.",
))

# Q6: forecasting revenue change — single-table, highly selective.
_add(_spec(
    "Q6",
    sum_over(
        [],
        join(
            LINEITEM,
            cmp("sdate", ">=", 800),
            cmp("sdate", "<", 1165),
            cmp("disc", ">=", 5),
            cmp("disc", "<=", 7),
            cmp("qty", "<", 24),
            value(mul("eprice", "disc")),
        ),
    ),
    ["LINEITEM"],
    "Exactly the original shape: one filtered SUM over LINEITEM.",
))

# Q7: volume shipping between two nations.
_add(_spec(
    "Q7",
    sum_over(
        ["snkey", "nkey"],
        join(
            SUPPLIER,
            LINEITEM,
            ORDERS,
            CUSTOMER,
            cmp("sdate", ">=", 900),
            cmp("sdate", "<=", 1600),
            union(
                join(cmp("snkey", "==", 3), cmp("nkey", "==", 4)),
                join(cmp("snkey", "==", 4), cmp("nkey", "==", 3)),
            ),
            REVENUE,
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER", "SUPPLIER"],
    "The disjunctive nation pair keeps its union form; the year group-"
    "by is dropped (one aggregate per nation pair).",
))

# Q8: national market share.
_add(_spec(
    "Q8",
    sum_over(
        ["odate"],
        join(
            PART,
            cmp("ptype", "==", 10),
            LINEITEM,
            SUPPLIER,
            ORDERS,
            cmp("odate", ">=", 1095),
            cmp("odate", "<=", 1825),
            CUSTOMER,
            NATION,
            cmp("rkey", "==", 1),
            cmp("snkey", "==", 2),
            REVENUE,
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER"],
    "The market-share ratio is reduced to its numerator (nation-2 "
    "volume by order date); the 8-way join graph is intact.",
))

# Q9: product type profit measure.
_add(_spec(
    "Q9",
    sum_over(
        ["snkey", "odate"],
        join(
            PART,
            cmp("brand", "==", 7),
            LINEITEM,
            SUPPLIER,
            PARTSUPP,
            ORDERS,
            NATION,
            cmp("nkey", "==", "snkey"),
            value(sub(mul("eprice", sub(100, "disc")),
                      mul(100, mul("scost", "qty")))),
        ),
    ),
    ["LINEITEM", "ORDERS"],
    "Profit = revenue − cost with the full 6-way join including the "
    "(pkey, skey) PARTSUPP join; p_name LIKE filter becomes brand = 7.",
))

# Q10: returned item reporting.
_add(_spec(
    "Q10",
    sum_over(
        ["ckey"],
        join(
            CUSTOMER,
            ORDERS,
            cmp("odate", ">=", 1000),
            cmp("odate", "<", 1090),
            LINEITEM,
            cmp("rflag", "==", 2),
            NATION,
            REVENUE,
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER"],
    "Revenue from returned items by customer; original shape.",
))

# Q11: important stock identification — the HAVING > global-fraction
# pattern: an *uncorrelated* inequality nested aggregate ⇒ the compiler
# re-evaluates per batch (the paper's Q11 behaviour).
_PS_VALUE = value(mul("scost", "availqty"))
_PS2 = rel("PARTSUPP", "pkey2", "skey2", "availqty2", "scost2")
_PS3 = rel("PARTSUPP", "pkey3", "skey3", "availqty3", "scost3")
_add(_spec(
    "Q11",
    sum_over(
        ["pkey"],
        join(
            exists(sum_over(["pkey"], PARTSUPP)),
            assign(
                "G",
                sum_over([], join(
                    _PS2, cmp("pkey", "==", "pkey2"),
                    value(mul("scost2", "availqty2")),
                )),
            ),
            assign(
                "X",
                sum_over([], join(
                    _PS3, value(mul("scost3", "availqty3")),
                )),
            ),
            cmp(mul("G", 10000), ">", "X"),
            value("G"),
        ),
    ),
    ["PARTSUPP"],
    "HAVING SUM(...) > fraction · global SUM: the uncorrelated nested "
    "aggregate forces per-batch re-evaluation, exactly the class the "
    "paper assigns Q11 to.",
))

# Q12: shipping modes and order priority.
_add(_spec(
    "Q12",
    sum_over(
        ["smode"],
        join(
            ORDERS,
            LINEITEM,
            cmp("smode", "<=", 1),
            cmp("sdate", ">=", 1095),
            cmp("sdate", "<", 1460),
        ),
    ),
    ["LINEITEM", "ORDERS"],
    "Two-way join counting shipments by mode; the CASE split on "
    "priority is dropped.",
))

# Q13: customer distribution.  LEFT OUTER JOIN is outside the algebra;
# the correlated order count keeps the two-relation structure
# (customers with zero orders produce count 0 via scalar context).
_ORD2 = rel("ORDERS", "okey2", "ckey2", "odate2", "opri2", "spri2")
_add(_spec(
    "Q13",
    sum_over(
        ["ckey"],
        join(
            CUSTOMER,
            assign(
                "C",
                sum_over([], join(
                    _ORD2,
                    cmp("ckey", "==", "ckey2"),
                    cmp("opri2", "!=", 0),
                )),
            ),
            value("C"),
        ),
    ),
    ["ORDERS", "CUSTOMER"],
    "Orders-per-customer via an equality-correlated nested COUNT; the "
    "outer-join zero groups exist with C = 0 (scalar context).",
))

# Q14: promotion effect.
_add(_spec(
    "Q14",
    sum_over(
        [],
        join(
            LINEITEM,
            cmp("sdate", ">=", 1200),
            cmp("sdate", "<", 1230),
            PART,
            cmp("ptype", "<", 10),
            REVENUE,
        ),
    ),
    ["LINEITEM"],
    "The promo-revenue ratio is reduced to its numerator; the "
    "LINEITEM⋈PART join and tight date window remain.",
))

# Q15: top supplier — revenue vs. MAX(revenue): an uncorrelated
# inequality nested aggregate ⇒ re-evaluation per batch (like Q11).
_LI2 = rel("LINEITEM", "okey2", "pkey2", "skey2", "qty2", "eprice2",
           "disc2", "sdate2", "rflag2", "lstatus2", "smode2")
_LI3 = rel("LINEITEM", "okey3", "pkey3", "skey3", "qty3", "eprice3",
           "disc3", "sdate3", "rflag3", "lstatus3", "smode3")
_add(_spec(
    "Q15",
    sum_over(
        ["skey"],
        join(
            exists(sum_over(["skey"], SUPPLIER)),
            assign(
                "G",
                sum_over([], join(
                    _LI2, cmp("skey", "==", "skey2"),
                    cmp("sdate2", ">=", 1000), cmp("sdate2", "<", 1090),
                    value(mul("eprice2", sub(100, "disc2"))),
                )),
            ),
            assign(
                "X",
                sum_over([], join(
                    _LI3,
                    cmp("sdate3", ">=", 1000), cmp("sdate3", "<", 1090),
                    value(mul("eprice3", sub(100, "disc3"))),
                )),
            ),
            cmp(mul("G", 20), ">", "X"),
            value("G"),
        ),
    ),
    ["LINEITEM"],
    "MAX(total_revenue) becomes a global-fraction threshold — the same "
    "uncorrelated inequality-nested class, re-evaluated per batch.",
))

# Q16: parts/supplier relationship — NOT IN (complaint suppliers).
_SUP2 = rel("SUPPLIER", "skey2", "snkey2", "sacctbal2")
_add(_spec(
    "Q16",
    sum_over(
        ["brand", "ptype", "psize"],
        join(
            PARTSUPP,
            PART,
            cmp("brand", "!=", 3),
            cmp("psize", "<=", 25),
            assign(
                "X",
                sum_over([], join(
                    _SUP2,
                    cmp("skey", "==", "skey2"),
                    cmp("sacctbal2", "<", 0),
                )),
            ),
            cmp("X", "==", 0),
        ),
    ),
    ["PARTSUPP", "SUPPLIER"],
    "NOT IN (suppliers with complaints) becomes NOT EXISTS(negative "
    "account balance); COUNT(DISTINCT suppkey) simplified to COUNT.",
))

# Q17: small-quantity-order revenue — THE flagship for domain
# extraction: l_quantity < 0.2 * AVG(l_quantity) per part.
_add(_spec(
    "Q17",
    sum_over(
        [],
        join(
            LINEITEM,
            PART,
            cmp("brand", "==", 4),
            cmp("container", "==", 11),
            assign(
                "S",
                sum_over([], join(
                    _LI2, cmp("pkey", "==", "pkey2"), value("qty2"),
                )),
            ),
            assign(
                "C",
                sum_over([], join(_LI2, cmp("pkey", "==", "pkey2"))),
            ),
            cmp(mul(mul("qty", "C"), 5), "<", "S"),
            value("eprice"),
        ),
    ),
    ["LINEITEM"],
    "AVG = SUM/COUNT via two equality-correlated nested aggregates; "
    "qty < 0.2·AVG becomes 5·qty·C < S in integer arithmetic.",
))

# Q18: large volume customers — groupwise HAVING SUM(qty) > 300.
_add(_spec(
    "Q18",
    sum_over(
        ["okey"],
        join(
            ORDERS,
            CUSTOMER,
            LINEITEM,
            assign(
                "S",
                sum_over([], join(
                    _LI2, cmp("okey", "==", "okey2"), value("qty2"),
                )),
            ),
            cmp("S", ">", 300),
            value("qty"),
        ),
    ),
    ["LINEITEM", "ORDERS", "CUSTOMER"],
    "HAVING SUM(l_quantity) > 300 as an equality-correlated nested "
    "aggregate over the 3-way join.",
))

# Q19: discounted revenue — three disjunctive branches.
def _q19_branch(brand: int, qmin: int, size_max: int):
    return join(
        cmp("brand", "==", brand),
        cmp("qty", ">=", qmin),
        cmp("qty", "<=", qmin + 10),
        cmp("psize", "<=", size_max),
    )


_add(_spec(
    "Q19",
    sum_over(
        [],
        join(
            LINEITEM,
            PART,
            union(
                _q19_branch(12, 1, 5),
                _q19_branch(23, 10, 10),
                _q19_branch(34, 20, 15),
            ),
            REVENUE,
        ),
    ),
    ["LINEITEM"],
    "The three OR-branches keep their disjunctive union form over "
    "LINEITEM⋈PART.",
))

# Q20: potential part promotion — availqty > 0.5·SUM(l_quantity)
# correlated on (pkey, skey); pre-aggregation projects LINEITEM and
# PARTSUPP batches onto suppkey (tiny domain ⇒ the 2,243x of Fig. 7).
_add(_spec(
    "Q20",
    sum_over(
        ["skey"],
        join(
            PARTSUPP,
            assign(
                "S",
                sum_over([], join(
                    _LI2,
                    cmp("pkey", "==", "pkey2"),
                    cmp("skey", "==", "skey2"),
                    cmp("sdate2", ">=", 1000),
                    cmp("sdate2", "<", 1365),
                    value("qty2"),
                )),
            ),
            cmp(mul("availqty", 2), ">", "S"),
        ),
    ),
    ["LINEITEM", "PARTSUPP"],
    "availqty > 0.5·SUM(qty) over the (pkey, skey)-correlated nested "
    "aggregate; the supplier-name join is dropped, the skey projection "
    "(small active domain) is the effect under study.",
))

# Q21: suppliers who kept orders waiting — EXISTS + NOT EXISTS pair.
_add(_spec(
    "Q21",
    sum_over(
        ["skey"],
        join(
            SUPPLIER,
            LINEITEM,
            cmp("rflag", "==", 1),
            ORDERS,
            cmp("opri", "==", 0),
            assign(
                "E",
                sum_over([], join(
                    _LI2,
                    cmp("okey", "==", "okey2"),
                    cmp("skey2", "!=", "skey"),
                )),
            ),
            cmp("E", "!=", 0),
            assign(
                "N",
                sum_over([], join(
                    _LI3,
                    cmp("okey", "==", "okey3"),
                    cmp("skey3", "!=", "skey"),
                    cmp("rflag3", "==", 1),
                )),
            ),
            cmp("N", "==", 0),
        ),
    ),
    ["LINEITEM", "ORDERS"],
    "The EXISTS(other supplier) / NOT EXISTS(other late supplier) pair "
    "is kept verbatim; 'late' is coded as rflag = 1.",
))

# Q22: global sales opportunity — rich customers with no orders,
# counted by country code.  Two nested aggregates, exactly as in the
# SQL: the *uncorrelated* AVG(acctbal) threshold (expressed as
# acctbal·COUNT > SUM to stay integral) forces per-batch re-evaluation
# for CUSTOMER updates, which large batches amortize; the *correlated*
# NOT EXISTS(orders) stays incrementally maintainable via domain
# extraction, and the ORDERS batch pre-aggregates onto ckey2 — the two
# mechanisms behind Fig. 7's 4,319x.
_CUST3 = rel("CUSTOMER", "ckey3", "nkey3", "mkt3", "acctbal3", "phone3")
_add(_spec(
    "Q22",
    sum_over(
        ["phone"],
        join(
            CUSTOMER,
            cmp("phone", "<", 17),
            cmp("acctbal", ">", 0),
            assign(
                "S",
                sum_over(
                    [],
                    join(
                        _CUST3,
                        cmp("acctbal3", ">", 0),
                        cmp("phone3", "<", 17),
                        value("acctbal3"),
                    ),
                ),
            ),
            assign(
                "C",
                sum_over(
                    [],
                    join(
                        _CUST3,
                        cmp("acctbal3", ">", 0),
                        cmp("phone3", "<", 17),
                    ),
                ),
            ),
            cmp(mul("acctbal", "C"), ">", "S"),
            assign(
                "X",
                sum_over([], join(_ORD2, cmp("ckey", "==", "ckey2"))),
            ),
            cmp("X", "==", 0),
            value("acctbal"),
        ),
    ),
    ["ORDERS", "CUSTOMER"],
    "The substring(c_phone) country filter is an integer comparison; "
    "AVG(acctbal) is expressed as the integral acctbal*COUNT > SUM "
    "pair of uncorrelated assignments (re-evaluation class for "
    "CUSTOMER updates); the NOT EXISTS(orders) condition is kept "
    "verbatim and stays incremental via domain extraction.",
))
