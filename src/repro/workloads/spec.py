"""Query specification metadata shared by both workloads."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.query.ast import Expr


@dataclass
class QuerySpec:
    """One benchmark query: its algebra, metadata, and streaming setup.

    ``notes`` records how the query was adapted from the original SQL
    (single aggregate, integer-coded categories, substitutions for
    MIN/MAX or OUTER JOIN); DESIGN.md §1 explains why the adaptations
    preserve the structural properties the paper's evaluation studies.
    """

    name: str
    query: Expr
    #: relations that receive update streams (others are static)
    updatable: frozenset[str]
    #: per-relation key columns, decreasing cardinality (Section 6.2)
    key_hints: dict[str, tuple[str, ...]] = field(default_factory=dict)
    notes: str = ""

    def __repr__(self) -> str:
        return f"QuerySpec({self.name})"


def as_query_spec(
    source,
    *,
    name: str | None = None,
    catalog: dict[str, tuple[str, ...]] | None = None,
    updatable: frozenset[str] | None = None,
    key_hints: dict[str, tuple[str, ...]] | None = None,
) -> QuerySpec:
    """Coerce any view definition into a :class:`QuerySpec`.

    This is the single creation path shared by the backend registry,
    the view service, and the harness.  ``source`` may be:

    * a :class:`QuerySpec` — returned as-is (renamed/re-scoped via
      :func:`dataclasses.replace` when ``name``/``updatable`` are given);
    * a query-algebra :class:`~repro.query.ast.Expr`;
    * a SQL string, parsed against ``catalog`` (table name -> column
      names).

    ``updatable`` defaults to every base relation the query references,
    so ad-hoc views receive triggers for all their inputs.
    """
    if isinstance(source, QuerySpec):
        changes = {}
        if name is not None and name != source.name:
            changes["name"] = name
        if updatable is not None and updatable != source.updatable:
            changes["updatable"] = frozenset(updatable)
        if key_hints is not None:
            changes["key_hints"] = dict(key_hints)
        return replace(source, **changes) if changes else source

    if isinstance(source, str):
        from repro.query.sqlfront import sql_to_spec

        if catalog is None:
            raise TypeError(
                "a SQL view definition needs a catalog (table name -> "
                "column names); pass catalog=... or register the tables "
                "with the service first"
            )
        return sql_to_spec(
            name or "ADHOC", source, catalog,
            updatable=updatable, key_hints=key_hints,
        )

    if isinstance(source, Expr):
        from repro.query.schema import base_relations

        if updatable is None:
            updatable = base_relations(source)
        return QuerySpec(
            name=name or "ADHOC",
            query=source,
            updatable=frozenset(updatable),
            key_hints=dict(key_hints or {}),
        )

    raise TypeError(
        f"cannot build a QuerySpec from {type(source).__name__}: expected "
        "a QuerySpec, a query Expr, or a SQL string"
    )
