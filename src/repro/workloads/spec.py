"""Query specification metadata shared by both workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import Expr


@dataclass
class QuerySpec:
    """One benchmark query: its algebra, metadata, and streaming setup.

    ``notes`` records how the query was adapted from the original SQL
    (single aggregate, integer-coded categories, substitutions for
    MIN/MAX or OUTER JOIN); DESIGN.md §1 explains why the adaptations
    preserve the structural properties the paper's evaluation studies.
    """

    name: str
    query: Expr
    #: relations that receive update streams (others are static)
    updatable: frozenset[str]
    #: per-relation key columns, decreasing cardinality (Section 6.2)
    key_hints: dict[str, tuple[str, ...]] = field(default_factory=dict)
    notes: str = ""

    def __repr__(self) -> str:
        return f"QuerySpec({self.name})"
