"""Streaming-adapted TPC-DS queries (the paper's 13-query subset).

The subset from [23] used by the paper — Q3, Q7, Q19, Q27, Q34, Q42,
Q43, Q46, Q52, Q55, Q68, Q73, Q79 — consists of star-schema
aggregations: STORE_SALES joined with dimension tables under dimension
filters.  The queries below keep each query's dimension set, filter
selectivity, and group-by domain; categorical values are integer-coded
and one aggregate stands in for multi-aggregate outputs.
"""

from __future__ import annotations

from repro.query import assign, cmp, exists, join, rel, sum_over, value
from repro.query.builder import mul
from repro.workloads.schema import TPCDS_KEY_HINTS, TPCDS_TABLES
from repro.workloads.spec import QuerySpec


def _rel(name: str):
    return rel(name, *TPCDS_TABLES[name])


STORE_SALES = _rel("STORE_SALES")
DATE_DIM = _rel("DATE_DIM")
ITEM = _rel("ITEM")
STORE = _rel("STORE")
CUSTOMER_D = _rel("CUSTOMER_D")
HOUSEHOLD = _rel("HOUSEHOLD")

#: the common measure: quantity-weighted sales price
SALES = value(mul("ss_qty", "ss_price"))

TPCDS_QUERIES: dict[str, QuerySpec] = {}


def _add(name, query, updatable, notes):
    TPCDS_QUERIES[name] = QuerySpec(
        name=name,
        query=query,
        updatable=frozenset(updatable),
        key_hints=TPCDS_KEY_HINTS,
        notes=notes,
    )


# Q3: brand sales by year for one manager's items in one month.
_add(
    "Q3",
    sum_over(
        ["d_year", "i_brand"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_moy", "==", 11),
            ITEM, cmp("i_manager", "==", 1), SALES,
        ),
    ),
    ["STORE_SALES"],
    "sales ⋈ date ⋈ item with manager/month filters, grouped by "
    "(year, brand) — the original shape.",
)

# Q7: average quantities for one demographic band.
_add(
    "Q7",
    sum_over(
        ["ikey"],
        join(
            STORE_SALES, CUSTOMER_D, cmp("cd_band", "==", 3),
            DATE_DIM, cmp("d_year", "==", 2000), ITEM, SALES,
        ),
    ),
    ["STORE_SALES"],
    "Demographic-filtered item aggregate; the 4 AVG aggregates are "
    "reduced to one SUM.",
)

# Q19: brand revenue for one month, store/customer locality filter.
_add(
    "Q19",
    sum_over(
        ["i_brand"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_moy", "==", 2),
            cmp("d_year", "==", 1999), ITEM, cmp("i_manager", "<", 10),
            STORE, cmp("st_state", "!=", 5), SALES,
        ),
    ),
    ["STORE_SALES"],
    "The zip-code mismatch locality filter becomes a state filter.",
)

# Q27: aggregates by item and state for one demographic.
_add(
    "Q27",
    sum_over(
        ["ikey", "st_state"],
        join(
            STORE_SALES, CUSTOMER_D, cmp("cd_band", "==", 7),
            DATE_DIM, cmp("d_year", "==", 2001), STORE, ITEM, SALES,
        ),
    ),
    ["STORE_SALES"],
    "Four-dimension star join grouped by (item, state).",
)

# Q34: households with many items in a county band (EXISTS flavor).
_SS2 = rel("STORE_SALES", "dkey2", "ikey2", "stkey2", "cdkey2",
           "hdkey2", "ss_qty2", "ss_price2", "ss_profit2")
_add(
    "Q34",
    sum_over(
        ["cdkey"],
        join(
            STORE_SALES, STORE, cmp("st_county", "<", 8),
            HOUSEHOLD, cmp("hd_dep", ">=", 2),
            assign(
                "B",
                sum_over([], join(
                    _SS2, cmp("cdkey", "==", "cdkey2"), value("ss_qty2"),
                )),
            ),
            cmp("B", ">", 15),
        ),
    ),
    ["STORE_SALES"],
    "The buy-count-between-15-and-20 HAVING becomes an equality-"
    "correlated nested SUM threshold per customer.",
)

# Q42: category sales for one year/month.
_add(
    "Q42",
    sum_over(
        ["i_category"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_moy", "==", 12),
            cmp("d_year", "==", 1998), ITEM, SALES,
        ),
    ),
    ["STORE_SALES"],
    "Category aggregate over sales ⋈ date ⋈ item.",
)

# Q43: store sales by day-of-week → day-of-month here.
_add(
    "Q43",
    sum_over(
        ["stkey", "d_dom"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_year", "==", 2000),
            STORE, SALES,
        ),
    ),
    ["STORE_SALES"],
    "Day-of-week pivot becomes a (store, day) group-by.",
)

# Q46: customers buying in specific demographic/store conditions.
_add(
    "Q46",
    sum_over(
        ["cdkey"],
        join(
            STORE_SALES, HOUSEHOLD, cmp("hd_vehicle", ">=", 2),
            STORE, cmp("st_county", "<", 15),
            DATE_DIM, cmp("d_dom", "<=", 7),
            value("ss_profit"),
        ),
    ),
    ["STORE_SALES"],
    "Profit by customer under household/store/date filters; the "
    "city-mismatch condition is dropped.",
)

# Q52: brand revenue, one month of one year (like Q42 by brand).
_add(
    "Q52",
    sum_over(
        ["i_brand"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_moy", "==", 11),
            cmp("d_year", "==", 2000), ITEM, SALES,
        ),
    ),
    ["STORE_SALES"],
    "Brand revenue for one month.",
)

# Q55: brand revenue for one manager.
_add(
    "Q55",
    sum_over(
        ["i_brand"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_moy", "==", 11),
            ITEM, cmp("i_manager", "==", 28), SALES,
        ),
    ),
    ["STORE_SALES"],
    "Brand revenue for one manager's items.",
)

# Q68: customer purchases with household and date filters.
_add(
    "Q68",
    sum_over(
        ["cdkey", "stkey"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_dom", "<=", 2),
            STORE, cmp("st_county", "<", 4),
            HOUSEHOLD, cmp("hd_dep", "==", 4),
            SALES,
        ),
    ),
    ["STORE_SALES"],
    "Customer/store purchase totals under tight dimension filters.",
)

# Q73: households with medium buy counts (like Q34, tighter).
_add(
    "Q73",
    sum_over(
        ["cdkey"],
        join(
            STORE_SALES, STORE, cmp("st_county", "<", 5),
            HOUSEHOLD, cmp("hd_vehicle", ">", 0),
            assign(
                "B",
                sum_over([], join(
                    _SS2, cmp("cdkey", "==", "cdkey2"),
                )),
            ),
            cmp("B", ">", 1),
            cmp("B", "<", 5),
        ),
    ),
    ["STORE_SALES"],
    "Buy-count band via an equality-correlated nested COUNT.",
)

# Q79: customer profit per store for large-dependency households.
_add(
    "Q79",
    sum_over(
        ["cdkey", "stkey"],
        join(
            STORE_SALES, DATE_DIM, cmp("d_dom", "<=", 10),
            STORE, HOUSEHOLD, cmp("hd_dep", ">=", 6),
            value("ss_profit"),
        ),
    ),
    ["STORE_SALES"],
    "Profit by (customer, store) for high-dependency households.",
)
