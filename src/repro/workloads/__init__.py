"""Workloads: TPC-H / TPC-DS-style schemas, data, streams, and queries.

The paper evaluates on streaming-modified TPC-H and TPC-DS workloads.
This package provides seeded synthetic equivalents (DESIGN.md §1): the
schemas keep the key relationships and value domains that drive the
paper's effects, data generators scale table cardinalities
proportionally, and streams are synthesized by round-robin interleaving
of insertions chunked into per-relation batches of a chosen size.
"""

from repro.workloads.schema import TPCH_TABLES, TPCDS_TABLES
from repro.workloads.datagen import generate_tpch, generate_tpcds, generate_workload
from repro.workloads.streams import (
    load_database,
    stream_batches,
    stream_batches_with_deletions,
)
from repro.workloads.spec import QuerySpec, as_query_spec
from repro.workloads.tpch_queries import TPCH_QUERIES
from repro.workloads.tpcds_queries import TPCDS_QUERIES
from repro.workloads.micro import (
    MICRO_BASE_CARDINALITIES,
    MICRO_QUERIES,
    MICRO_TABLES,
    generate_micro,
)

__all__ = [
    "TPCH_TABLES",
    "TPCDS_TABLES",
    "generate_tpch",
    "generate_tpcds",
    "generate_micro",
    "generate_workload",
    "stream_batches",
    "stream_batches_with_deletions",
    "load_database",
    "QuerySpec",
    "as_query_spec",
    "TPCH_QUERIES",
    "TPCDS_QUERIES",
    "MICRO_QUERIES",
    "MICRO_TABLES",
    "MICRO_BASE_CARDINALITIES",
]
