"""Seeded synthetic data generation.

All generators are deterministic given (scale factor, seed), produce
referentially consistent foreign keys, and keep the value domains the
queries' predicates were designed against (see schema.py).  Monetary
values are kept integral to avoid float-noise in equality tests.
"""

from __future__ import annotations

import random

from repro.workloads.schema import (
    TPCDS_BASE_CARDINALITIES,
    TPCDS_TABLES,
    TPCH_BASE_CARDINALITIES,
    TPCH_TABLES,
)

#: One simulated calendar: ~7 years of day numbers.
DATE_MIN, DATE_MAX = 0, 2554


def _count(base: int, sf: float, floor: int = 1) -> int:
    return max(floor, int(base * sf))


def generate_tpch(
    sf: float = 0.001, seed: int = 42
) -> dict[str, list[tuple]]:
    """Generate a TPC-H-style database at the given scale factor."""
    rng = random.Random(seed)
    n = {t: _count(c, sf) for t, c in TPCH_BASE_CARDINALITIES.items()}
    n["NATION"] = min(25, max(5, n["NATION"]))
    n["REGION"] = 5

    tables: dict[str, list[tuple]] = {t: [] for t in TPCH_TABLES}

    tables["REGION"] = [(r,) for r in range(n["REGION"])]
    tables["NATION"] = [
        (k, rng.randrange(n["REGION"])) for k in range(n["NATION"])
    ]
    tables["SUPPLIER"] = [
        (k, rng.randrange(n["NATION"]), rng.randint(-999, 9999))
        for k in range(n["SUPPLIER"])
    ]
    tables["CUSTOMER"] = [
        (
            k,
            rng.randrange(n["NATION"]),
            rng.randrange(5),          # mktsegment
            rng.randint(-999, 9999),   # acctbal
            rng.randint(10, 34),       # phone country code
        )
        for k in range(n["CUSTOMER"])
    ]
    tables["PART"] = [
        (
            k,
            rng.randrange(25),   # brand
            rng.randrange(50),   # type
            rng.randint(1, 50),  # size
            rng.randrange(40),   # container
        )
        for k in range(n["PART"])
    ]
    # At tiny scale factors the unique (part, supplier) key space can be
    # smaller than the target cardinality; cap to keep generation finite.
    n["PARTSUPP"] = min(n["PARTSUPP"], n["PART"] * n["SUPPLIER"])
    seen_ps = set()
    while len(tables["PARTSUPP"]) < n["PARTSUPP"]:
        key = (rng.randrange(n["PART"]), rng.randrange(n["SUPPLIER"]))
        if key in seen_ps:
            continue
        seen_ps.add(key)
        tables["PARTSUPP"].append(
            key + (rng.randint(1, 9999), rng.randint(1, 1000))
        )
    tables["ORDERS"] = [
        (
            k,
            rng.randrange(n["CUSTOMER"]),
            rng.randint(DATE_MIN, DATE_MAX),
            rng.randrange(5),  # orderpriority
            rng.randrange(2),  # shippriority
        )
        for k in range(n["ORDERS"])
    ]
    lineitem = []
    for i in range(n["LINEITEM"]):
        okey = rng.randrange(n["ORDERS"])
        qty = rng.randint(1, 50)
        price_per_unit = rng.randint(900, 2100)
        lineitem.append(
            (
                okey,
                rng.randrange(n["PART"]),
                rng.randrange(n["SUPPLIER"]),
                qty,
                qty * price_per_unit,          # extendedprice
                rng.randint(0, 10),            # discount in percent
                rng.randint(DATE_MIN, DATE_MAX),
                rng.randrange(3),              # returnflag
                rng.randrange(2),              # linestatus
                rng.randrange(7),              # shipmode
            )
        )
    tables["LINEITEM"] = lineitem
    return tables


def generate_tpcds(
    sf: float = 0.001, seed: int = 7
) -> dict[str, list[tuple]]:
    """Generate a TPC-DS-style star-schema database."""
    rng = random.Random(seed)
    n = {t: _count(c, sf) for t, c in TPCDS_BASE_CARDINALITIES.items()}
    n["STORE"] = max(2, n["STORE"])
    n["DATE_DIM"] = max(30, n["DATE_DIM"])

    tables: dict[str, list[tuple]] = {t: [] for t in TPCDS_TABLES}
    tables["DATE_DIM"] = [
        (k, 1998 + (k // 365) % 7, 1 + (k // 30) % 12, 1 + k % 28)
        for k in range(n["DATE_DIM"])
    ]
    tables["ITEM"] = [
        (k, rng.randrange(100), rng.randrange(10), rng.randrange(40))
        for k in range(n["ITEM"])
    ]
    tables["STORE"] = [
        (k, rng.randrange(30), rng.randrange(10))
        for k in range(n["STORE"])
    ]
    tables["CUSTOMER_D"] = [
        (k, rng.randrange(20)) for k in range(n["CUSTOMER_D"])
    ]
    tables["HOUSEHOLD"] = [
        (k, rng.randint(0, 9), rng.randint(0, 4))
        for k in range(n["HOUSEHOLD"])
    ]
    tables["STORE_SALES"] = [
        (
            rng.randrange(n["DATE_DIM"]),
            rng.randrange(n["ITEM"]),
            rng.randrange(n["STORE"]),
            rng.randrange(n["CUSTOMER_D"]),
            rng.randrange(n["HOUSEHOLD"]),
            rng.randint(1, 100),       # quantity
            rng.randint(1, 20000),     # price (cents)
            rng.randint(-5000, 5000),  # profit
        )
        for _ in range(n["STORE_SALES"])
    ]
    return tables


def generate_workload(
    workload: str, sf: float, seed: int = 42
) -> dict[str, list[tuple]]:
    """Dispatch on the workload name — the single name->generator
    mapping shared by the harness runners."""
    if workload == "tpch":
        return generate_tpch(sf=sf, seed=seed)
    if workload == "tpcds":
        return generate_tpcds(sf=sf, seed=seed)
    if workload == "micro":
        from repro.workloads.micro import generate_micro

        return generate_micro(sf=sf, seed=seed)
    raise ValueError(f"unknown workload {workload!r}")
