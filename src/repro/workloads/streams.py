"""Stream synthesis (paper Section 6, "Query and Data Workload").

Streams are synthesized from a generated database by interleaving
insertions to the base relations in round-robin fashion; a larger table
keeps emitting after smaller ones are exhausted, so relative arrival
rates track relative cardinalities.  The interleaved tuple stream is
then chunked into per-relation batches of the requested size (the
paper forms input batches up front, outside the measured window).
"""

from __future__ import annotations

from typing import Iterator

from repro.eval import Database
from repro.ring import GMR


def load_database(tables: dict[str, list[tuple]]) -> Database:
    """Load a generated dataset directly into a Database (no stream)."""
    db = Database()
    for name, rows in tables.items():
        db.insert_rows(name, rows)
    return db


def interleave(tables: dict[str, list[tuple]]) -> Iterator[tuple[str, tuple]]:
    """Round-robin interleaving of insertions across relations."""
    iters = {name: iter(rows) for name, rows in tables.items() if rows}
    order = sorted(iters)
    while iters:
        exhausted = []
        for name in order:
            it = iters.get(name)
            if it is None:
                continue
            row = next(it, None)
            if row is None:
                exhausted.append(name)
            else:
                yield name, row
        for name in exhausted:
            del iters[name]


def stream_batches(
    tables: dict[str, list[tuple]],
    batch_size: int,
    relations: frozenset[str] | None = None,
) -> Iterator[tuple[str, GMR]]:
    """Chunk the interleaved stream into per-relation update batches.

    ``relations`` restricts which tables are streamed (others can be
    pre-loaded as static dimension tables); batches mix no relations,
    matching the per-relation trigger interface.
    """
    buffers: dict[str, GMR] = {}
    counts: dict[str, int] = {}
    for name, row in interleave(tables):
        if relations is not None and name not in relations:
            continue
        buf = buffers.get(name)
        if buf is None:
            buf = buffers[name] = GMR()
            counts[name] = 0
        buf.add_tuple(tuple(row), 1)
        counts[name] += 1
        if counts[name] >= batch_size:
            yield name, buf
            del buffers[name]
            del counts[name]
    for name in sorted(buffers):
        if not buffers[name].is_zero():
            yield name, buffers[name]


def stream_batches_with_deletions(
    tables: dict[str, list[tuple]],
    batch_size: int,
    relations: frozenset[str] | None = None,
    delete_fraction: float = 0.2,
    seed: int = 0,
) -> Iterator[tuple[str, GMR]]:
    """Mixed insert/delete stream (footnote 3: "ΔR can contain both
    insertions and deletions").

    Roughly ``delete_fraction`` of the events are deletions of tuples
    inserted earlier in the same stream, chosen uniformly from the live
    set; a batch can therefore net out to fewer — or negative —
    multiplicities per tuple, exercising the engines' full generality.
    """
    import random

    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must be in [0, 1)")
    rng = random.Random(seed)
    live: dict[str, list[tuple]] = {}
    buffers: dict[str, GMR] = {}
    counts: dict[str, int] = {}

    def emit(name: str, t: tuple, m: int) -> Iterator[tuple[str, GMR]]:
        buf = buffers.get(name)
        if buf is None:
            buf = buffers[name] = GMR()
            counts[name] = 0
        buf.add_tuple(t, m)
        counts[name] += 1
        if counts[name] >= batch_size:
            out = buffers.pop(name)
            del counts[name]
            if not out.is_zero():
                yield name, out

    for name, row in interleave(tables):
        if relations is not None and name not in relations:
            continue
        rows = live.setdefault(name, [])
        if rows and rng.random() < delete_fraction:
            victim_idx = rng.randrange(len(rows))
            victim = rows[victim_idx]
            rows[victim_idx] = rows[-1]
            rows.pop()
            yield from emit(name, victim, -1)
        rows.append(tuple(row))
        yield from emit(name, tuple(row), +1)
    for name in sorted(buffers):
        if not buffers[name].is_zero():
            yield name, buffers[name]
