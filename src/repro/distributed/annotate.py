"""The well-formedness annotator (paper Section 4.2).

Given partitioning information for every materialized view, the
annotator walks each statement's expression bottom-up, assigns location
tags, and inserts ``Repart`` / ``Scatter`` / ``Gather`` transformers
wherever an operator's operands are placed incompatibly — joins need
co-partitioning on shared keys, unions need a common location, and the
statement's RHS must end up where its target view lives.  The result is
*well-formed* but deliberately unoptimized (Example 4.1); the optimizer
then minimizes communication rounds.
"""

from __future__ import annotations

from repro.compiler.ir import Statement, TriggerProgram
from repro.distributed.program import DistStatement, DistTrigger, DistributedProgram
from repro.distributed.tags import (
    ANY,
    Dist,
    LOCAL,
    RANDOM,
    REPLICATED,
    Local,
    Random,
    Replicated,
    Tag,
    is_distributed,
)
from repro.query.ast import (
    Assign,
    DeltaRel,
    Exists,
    Expr,
    Gather,
    Join,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    is_expr,
)
from repro.query.schema import free_vars, out_cols, substitute


def default_partitioning(
    program: TriggerProgram,
    key_hints: dict[str, tuple[str, ...]] | None = None,
) -> dict[str, Tag]:
    """The paper's partitioning heuristic (Section 6.2).

    Views are partitioned on the primary key of a base table appearing
    in their schema; with several candidates, the one with the highest
    (assumed) cardinality wins — ``key_hints`` lists candidate key
    columns per relation in decreasing cardinality order.  Views whose
    schema contains no such key are small top-level aggregates and stay
    on the driver.
    """
    hints = key_hints or {}
    ranked: list[str] = []
    for cols in hints.values():
        for c in cols:
            if c not in ranked:
                ranked.append(c)
    spec: dict[str, Tag] = {}
    for info in program.views.values():
        chosen = None
        for key in ranked:
            match = _matching_key_column(key, info.cols)
            if match is not None:
                chosen = match
                break
        if chosen is None:
            spec[info.name] = LOCAL
        else:
            spec[info.name] = Dist((chosen,))
    return spec


def _matching_key_column(key: str, cols: tuple[str, ...]) -> str | None:
    """Find the view column carrying hint ``key``.

    Self-joins rename key columns by appending a numeric suffix
    (``pkey`` -> ``pkey2``); such a renamed occurrence is still the
    same base-table primary key, so the heuristic partitions on it.
    """
    if key in cols:
        return key
    for c in cols:
        if c.startswith(key) and c[len(key):].isdigit():
            return c
    return None


def annotate_program(
    program: TriggerProgram,
    partitioning: dict[str, Tag],
    delta_tag: Tag = LOCAL,
) -> DistributedProgram:
    """Annotate a local program into a well-formed distributed one.

    ``delta_tag`` is where raw update batches arrive — ``Local`` on the
    driver by default (Fig. 5's LOCAL DELTA statements); the cluster
    can also model worker-side ingestion (Section 6.2's experiment
    setup) at execution time.
    """
    triggers: dict[str, DistTrigger] = {}
    partitioning = dict(partitioning)
    for rel_name, trig in program.triggers.items():
        dtrig = DistTrigger(trig.relation, trig.rel_cols)
        # Batch-scoped temporaries (pre-aggregations) live where their
        # statement computes them; their tags are registered in the
        # shared partitioning map (names are trigger-unique).
        batch_tags: dict[str, Tag] = {}
        for stmt in trig.statements:
            ann = _Annotator(partitioning, batch_tags, delta_tag)
            expr, tag = ann.annotate(stmt.expr)
            if stmt.scope == "batch":
                # The temporary adopts the location its RHS naturally
                # produces — Random is acceptable here (per-worker
                # partial pre-aggregates); gathering a pre-aggregate to
                # the driver only to re-scatter it would be pure waste.
                target_tag = tag if tag is not ANY else LOCAL
                batch_tags[stmt.target] = target_tag
                partitioning[stmt.target] = target_tag
            else:
                target_tag = partitioning.get(stmt.target, LOCAL)
                expr = _coerce(expr, tag, target_tag)
            dtrig.statements.append(
                DistStatement(
                    stmt.target,
                    stmt.op,
                    stmt.target_cols,
                    expr,
                    stmt.scope,
                    target_tag,
                    "dist",  # recomputed by statement_mode below
                )
            )
        triggers[rel_name] = dtrig
    dprog = DistributedProgram(
        program, partitioning, triggers, delta_tag=delta_tag
    )
    for dtrig in triggers.values():
        for stmt in dtrig.statements:
            stmt.mode = statement_mode(stmt, partitioning)
    return dprog


def statement_mode(stmt: DistStatement, partitioning: dict[str, Tag]) -> str:
    """Execution mode (Section 4.3.2).

    Location transformers are always initiated by the driver, so
    transformer-rooted statements are local.  A computation statement
    is distributed exactly when its target or any referenced view lives
    on the workers; otherwise the driver runs it alone.
    """
    if isinstance(stmt.expr, (Repart, Scatter, Gather)):
        return "local"
    if is_distributed(stmt.target_tag):
        return "dist"
    refs: set[str] = set()
    _collect_ref_names(stmt.expr, refs)
    for name in refs:
        if is_distributed(partitioning.get(name, LOCAL)):
            return "dist"
    return "local"


def _collect_ref_names(e: Expr, acc: set[str]) -> None:
    if isinstance(e, (Rel, DeltaRel)):
        acc.add(e.name)
    from repro.query.ast import children

    for c in children(e):
        _collect_ref_names(c, acc)


def _collect_refs_with_positions(e: Expr) -> list[tuple[str, str, Expr]]:
    """Every Rel/DeltaRel node in the expression (deduplicated)."""
    out: list[tuple[str, str, Expr]] = []
    seen: set[Expr] = set()

    def visit(x: Expr) -> None:
        if isinstance(x, Rel):
            if x not in seen:
                seen.add(x)
                out.append(("rel", x.name, x))
            return
        if isinstance(x, DeltaRel):
            if x not in seen:
                seen.add(x)
                out.append(("delta", x.name, x))
            return
        from repro.query.ast import children

        for c in children(x):
            visit(c)

    visit(e)
    return out


def _equality_renames(e: Expr) -> dict[str, str]:
    """Column identifications a nested expression establishes.

    ``(B == B2)`` comparisons and ``(B := B2)`` value assignments tie
    an inner column to a correlation variable; the map sends each side
    to the other so partition keys can be translated outward.
    """
    from repro.query.ast import Cmp, Col, children

    out: dict[str, str] = {}

    def visit(x: Expr) -> None:
        if isinstance(x, Cmp) and x.op == "==":
            if isinstance(x.lhs, Col) and isinstance(x.rhs, Col):
                out[x.lhs.name] = x.rhs.name
                out[x.rhs.name] = x.lhs.name
        if isinstance(x, Assign) and isinstance(x.child, Col):
            out[x.child.name] = x.var
            out[x.var] = x.child.name
        for c in children(x):
            visit(c)

    visit(e)
    return out


class _Annotator:
    """Bottom-up tagging of one statement expression."""

    def __init__(
        self,
        partitioning: dict[str, Tag],
        batch_tags: dict[str, Tag],
        delta_tag: Tag,
    ):
        self.partitioning = partitioning
        self.batch_tags = batch_tags
        self.delta_tag = delta_tag

    # ------------------------------------------------------------------
    def annotate(self, e: Expr) -> tuple[Expr, Tag]:
        if isinstance(e, Rel):
            return e, self.partitioning.get(e.name, LOCAL)
        if isinstance(e, DeltaRel):
            return e, self.batch_tags.get(e.name, self.delta_tag)
        if isinstance(e, Join):
            return self._annotate_join(e)
        if isinstance(e, Union):
            return self._annotate_union(e)
        if isinstance(e, Sum):
            child, tag = self.annotate(e.child)
            new = Sum(e.group_by, child)
            if isinstance(tag, Dist):
                # Partial aggregates keep their partitioning only when
                # the partition key survives the projection.
                if set(tag.keys) <= set(e.group_by):
                    return new, tag
                return new, RANDOM
            return new, tag
        if isinstance(e, Exists):
            return self._annotate_nested(e)
        if isinstance(e, Assign) and is_expr(e.child):
            return self._annotate_nested(e)
        # Interpreted terms are location independent.
        return e, ANY

    # ------------------------------------------------------------------
    def _annotate_nested(self, e: Expr) -> tuple[Expr, Tag]:
        """Place a nested aggregate or domain expression (Q17's plan).

        Correlated subexpressions must evaluate *whole* wherever the
        outer tuple lives — transformers can never split them.  Inner
        views partitioned on a column that the child's equality
        predicates tie to a correlation variable stay in place (the
        nested lookup is then worker-local); every other inner
        reference is replicated, which is always correct and cheap for
        the delta-derived operands it applies to in practice.
        """
        child = e.child
        refs = _collect_refs_with_positions(child)
        tags = {
            name: self._ref_tag(kind, name)
            for kind, name, _ in refs
        }
        if not refs:
            return e, ANY
        if all(isinstance(t, Local) for t in tags.values()):
            return e, LOCAL

        iface = set(free_vars(e)) | set(out_cols(e))
        rename = _equality_renames(child)

        def translate(keys: tuple[str, ...]) -> tuple[str, ...] | None:
            out = []
            for k in keys:
                if k in iface:
                    out.append(k)
                elif k in rename and rename[k] in iface:
                    out.append(rename[k])
                else:
                    return None
            return tuple(out)

        pivot_keys: tuple[str, ...] | None = None
        for _, name, _ in refs:
            tag = tags[name]
            if isinstance(tag, Dist):
                t = translate(tag.keys)
                if t is not None:
                    pivot_keys = t
                    break

        # Reverse rename (outer -> inner) lets a reference be
        # repartitioned onto the pivot expressed in its *own* column
        # naming.  Co-partitioning is required for correctness whenever
        # the nested expression drives emission (domain expressions,
        # Exists deltas): a replicated operand would make every worker
        # emit tuples for keys it does not own, and the partitioned
        # ``+=`` target would then count them once per worker.
        reverse = {v: k for k, v in rename.items()}

        def keys_in_node(node) -> tuple[str, ...] | None:
            if pivot_keys is None:
                return None
            cols = set(node.cols)
            out = []
            for k in pivot_keys:
                if k in cols:
                    out.append(k)
                elif reverse.get(k) in cols:
                    out.append(reverse[k])
                else:
                    return None
            return tuple(out)

        replacements: dict[Expr, Expr] = {}
        any_distributed = False
        for kind, name, node in refs:
            tag = tags[name]
            local_keys = keys_in_node(node)
            if isinstance(tag, Dist):
                any_distributed = True
                if (
                    pivot_keys is not None
                    and translate(tag.keys) == pivot_keys
                ):
                    continue  # co-partitioned with the pivot: stays put
                replacements[node] = Repart(node, local_keys or ())
            elif isinstance(tag, Random):
                any_distributed = True
                replacements[node] = Repart(node, local_keys or ())
            elif isinstance(tag, Local):
                replacements[node] = Scatter(node, local_keys or ())
            # Replicated and ANY references stay as they are.
        new_child = substitute(child, replacements)
        new_e = (
            Exists(new_child)
            if isinstance(e, Exists)
            else Assign(e.var, new_child)
        )
        if pivot_keys is not None:
            return new_e, Dist(pivot_keys)
        if any_distributed or replacements:
            return new_e, REPLICATED
        return new_e, LOCAL

    def _ref_tag(self, kind: str, name: str) -> Tag:
        if kind == "rel":
            return self.partitioning.get(name, LOCAL)
        return self.batch_tags.get(name, self.delta_tag)

    # ------------------------------------------------------------------
    def _annotate_join(self, e: Join) -> tuple[Expr, Tag]:
        parts: list[Expr] = []
        acc_tag: Tag = ANY
        acc_cols: set[str] = set()
        for p in e.parts:
            ap, tag = self.annotate(p)
            # Key decisions below use *output* columns only: an operand
            # can never be hash-partitioned on one of its free
            # (correlation) variables — those are bound by earlier
            # operands, not carried in its materialized contents.
            p_out = set(out_cols(ap))
            if (
                isinstance(tag, Local)
                and free_vars(ap)
                and is_distributed(acc_tag)
            ):
                # A correlated subexpression cannot be moved standalone
                # (its free variables have no values outside the outer
                # tuple).  Replicate its interior references instead so
                # it evaluates whole on every worker.
                ap = self._replicate_interior(ap)
                tag = REPLICATED
            if not parts:
                parts.append(ap)
                acc_tag = tag
                acc_cols = p_out
                continue
            new_left, new_right, new_tag = _combine_join(
                _of_parts(parts), acc_tag, acc_cols, ap, tag, p_out,
                replicate_interior=self._replicate_interior,
            )
            parts = (
                list(new_left.parts)
                if isinstance(new_left, Join)
                else [new_left]
            )
            parts.append(new_right)
            acc_tag = new_tag
            acc_cols |= p_out
        return _of_parts(parts), acc_tag

    def _replicate_interior(self, e: Expr) -> Expr:
        """Replicate every materialized reference inside ``e``."""
        refs = _collect_refs_with_positions(e)
        replacements: dict[Expr, Expr] = {}
        for kind, name, node in refs:
            tag = self._ref_tag(kind, name)
            if isinstance(tag, Local):
                replacements[node] = Scatter(node, ())
            elif isinstance(tag, (Dist, Random)):
                replacements[node] = Repart(node, ())
        if not replacements:
            return e
        return substitute(e, replacements)

    def _annotate_union(self, e: Union) -> tuple[Expr, Tag]:
        annotated = [self.annotate(p) for p in e.parts]
        tags = [t for _, t in annotated if t is not ANY]
        if not tags:
            return Union(tuple(p for p, _ in annotated)), ANY
        # Bring every part to the first concrete tag.
        target = tags[0]
        if isinstance(target, Random):
            target = LOCAL
        parts = [
            _coerce(p, t, target) for p, t in annotated
        ]
        return Union(tuple(parts)), target


def _of_parts(parts: list[Expr]) -> Expr:
    if len(parts) == 1:
        return parts[0]
    return Join(tuple(parts))


# ----------------------------------------------------------------------
# Tag combination for joins
# ----------------------------------------------------------------------


def _combine_join(
    left: Expr,
    lt: Tag,
    lcols: set[str],
    right: Expr,
    rt: Tag,
    rcols: set[str],
    replicate_interior=None,
) -> tuple[Expr, Expr, Tag]:
    """Make two join operands location compatible.

    Returns possibly-wrapped operands and the result tag.  The
    well-formed constructor is cost-blind (Section 4.2): it fixes
    incompatibilities with the most direct transformer and leaves cost
    reduction to the optimizer.

    A Dist-pinned *nested* operand (Assign/Exists whose interior reads
    a partitioned view through a correlation) requires the driving side
    to be co-partitioned on the pivot keys: a nested aggregate does not
    gate emission (scalar context emits X = 0 too), so a worker
    evaluating a foreign key against its own partition would produce a
    wrong-but-nonzero contribution.  When co-partitioning is impossible
    the nested interior is replicated via ``replicate_interior`` and
    the whole join degrades to Replicated.
    """
    common = lcols & rcols
    nested_right = isinstance(right, (Assign, Exists))

    if rt is ANY:
        return left, right, lt
    if lt is ANY:
        return left, right, rt

    if isinstance(lt, Local) and isinstance(rt, Local):
        return left, right, LOCAL

    if isinstance(lt, Replicated) and isinstance(rt, Replicated):
        return left, right, REPLICATED
    if isinstance(lt, Replicated) and isinstance(rt, Dist):
        if nested_right:
            # A replicated driver would evaluate foreign keys against
            # local partitions; replicate the nested interior instead.
            return left, replicate_interior(right), REPLICATED
        return left, right, rt
    if isinstance(lt, Dist) and isinstance(rt, Replicated):
        return left, right, lt

    if isinstance(lt, Local) and is_distributed(rt):
        # Ship the local operand to the workers.
        if isinstance(rt, Dist) and set(rt.keys) <= lcols:
            return Scatter(left, rt.keys), right, rt
        if isinstance(rt, (Random,)):
            right = Repart(right, _pick_keys(common, rcols))
            rt = Dist(_pick_keys(common, rcols))
            return _combine_join(
                left, lt, lcols, right, rt, rcols, replicate_interior
            )
        if nested_right and isinstance(rt, Dist):
            # Cannot co-partition the local driver on the pivot keys.
            return (
                Scatter(left, ()),
                replicate_interior(right),
                REPLICATED,
            )
        # Broadcast the local side (keys=() replicates).
        return Scatter(left, ()), right, rt if isinstance(rt, Dist) else rt

    if is_distributed(lt) and isinstance(rt, Local):
        if isinstance(lt, Dist) and set(lt.keys) <= rcols:
            return left, Scatter(right, lt.keys), lt
        if isinstance(lt, Random):
            keys = _pick_keys(common, lcols)
            left = Repart(left, keys)
            lt = Dist(keys)
            return _combine_join(
                left, lt, lcols, right, rt, rcols, replicate_interior
            )
        return left, Scatter(right, ()), lt

    if isinstance(lt, Random):
        # Repartition the random operand directly onto the other
        # operand's keys when possible (Q17: "shuffles the result on
        # partkey"), otherwise onto a shared column.
        if isinstance(rt, Dist) and set(rt.keys) <= lcols:
            keys = rt.keys
        else:
            keys = _pick_keys(common, lcols)
        return _combine_join(
            Repart(left, keys), Dist(keys), lcols, right, rt, rcols,
            replicate_interior,
        )
    if isinstance(rt, Random):
        if isinstance(lt, Dist) and set(lt.keys) <= rcols:
            keys = lt.keys
        else:
            keys = _pick_keys(common, rcols)
        return _combine_join(
            left, lt, lcols, Repart(right, keys), Dist(keys), rcols,
            replicate_interior,
        )

    assert isinstance(lt, Dist) and isinstance(rt, Dist)
    if lt == rt:
        return left, right, lt
    if nested_right:
        # The nested operand is pinned to its pivot partitioning; the
        # driving side must be co-partitioned (it cannot be replicated:
        # nested aggregates do not gate emission).
        if set(rt.keys) <= lcols:
            return Repart(left, rt.keys), right, rt
        return (
            Repart(left, ()),
            replicate_interior(right),
            REPLICATED,
        )
    # Incompatible partitionings.  Delta-derived operands are small, so
    # replicating them beats reshuffling a whole materialized view (the
    # paper's Q3 replicates pre-aggregated CUSTOMER deltas).
    from repro.query.schema import delta_relations

    left_is_delta = bool(delta_relations(left))
    right_is_delta = bool(delta_relations(right))
    if right_is_delta and not left_is_delta:
        return left, Repart(right, ()), lt
    if left_is_delta and not right_is_delta:
        return Repart(left, ()), right, rt
    # Repartition one operand (Example 4.1 wraps the left one; the
    # optimizer may later flip the choice).
    if set(rt.keys) <= lcols:
        return Repart(left, rt.keys), right, rt
    if set(lt.keys) <= rcols:
        return left, Repart(right, lt.keys), lt
    if common:
        keys = _pick_keys(common, common)
        return Repart(left, keys), Repart(right, keys), Dist(keys)
    # Disjoint schemas (cartesian with a small side): replicate right.
    return left, Repart(right, ()), lt


def _pick_keys(common: set[str], fallback: set[str]) -> tuple[str, ...]:
    pool = common or fallback
    return (sorted(pool)[0],) if pool else ()


# ----------------------------------------------------------------------
# Root coercion
# ----------------------------------------------------------------------


def _coerce(expr: Expr, tag: Tag, target: Tag) -> Expr:
    """Wrap ``expr`` so its result lands where ``target`` requires."""
    if tag is ANY or tag == target:
        return expr
    if isinstance(target, Local):
        if is_distributed(tag):
            return Gather(expr)
        return expr
    if isinstance(target, Dist):
        if isinstance(tag, Local):
            return Scatter(expr, target.keys)
        if isinstance(tag, (Random, Replicated)):
            return Repart(expr, target.keys)
        if isinstance(tag, Dist):
            return Repart(expr, target.keys)
    if isinstance(target, Replicated):
        if isinstance(tag, Local):
            return Scatter(expr, ())
        return Repart(expr, ())
    raise ValueError(f"cannot coerce {tag!r} to {target!r}")
