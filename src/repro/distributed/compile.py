"""End-to-end distributed compilation (the pipeline of Figure 2).

``compile_distributed`` takes a query (or an already-compiled local
program), annotates it with partitioning information, optimizes at the
requested level, and returns a :class:`DistributedProgram` whose
triggers carry fused blocks and job plans, ready for execution on a
:class:`SimulatedCluster`.
"""

from __future__ import annotations

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.compiler.ir import TriggerProgram
from repro.distributed.annotate import annotate_program, default_partitioning
from repro.distributed.blocks import build_blocks, fuse_blocks
from repro.distributed.optimize import optimize_program
from repro.distributed.planner import plan_jobs
from repro.distributed.program import DistributedProgram
from repro.distributed.tags import RANDOM, Tag
from repro.query.ast import Expr, is_expr


def compile_distributed(
    query_or_program,
    name: str = "Q",
    partitioning: dict[str, Tag] | None = None,
    key_hints: dict[str, tuple[str, ...]] | None = None,
    opt_level: int = 3,
    worker_side_ingestion: bool = True,
    updatable: frozenset[str] | None = None,
) -> DistributedProgram:
    """Compile a query for distributed execution.

    * ``partitioning`` — explicit view tags; derived from ``key_hints``
      with the Section 6.2 heuristic when omitted.
    * ``opt_level`` — 0 (naive) through 3 (full), the Fig. 13 ablation.
    * ``worker_side_ingestion`` — batches arrive pre-partitioned at the
      workers (the paper's experiment setup); otherwise the driver
      ingests and scatters them.
    """
    if is_expr(query_or_program):
        program = compile_query(query_or_program, name, updatable=updatable)
        program = apply_batch_preaggregation(program)
    else:
        program = query_or_program

    if partitioning is None:
        partitioning = default_partitioning(program, key_hints)

    delta_tag = RANDOM if worker_side_ingestion else None
    if delta_tag is None:
        from repro.distributed.tags import LOCAL

        delta_tag = LOCAL

    dprog = annotate_program(program, partitioning, delta_tag=delta_tag)
    dprog = optimize_program(dprog, level=opt_level)

    for trig in dprog.triggers.values():
        blocks = build_blocks(trig.statements)
        if dprog.fuse_enabled:
            blocks = fuse_blocks(blocks)
        trig.blocks = blocks
        trig.jobs = plan_jobs(trig.blocks).jobs
    return dprog
