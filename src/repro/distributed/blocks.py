"""Statement blocks and the block fusion algorithm (paper §4.3.2, App. C.3).

Distributed statements are expensive to launch (closure serialization,
shipping, per-worker completion waits), so consecutive distributed
statements are packed into *blocks* executed as one unit; local blocks
group the network operations the driver can batch together.  Data-flow
dependencies constrain reordering: two statements commute when neither
reads the other's written map; the fusion algorithm repeatedly merges
the head block with every later same-mode block that commutes with all
blocks in between (the exact recursion of Appendix C.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.program import DistStatement
from repro.query.ast import DeltaRel, Expr, Rel, children


@dataclass
class Block:
    """A sequence of same-mode statements executed as one unit."""

    mode: str  # 'local' or 'dist'
    statements: list[DistStatement] = field(default_factory=list)

    def __repr__(self) -> str:
        body = "; ".join(s.target for s in self.statements)
        return f"Block({self.mode}: {body})"


def _rhs_maps(stmt: DistStatement) -> set[str]:
    acc: set[str] = set()

    def visit(e: Expr) -> None:
        if isinstance(e, (Rel, DeltaRel)):
            acc.add(e.name)
        for c in children(e):
            visit(c)

    visit(stmt.expr)
    return acc


def statements_commute(s1: DistStatement, s2: DistStatement) -> bool:
    """The commutativity check of Appendix C.3, plus a write-write
    hazard for replacement statements (``:=`` does not commute with
    any other write to the same map; ``+=``s to the same map do)."""
    if s1.lhs_map in _rhs_cache(s2) or s2.lhs_map in _rhs_cache(s1):
        return False
    if s1.lhs_map == s2.lhs_map and (s1.op == ":=" or s2.op == ":="):
        return False
    return True


# DistStatement gets lightweight accessors used by the algorithm.
def _lhs_map(self) -> str:
    return self.target


DistStatement.lhs_map = property(_lhs_map)


def _rhs_cache(stmt: DistStatement) -> set[str]:
    # Cached on the statement itself: id()-keyed global caches corrupt
    # across object lifetimes, and statements are immutable once the
    # block phase starts.
    cached = getattr(stmt, "_rhs_maps_cache", None)
    if cached is None:
        cached = _rhs_maps(stmt)
        stmt._rhs_maps_cache = cached
    return cached


def blocks_commute(b1: Block, b2: Block) -> bool:
    return all(
        statements_commute(lhs, rhs)
        for lhs in b1.statements
        for rhs in b2.statements
    )


def build_blocks(statements: list[DistStatement]) -> list[Block]:
    """Promote each statement into its own block (the starting point of
    the fusion algorithm)."""
    return [Block(s.mode, [s]) for s in statements]


def _merge_into_head(
    head: Block, tail: list[Block]
) -> tuple[Block, list[Block]]:
    """Fold every later block that shares the head's mode and commutes
    with all blocks left between them into the head (App. C.3
    ``mergeIntoHead``)."""
    rest: list[Block] = []
    for b in tail:
        if head.mode == b.mode and all(blocks_commute(r, b) for r in rest):
            head = Block(head.mode, head.statements + b.statements)
        else:
            rest.append(b)
    return head, rest


def fuse_blocks(blocks: list[Block]) -> list[Block]:
    """The recursive ``merge`` of Appendix C.3."""
    if not blocks:
        return []
    head, tail = blocks[0], blocks[1:]
    head2, tail2 = _merge_into_head(head, tail)
    if len(head2.statements) == len(head.statements):
        return [head] + fuse_blocks(tail)
    return fuse_blocks([head2] + tail2)
