"""Distributed view maintenance (paper Section 4).

The pipeline mirrors Figure 2: a local trigger program is *annotated*
with location tags given partitioning information, *optimized* (push
and simplification rules of Figs. 3–4, single transformer form,
location-aware CSE/DCE), grouped into statement *blocks* fused by the
Appendix C.3 algorithm, *planned* into jobs and stages, and finally
executed on a simulated synchronous cluster.
"""

from repro.distributed.tags import Dist, Local, Random, Replicated, Tag
from repro.distributed.program import DistributedProgram, DistStatement
from repro.distributed.annotate import annotate_program, default_partitioning
from repro.distributed.optimize import optimize_program
from repro.distributed.blocks import Block, fuse_blocks, build_blocks
from repro.distributed.planner import plan_jobs, JobPlan
from repro.distributed.cluster import ClusterMetrics, CostModel, SimulatedCluster
from repro.distributed.checkpoint import (
    CheckpointPolicy,
    FailureInjector,
    FaultTolerantCluster,
    RecoveryEvent,
)
from repro.distributed.compile import compile_distributed
from repro.distributed.partitioning import (
    PartitioningAdvisor,
    PartitioningCandidate,
    PartitioningCost,
    candidate_partitionings,
    estimate_partitioning_cost,
)

__all__ = [
    "Dist",
    "Local",
    "Random",
    "Replicated",
    "Tag",
    "DistributedProgram",
    "DistStatement",
    "annotate_program",
    "default_partitioning",
    "optimize_program",
    "Block",
    "build_blocks",
    "fuse_blocks",
    "plan_jobs",
    "JobPlan",
    "ClusterMetrics",
    "CostModel",
    "SimulatedCluster",
    "CheckpointPolicy",
    "FailureInjector",
    "FaultTolerantCluster",
    "RecoveryEvent",
    "compile_distributed",
    "PartitioningAdvisor",
    "PartitioningCandidate",
    "PartitioningCost",
    "candidate_partitionings",
    "estimate_partitioning_cost",
]
