"""Partitioning-strategy exploration (paper Section 6.2, DESIGN.md §8).

The paper partitions each view "on the primary key of a base table
appearing in the view schema", picks the highest-cardinality key among
candidates, and leaves better strategies as future work ("might benefit
from previous work on database partitioning [15, 31]").  This module
exposes that future-work hook:

* :func:`candidate_partitionings` — enumerates meaningfully different
  strategies for a compiled program (the default heuristic, each
  alternative key column, replicate-small-views, driver-everything);
* :func:`estimate_partitioning_cost` — static cost: communication
  rounds and reshuffle statements the annotator+optimizer produce under
  a strategy;
* :class:`PartitioningAdvisor` — ranks candidates by static cost, with
  an optional measured pass on the simulated cluster.

It also holds the *data* half of partitioning —
:func:`hash_partition` / :func:`round_robin_partition` — shared by
every executor that physically splits GMRs among workers (the
simulated cluster and the process-parallel coordinator), so the two
backends can never drift apart on placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import TriggerProgram
from repro.distributed.annotate import annotate_program, default_partitioning
from repro.distributed.blocks import build_blocks, fuse_blocks
from repro.distributed.optimize import optimize_program, transformer_count
from repro.distributed.planner import plan_jobs
from repro.distributed.program import DistributedProgram
from repro.distributed.tags import (
    Dist,
    LOCAL,
    RANDOM,
    REPLICATED,
    Tag,
    partition_of,
)
from repro.ring import GMR


def hash_partition(
    contents: GMR, cols: list, keys, n_workers: int
) -> list[GMR]:
    """Split ``contents`` among ``n_workers`` by hashing ``keys``.

    ``keys == ()`` means replicate: every worker receives a full copy
    (broadcast semantics, used for small pre-aggregated deltas).
    """
    parts = [GMR() for _ in range(n_workers)]
    if not keys:
        for w in range(n_workers):
            parts[w] = GMR(dict(contents.data))
        return parts
    positions = [cols.index(k) for k in keys]
    for t, m in contents.items():
        w = partition_of(tuple(t[p] for p in positions), n_workers)
        parts[w].add_tuple(t, m)
    return parts


def round_robin_partition(batch: GMR, n_workers: int) -> list[GMR]:
    """Split a batch evenly with no partitioning invariant (the
    Random-tagged worker-side ingestion of update streams)."""
    parts = [GMR() for _ in range(n_workers)]
    for i, (t, m) in enumerate(batch.items()):
        parts[i % n_workers].add_tuple(t, m)
    return parts


@dataclass
class PartitioningCandidate:
    """One named strategy: view name -> location tag."""

    name: str
    tags: dict[str, Tag]

    def describe(self) -> str:
        parts = ", ".join(
            f"{view}:{tag!r}" for view, tag in sorted(self.tags.items())
        )
        return f"{self.name}({parts})"


@dataclass
class PartitioningCost:
    """Static cost of a compiled strategy (lower tuple = better)."""

    candidate: str
    transformers: int
    jobs: int
    stages: int
    gathers_of_views: int

    @property
    def key(self) -> tuple[int, int, int, int]:
        return (self.transformers, self.stages, self.jobs, self.gathers_of_views)


def candidate_partitionings(
    program: TriggerProgram,
    key_hints: dict[str, tuple[str, ...]] | None = None,
) -> list[PartitioningCandidate]:
    """Enumerate distinct strategies for a compiled program.

    Always includes the paper's heuristic (``default``); adds one
    variant per alternative partitioning key that appears in several
    view schemas, a ``replicate-dims`` variant (small views replicated
    instead of partitioned), and ``driver-only`` (everything Local —
    the degenerate no-scale-out baseline).
    """
    hints = key_hints or {}
    out = [
        PartitioningCandidate(
            "default", default_partitioning(program, hints)
        )
    ]

    # One candidate per alternative key column: partition every view
    # containing that column on it, everything else on the driver.
    ranked: list[str] = []
    for cols in hints.values():
        for c in cols:
            if c not in ranked:
                ranked.append(c)
    for key in ranked[1:4]:  # the default already uses ranked[0] first
        tags: dict[str, Tag] = {}
        used = False
        for info in program.views.values():
            if key in info.cols:
                tags[info.name] = Dist((key,))
                used = True
            else:
                tags[info.name] = LOCAL
        if used:
            out.append(PartitioningCandidate(f"key-{key}", tags))

    # Replicate the small (dimension-derived, low-degree) views.
    default_tags = default_partitioning(program, hints)
    repl: dict[str, Tag] = {}
    changed = False
    for info in program.views.values():
        tag = default_tags.get(info.name, LOCAL)
        if isinstance(tag, Dist) and info.degree <= 1:
            repl[info.name] = REPLICATED
            changed = True
        else:
            repl[info.name] = tag
    if changed:
        out.append(PartitioningCandidate("replicate-dims", repl))

    out.append(
        PartitioningCandidate(
            "driver-only",
            {info.name: LOCAL for info in program.views.values()},
        )
    )
    return out


def estimate_partitioning_cost(
    program: TriggerProgram,
    candidate: PartitioningCandidate,
    opt_level: int = 3,
) -> tuple[PartitioningCost, DistributedProgram]:
    """Compile under the candidate and read off the static plan cost."""
    from repro.query.ast import Gather, Rel

    dprog = annotate_program(program, dict(candidate.tags), delta_tag=RANDOM)
    dprog = optimize_program(dprog, level=opt_level)

    transformers = 0
    gathers_of_views = 0
    jobs = 0
    stages = 0
    for trig in dprog.triggers.values():
        for stmt in trig.statements:
            transformers += transformer_count(stmt.expr)
            if isinstance(stmt.expr, Gather) and isinstance(
                stmt.expr.child, Rel
            ):
                gathers_of_views += 1
        blocks = build_blocks(trig.statements)
        if dprog.fuse_enabled:
            blocks = fuse_blocks(blocks)
        trig.blocks = blocks
        plan = plan_jobs(blocks)
        trig.jobs = plan.jobs
        jobs = max(jobs, plan.n_jobs)
        stages = max(stages, plan.n_stages)

    cost = PartitioningCost(
        candidate=candidate.name,
        transformers=transformers,
        jobs=jobs,
        stages=stages,
        gathers_of_views=gathers_of_views,
    )
    return cost, dprog


@dataclass
class PartitioningAdvisor:
    """Ranks partitioning strategies for one maintenance program."""

    program: TriggerProgram
    key_hints: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def rank(self) -> list[PartitioningCost]:
        """All candidates by static cost, cheapest first.

        ``driver-only`` always compiles (no transformers at all) but
        offers no scale-out; it is reported last regardless of its
        static cost, since its per-driver compute is unbounded.
        """
        costs = []
        driver_only = None
        for cand in candidate_partitionings(self.program, self.key_hints):
            cost, _ = estimate_partitioning_cost(self.program, cand)
            if cand.name == "driver-only":
                driver_only = cost
            else:
                costs.append(cost)
        costs.sort(key=lambda c: c.key)
        if driver_only is not None:
            costs.append(driver_only)
        return costs

    def best(self) -> tuple[PartitioningCost, DistributedProgram]:
        """The cheapest scale-out strategy, compiled and ready to run."""
        ranking = self.rank()
        best_name = ranking[0].candidate
        for cand in candidate_partitionings(self.program, self.key_hints):
            if cand.name == best_name:
                return estimate_partitioning_cost(self.program, cand)
        raise RuntimeError("ranking produced an unknown candidate")
