"""Checkpointing and failure recovery (paper Section 4, DESIGN.md §8).

The paper's distributed runtime "naturally leverages the fault
tolerance mechanisms of the underlying execution platform": periodic
checkpoints of the materialized state to reliable storage shorten
recovery, at a latency cost the user must tune.  This module makes
that trade-off measurable on the simulated cluster:

* :class:`CheckpointPolicy` — checkpoint every N batches; the cost
  model charges serialization + write bandwidth for the full
  distributed state;
* :class:`FailureInjector` — deterministic worker-failure schedule;
* :class:`FaultTolerantCluster` — wraps a :class:`SimulatedCluster`,
  takes checkpoints, and on failure restores the last snapshot and
  replays the suffix of the update log.  Results after recovery are
  identical to a failure-free run (exactly-once maintenance), which the
  tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.cluster import CostModel, SimulatedCluster
from repro.distributed.program import DistributedProgram
from repro.eval import Database
from repro.ring import GMR
from repro.storage.columnar import estimate_gmr_bytes


@dataclass
class CheckpointPolicy:
    """When and how expensively state is checkpointed.

    ``interval`` in batches; ``None`` disables checkpointing entirely
    (recovery then replays the whole stream from batch 0).
    """

    interval: int | None = 10
    #: reliable-storage write bandwidth per worker (HDFS in the paper)
    write_bytes_per_s: float = 2.0e8
    #: fixed coordination cost per checkpoint
    fixed_s: float = 0.050


@dataclass
class FailureInjector:
    """Deterministic failure schedule: batch index -> failing worker."""

    failures: dict[int, int] = field(default_factory=dict)

    def failing_worker(self, batch_index: int, n_workers: int) -> int | None:
        w = self.failures.get(batch_index)
        if w is None:
            return None
        return w % n_workers


@dataclass
class RecoveryEvent:
    """One recovery: what it cost and how much work was replayed."""

    batch_index: int
    failed_worker: int
    restored_from: int  # checkpoint batch index (-1 = stream start)
    replayed_batches: int
    recovery_latency_s: float


class FaultTolerantCluster:
    """A simulated cluster with checkpoint/replay fault tolerance."""

    def __init__(
        self,
        program: DistributedProgram,
        n_workers: int,
        policy: CheckpointPolicy | None = None,
        injector: FailureInjector | None = None,
        cost_model: CostModel | None = None,
        seed: int = 7,
    ):
        self.cluster = SimulatedCluster(
            program, n_workers, cost_model=cost_model, seed=seed
        )
        self.policy = policy or CheckpointPolicy()
        self.injector = injector or FailureInjector()
        self.checkpoint_latencies_s: list[float] = []
        self.recoveries: list[RecoveryEvent] = []

        self._batch_index = 0
        self._log: list[tuple[str, GMR]] = []
        self._snapshot: tuple[int, list[Database], Database] | None = None
        self._initial: tuple[list[Database], Database] | None = None

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        return self.cluster.metrics

    @property
    def workers(self):
        return self.cluster.workers

    @property
    def driver(self):
        return self.cluster.driver

    def view(self, name: str) -> GMR:
        return self.cluster.view(name)

    def snapshot(self) -> GMR:
        return self.cluster.snapshot()

    def result(self) -> GMR:
        """Deprecated alias of :meth:`snapshot` (kept for parity with
        :meth:`repro.exec.ExecutionBackend.result`)."""
        import warnings

        warnings.warn(
            "FaultTolerantCluster.result() is deprecated; call snapshot()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.snapshot()

    # ------------------------------------------------------------------
    # Batch processing with checkpoints and failures
    # ------------------------------------------------------------------
    def on_batch(self, relation: str, batch: GMR) -> float:
        """Process one batch; handles any injected failure first."""
        if self._initial is None:
            # Capture the post-initialization state so recovery without
            # checkpoints can replay from the stream start.
            self._initial = self._copy_state()

        latency = 0.0
        failed = self.injector.failing_worker(
            self._batch_index, self.cluster.n_workers
        )
        if failed is not None:
            latency += self._recover(failed)

        latency += self.cluster.on_batch(relation, batch)
        self._log.append((relation, GMR(dict(batch.data))))

        interval = self.policy.interval
        if interval is not None and (self._batch_index + 1) % interval == 0:
            cp = self._take_checkpoint()
            latency += cp
            # Checkpoint time extends the batch's observed latency.
            self.cluster.metrics.latencies_s[-1] += cp

        self._batch_index += 1
        return latency

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _copy_state(self) -> tuple[list[Database], Database]:
        workers = [db.copy() for db in self.cluster.workers]
        driver = self.cluster.driver.copy()
        return workers, driver

    def _state_bytes(self) -> int:
        total = 0
        for db in self.cluster.workers:
            for g in db.views.values():
                total += estimate_gmr_bytes(g)
        for g in self.cluster.driver.views.values():
            total += estimate_gmr_bytes(g)
        return total

    def _take_checkpoint(self) -> float:
        workers, driver = self._copy_state()
        self._snapshot = (self._batch_index, workers, driver)
        self._log.clear()
        per_worker = self._state_bytes() / max(1, self.cluster.n_workers)
        latency = (
            self.policy.fixed_s + per_worker / self.policy.write_bytes_per_s
        )
        self.checkpoint_latencies_s.append(latency)
        return latency

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, failed_worker: int) -> float:
        """Restore the last snapshot and replay the logged suffix.

        The failed worker's state is lost; because distributed state is
        hash-partitioned (not replicated), the deterministic recovery
        is a rollback of *all* state to the snapshot plus replay — the
        checkpoint-based recovery model of Spark-style lineage systems.
        """
        if self._snapshot is not None:
            restored_from, workers, driver = self._snapshot
            self.cluster.workers = [db.copy() for db in workers]
            self.cluster.driver = driver.copy()
        else:
            restored_from = -1
            workers, driver = self._initial
            self.cluster.workers = [db.copy() for db in workers]
            self.cluster.driver = driver.copy()

        replay = list(self._log)
        self._log.clear()
        replay_latency = 0.0
        for relation, batch in replay:
            replay_latency += self.cluster.on_batch(relation, batch)
            self._log.append((relation, batch))
            # Replayed batches are recovery work, not throughput: drop
            # their metric entries so per-batch accounting stays 1:1
            # with the logical stream.
            self.cluster.metrics.latencies_s.pop()
            self.cluster.metrics.batches -= 1

        event = RecoveryEvent(
            batch_index=self._batch_index,
            failed_worker=failed_worker,
            restored_from=restored_from,
            replayed_batches=len(replay),
            recovery_latency_s=replay_latency,
        )
        self.recoveries.append(event)
        return replay_latency
