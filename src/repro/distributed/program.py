"""Containers for distributed maintenance programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import TriggerProgram
from repro.distributed.tags import Tag
from repro.query.ast import Expr
from repro.ring import GMR


def ref_cols(e: Expr) -> tuple[str, ...]:
    """Column names of a Rel/DeltaRel reference (the only operands a
    location transformer may have — single transformer form)."""
    from repro.query.ast import DeltaRel, Rel

    if isinstance(e, (Rel, DeltaRel)):
        return e.cols
    raise TypeError(f"not a reference: {e!r}")


def apply_store(db, target: str, op: str, scope: str, value: GMR) -> None:
    """Install one statement's result under the shared store semantics.

    Used by every executor of distributed statements (simulated-cluster
    driver and workers, multiproc coordinator and workers): batch-scoped
    results land in the delta namespace, ``+=`` merges into the view,
    ``:=`` replaces its contents with a defensive copy.
    """
    if scope == "batch":
        db.set_delta(target, value)
    elif op == "+=":
        db.get_view(target).add_inplace(value)
    else:
        db.set_view(target, GMR(dict(value.data)))


@dataclass
class DistStatement:
    """A location-annotated statement.

    ``mode`` is the execution mode of Section 4.3.2: ``"local"``
    statements run on the driver (including every location transformer,
    which the driver initiates), ``"dist"`` statements run on every
    worker against its partitions.
    """

    target: str
    op: str  # '+=' or ':='
    target_cols: tuple[str, ...]
    expr: Expr
    scope: str  # 'view' or 'batch'
    target_tag: Tag
    mode: str  # 'local' or 'dist'

    def __repr__(self) -> str:
        mode = self.mode.upper()
        return (
            f"{mode} {self.target}[{self.target_tag!r}] "
            f"{self.op} {self.expr!r}"
        )


@dataclass
class DistTrigger:
    relation: str
    rel_cols: tuple[str, ...]
    statements: list[DistStatement] = field(default_factory=list)
    #: filled by the block/plan phases
    blocks: list = field(default_factory=list)
    jobs: list = field(default_factory=list)


@dataclass
class DistributedProgram:
    """A fully compiled distributed maintenance program."""

    local_program: TriggerProgram
    #: view name -> location tag; also holds the tags of batch-scoped
    #: temporaries (pre-aggregates, materializations, moved contents)
    partitioning: dict[str, Tag]
    triggers: dict[str, DistTrigger]
    #: whether the cluster fuses blocks (the O2 switch of Fig. 13)
    fuse_enabled: bool = True
    #: where raw update batches arrive.  Deltas live in a separate
    #: namespace, so a base relation's batch location is NOT
    #: ``partitioning[R]`` — that is the *view* R's tag.
    delta_tag: Tag | None = None

    def tag_of_ref(self, name: str, is_delta: bool) -> Tag | None:
        """Location of a Rel/DeltaRel reference, namespace-aware.

        Batch-scoped temporaries (pre-aggregates, moved contents) are
        registered in ``partitioning`` under their unique names; only
        raw base-relation deltas resolve to ``delta_tag``.
        """
        if is_delta and name in self.local_program.base_relations:
            return self.delta_tag
        return self.partitioning.get(name)

    @property
    def top_view(self) -> str:
        return self.local_program.top_view

    def describe(self) -> str:
        lines = [
            f"-- distributed program for {self.local_program.query_name}"
        ]
        for name, tag in sorted(self.partitioning.items()):
            lines.append(f"--   {name}: {tag!r}")
        for trig in self.triggers.values():
            lines.append(f"ON UPDATE {trig.relation}:")
            if trig.blocks:
                for b in trig.blocks:
                    lines.append(f"  BLOCK {b.mode.upper()}:")
                    for s in b.statements:
                        lines.append(f"    {s!r}")
            else:
                for s in trig.statements:
                    lines.append(f"  {s!r}")
        return "\n".join(lines)
