"""Location tags (paper Section 4.2).

* :class:`Local` — the result lives on the driver node.
* :class:`Dist` — the result is hash-partitioned among all workers by a
  tuple of key columns.
* :class:`Replicated` — every worker holds a full copy (the paper's
  partitioning functions may map a tuple to a *set* of nodes; full
  replication is the case used for small broadcast operands).
* :class:`Random` — distributed with no usable partitioning invariant
  (e.g. partial aggregates grouped on non-partition columns); joins on
  Random operands are disallowed and force a repartition.

Interpreted terms (constants, values, comparisons, value assignments)
are location independent; :data:`ANY` marks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TyUnion


@dataclass(frozen=True)
class Local:
    def __repr__(self) -> str:
        return "Local"


@dataclass(frozen=True)
class Dist:
    keys: tuple[str, ...]

    def __repr__(self) -> str:
        return f"Dist[{', '.join(self.keys)}]"


@dataclass(frozen=True)
class Replicated:
    def __repr__(self) -> str:
        return "Replicated"


@dataclass(frozen=True)
class Random:
    def __repr__(self) -> str:
        return "Random"


@dataclass(frozen=True)
class _Any:
    """Location-independent (interpreted relations)."""

    def __repr__(self) -> str:
        return "Any"


Tag = TyUnion[Local, Dist, Replicated, Random, _Any]

LOCAL = Local()
REPLICATED = Replicated()
RANDOM = Random()
ANY = _Any()


def is_distributed(tag: Tag) -> bool:
    return isinstance(tag, (Dist, Replicated, Random))


def partition_of(tuple_key: tuple, n_workers: int) -> int:
    """The hash partitioning function shared by every Dist view.

    Python's builtin ``hash`` is salted per-process for strings, which
    would make runs unrepeatable; a small FNV-1a keeps partition
    assignment deterministic.
    """
    h = 0xCBF29CE484222325
    for v in tuple_key:
        for b in repr(v).encode():
            h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h % n_workers
