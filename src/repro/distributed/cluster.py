"""The simulated synchronous cluster (Spark substitute; see DESIGN.md §1).

A deterministic driver/worker simulator: the driver holds Local views,
every worker holds its hash partition of each Dist view (or a full copy
of Replicated temporaries).  Distributed blocks execute on each
worker's partition in turn; location transformers move byte-accounted
data between driver and workers.  Latency is *modeled*, not measured:

    stage latency = max(per-worker compute) + sync(n_workers) + shuffle

where per-worker compute converts the evaluator's virtual-instruction
count, sync grows linearly with the worker count (the paper's Q6
isolates this term: 65 ms at 50 workers → 386 ms at 1,000), and shuffle
charges per-byte bandwidth plus a per-round fixed cost.  An optional
straggler factor multiplies the slowest worker, reproducing the paper's
observation that shuffle-heavy queries at scale suffer 1.5–3x
stragglers.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field

from repro.distributed.blocks import Block, build_blocks, fuse_blocks
from repro.distributed.partitioning import (
    hash_partition,
    round_robin_partition,
)
from repro.distributed.planner import JobPlan, plan_jobs
from repro.distributed.program import (
    DistStatement,
    DistributedProgram,
    apply_store,
    ref_cols as _ref_cols,
)
from repro.distributed.tags import (
    Dist,
    Local,
    Replicated,
    Random,
    Tag,
    is_distributed,
)
from repro.compiler.plancache import compile_program
from repro.eval import CompiledEvaluator, Database, Evaluator
from repro.exec.backend import ExecutionBackend
from repro.metrics import Counters
from repro.query.ast import DeltaRel, Expr, Gather, Rel, Repart, Scatter
from repro.ring import GMR
from repro.storage.columnar import estimate_gmr_bytes


@dataclass
class CostModel:
    """Latency-model constants (calibrated to the paper's Q6 curve)."""

    #: seconds per virtual instruction on one worker
    seconds_per_instruction: float = 2.0e-9
    #: fixed driver overhead per job launch
    job_overhead_s: float = 0.020
    #: per-worker synchronization cost per stage (drives the Q6 curve)
    sync_per_worker_s: float = 0.00035
    #: fixed cost per stage (task shipping, scheduling)
    stage_overhead_s: float = 0.010
    #: network bandwidth per worker for shuffles
    shuffle_bytes_per_s: float = 1.0e9
    #: fixed per-shuffle-round latency
    shuffle_round_s: float = 0.015
    #: multiplier applied to the slowest worker when stragglers strike
    straggler_factor: float = 2.0
    #: probability a stage suffers a straggler, scaled by shuffle size
    straggler_prob_per_mb: float = 0.02


@dataclass
class ClusterMetrics:
    """Per-run accounting."""

    batches: int = 0
    jobs: int = 0
    stages: int = 0
    shuffled_bytes: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def median_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        return ordered[len(ordered) // 2]

    @property
    def total_latency_s(self) -> float:
        return sum(self.latencies_s)

    def throughput_tuples_per_s(self, tuples: int) -> float:
        total = self.total_latency_s
        return tuples / total if total > 0 else 0.0


class SimulatedCluster(ExecutionBackend):
    """Executes a :class:`DistributedProgram` batch by batch."""

    def __init__(
        self,
        program: DistributedProgram,
        n_workers: int,
        cost_model: CostModel | None = None,
        preload_batches: bool = True,
        seed: int = 7,
        use_compiled: bool = True,
        counters: Counters | None = None,
    ):
        self.program = program
        self.n_workers = n_workers
        self.cost = cost_model or CostModel()
        #: cluster-wide totals: every block's per-worker (and driver)
        #: operation counts are merged here, so harness-level virtual
        #: throughput works for this backend like for the local engines.
        self.counters = counters if counters is not None else Counters()
        #: paper §6.2: workers receive their share of the input stream
        #: directly, bypassing the driver; False routes batches through
        #: the driver's Scatter statements instead.
        self.preload_batches = preload_batches
        self.use_compiled = use_compiled
        #: statements are lowered once, program-wide; every worker (and
        #: the driver) runs the same lowered pipelines, so the per-batch
        #: block loop does no AST interpretation.
        self.plans = compile_program(program) if use_compiled else None
        self._rng = _random.Random(seed)

        self.driver = Database()
        self.workers = [Database() for _ in range(n_workers)]
        self.metrics = ClusterMetrics()

        # Plans are derived once per trigger.  Block fusion is the O2
        # switch of Fig. 13 and can be disabled on the program.
        self._plans: dict[str, tuple[list[Block], JobPlan]] = {}
        for rel_name, trig in program.triggers.items():
            blocks = build_blocks(trig.statements)
            if program.fuse_enabled:
                blocks = fuse_blocks(blocks)
            trig.blocks = blocks
            plan = plan_jobs(blocks)
            trig.jobs = plan.jobs
            self._plans[rel_name] = (blocks, plan)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        """Load a static database into the cluster's placed views.

        Every materialized view is computed once from ``base`` and
        installed according to its location tag, mirroring the local
        engines' ``initialize``.
        """
        evaluator = Evaluator(base)
        for info in self.program.local_program.views.values():
            contents = evaluator.evaluate(info.definition)
            if contents.is_zero():
                continue
            self.install_view(
                info.name, info.cols, contents,
                self.program.partitioning.get(info.name),
            )

    def install_view(
        self,
        name: str,
        cols: tuple[str, ...],
        contents: GMR,
        tag: Tag | None,
    ) -> None:
        """Install one view's contents according to its location tag."""
        if isinstance(tag, Dist):
            parts = self._partition(contents, list(cols), tag.keys)
            for w, part in enumerate(parts):
                self.workers[w].set_view(name, part)
        elif isinstance(tag, Replicated):
            for wdb in self.workers:
                wdb.set_view(name, GMR(dict(contents.data)))
        else:
            self.driver.set_view(name, contents)

    def _evaluator_for(self, db: Database, counters: Counters):
        if self.use_compiled:
            return CompiledEvaluator(db, counters, plans=self.plans)
        return Evaluator(db, counters)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _tag(self, name: str) -> Tag:
        return self.program.partitioning.get(name, Local())

    def _partition(self, contents: GMR, cols, keys) -> list[GMR]:
        return hash_partition(contents, cols, keys, self.n_workers)

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def on_batch(self, relation: str, batch: GMR) -> float:
        """Process one update batch; returns the modeled latency (s)."""
        trig = self.program.triggers[relation]
        blocks, plan = self._plans[relation]

        if self.preload_batches:
            # Workers already hold a random partition of the batch; the
            # driver keeps a reference for Local-tagged delta reads.
            shares = self._random_partition(batch)
            for w, share in enumerate(shares):
                self.workers[w].set_delta(relation, share)
        self.driver.set_delta(relation, batch)

        # Blocks execute strictly in fused order (data-flow safety);
        # job/stage structure only layers fixed overheads on top.
        latency = self.cost.job_overhead_s * plan.n_jobs
        self.metrics.jobs += plan.n_jobs
        shuffled = 0
        for block in blocks:
            block_latency, block_bytes = self._run_block(block, relation)
            latency += block_latency
            shuffled += block_bytes

        self._clear_batch(relation, trig)
        self.metrics.batches += 1
        self.metrics.stages += plan.n_stages
        self.metrics.shuffled_bytes += shuffled
        self.metrics.latencies_s.append(latency)
        return latency

    def _random_partition(self, batch: GMR) -> list[GMR]:
        return round_robin_partition(batch, self.n_workers)

    def _clear_batch(self, relation: str, trig) -> None:
        self.driver.clear_deltas()
        for w in self.workers:
            w.clear_deltas()

    # ------------------------------------------------------------------
    # Block execution
    # ------------------------------------------------------------------
    def _run_block(self, block: Block, relation: str) -> tuple[float, int]:
        if block.mode == "dist":
            return self._run_dist_block(block)
        return self._run_local_block(block)

    def _run_dist_block(self, block: Block) -> tuple[float, int]:
        """Every worker executes all statements on its partitions."""
        worker_times = []
        for w, wdb in enumerate(self.workers):
            counters = Counters()
            evaluator = self._evaluator_for(wdb, counters)
            for stmt in block.statements:
                value = evaluator.evaluate(stmt.expr)
                self._store(wdb, stmt, value)
            worker_times.append(
                counters.virtual_instructions()
                * self.cost.seconds_per_instruction
            )
            self.counters.merge(counters)
        compute = max(worker_times) if worker_times else 0.0
        sync = (
            self.cost.stage_overhead_s
            + self.cost.sync_per_worker_s * self.n_workers
        )
        return compute + sync, 0

    def _run_local_block(self, block: Block) -> tuple[float, int]:
        """The driver executes local computation and initiates every
        location transformer in the block; transformers of one block
        are coalesced into a single communication round (§4.4)."""
        latency = 0.0
        round_bytes = 0
        n_shuffles = 0
        counters = Counters()
        evaluator = self._evaluator_for(self.driver, counters)
        for stmt in block.statements:
            expr = stmt.expr
            if isinstance(expr, Scatter):
                moved = self._do_scatter(stmt, expr)
                round_bytes += moved
                n_shuffles += 1
            elif isinstance(expr, Repart):
                moved = self._do_repart(stmt, expr)
                round_bytes += moved
                n_shuffles += 1
            elif isinstance(expr, Gather):
                moved = self._do_gather(stmt, expr)
                round_bytes += moved
                n_shuffles += 1
            else:
                value = evaluator.evaluate(expr)
                self._store(self.driver, stmt, value)
        latency += (
            counters.virtual_instructions()
            * self.cost.seconds_per_instruction
        )
        self.counters.merge(counters)
        if n_shuffles:
            latency += self.cost.shuffle_round_s
            per_worker_bytes = round_bytes / max(1, self.n_workers)
            transfer = per_worker_bytes / self.cost.shuffle_bytes_per_s
            # Straggler model: large shuffles occasionally stall the round.
            mb = round_bytes / 1e6
            if self._rng.random() < self.cost.straggler_prob_per_mb * mb:
                transfer *= self.cost.straggler_factor
            latency += transfer
        return latency, round_bytes

    # ------------------------------------------------------------------
    # Transformer execution (actual data movement)
    # ------------------------------------------------------------------
    def _read_ref(self, db: Database, e: Expr) -> GMR:
        if isinstance(e, Rel):
            return db.get_view(e.name)
        if isinstance(e, DeltaRel):
            return db.get_delta(e.name)
        raise TypeError(
            f"single transformer form violated: transformer over {e!r}"
        )

    def _ref_is_delta(self, e: Expr) -> bool:
        return isinstance(e, DeltaRel)

    def _collect_distributed(self, e: Expr) -> GMR:
        """Collect a reference's full contents from the workers.

        Hash-partitioned and Random contents are the disjoint union of
        the worker partitions; replicated contents exist identically on
        every worker, so exactly one copy is taken (unioning replicas
        would multiply every multiplicity by the worker count).
        """
        name = e.name if isinstance(e, (Rel, DeltaRel)) else ""
        tag = self.program.tag_of_ref(name, isinstance(e, DeltaRel))
        if isinstance(tag, Replicated):
            if not self.workers:
                return GMR()
            return GMR(dict(self._read_ref(self.workers[0], e).data))
        total = GMR()
        for wdb in self.workers:
            total.add_inplace(self._read_ref(wdb, e))
        return total

    def _do_scatter(self, stmt: DistStatement, expr: Scatter) -> int:
        contents = self._read_ref(self.driver, expr.child)
        cols = _ref_cols(expr.child)
        parts = self._partition(GMR(dict(contents.data)), list(cols), expr.keys)
        moved = 0
        for w, part in enumerate(parts):
            moved += estimate_gmr_bytes(part)
            self._store_at_worker(self.workers[w], stmt, part)
        return moved

    def _do_repart(self, stmt: DistStatement, expr: Repart) -> int:
        source_tag = self._tag(
            expr.child.name if isinstance(expr.child, Rel) else ""
        )
        contents = self._collect_distributed(expr.child)
        cols = _ref_cols(expr.child)
        parts = self._partition(contents, list(cols), expr.keys)
        moved = 0
        for w, part in enumerate(parts):
            moved += estimate_gmr_bytes(part)
            self._store_at_worker(self.workers[w], stmt, part)
        return moved

    def _do_gather(self, stmt: DistStatement, expr: Gather) -> int:
        contents = self._collect_distributed(expr.child)
        moved = estimate_gmr_bytes(contents)
        self._store(self.driver, stmt, contents)
        return moved

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def _store(self, db: Database, stmt: DistStatement, value: GMR) -> None:
        apply_store(db, stmt.target, stmt.op, stmt.scope, value)

    def _store_at_worker(
        self, wdb: Database, stmt: DistStatement, part: GMR
    ) -> None:
        self._store(wdb, stmt, part)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def view(self, name: str) -> GMR:
        """Assemble a view's full contents (driver or union of workers)."""
        tag = self._tag(name)
        if isinstance(tag, Local):
            return self.driver.get_view(name)
        if isinstance(tag, Replicated):
            return self.workers[0].get_view(name) if self.workers else GMR()
        total = GMR()
        for wdb in self.workers:
            total.add_inplace(wdb.get_view(name))
        return total

    def snapshot(self) -> GMR:
        return self.view(self.program.top_view)


