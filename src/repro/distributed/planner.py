"""Job and stage planning (paper §6.2, Table 3).

After block fusion, a trigger's block list alternates between local
(driver) blocks and distributed blocks.  The planner maps that list to
the synchronous platform's execution units:

* every distributed block is one *stage* (a map/reduce-like phase run
  on every worker), plus one stage for every shuffle a local block
  initiates between distributed work (Repart statements);
* a *job* is a maximal run of stages the driver launches before it must
  synchronously collect or re-shuffle distributed results to decide the
  next round — i.e. a new job starts at each local block that consumes
  distributed output (Gather/Repart) and is followed by more
  distributed work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.blocks import Block
from repro.query.ast import Gather, Repart, Scatter
from repro.query.ast import children as ast_children


@dataclass
class JobPlan:
    """Planned execution of one trigger: jobs, each a list of stages."""

    jobs: list[list[Block]] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_stages(self) -> int:
        return sum(len(j) for j in self.jobs)


def _block_has(block: Block, kinds) -> bool:
    def visit(e) -> bool:
        if isinstance(e, kinds):
            return True
        return any(visit(c) for c in ast_children(e))

    return any(visit(s.expr) for s in block.statements)


def plan_jobs(blocks: list[Block]) -> JobPlan:
    """Group fused blocks into jobs and stages."""
    plan = JobPlan()
    current_job: list[Block] = []
    seen_dist_in_job = False
    for block in blocks:
        if block.mode == "dist":
            current_job.append(block)
            seen_dist_in_job = True
            continue
        # Local block: transformers consuming distributed output force
        # a synchronization point.
        consumes_dist = _block_has(block, (Gather, Repart))
        initiates_shuffle = _block_has(block, (Repart,))
        if consumes_dist and seen_dist_in_job:
            if initiates_shuffle:
                # A shuffle between distributed phases adds a stage but
                # stays within the driver's running job.
                current_job.append(block)
            else:
                # The driver collected results; the job ends here.
                plan.jobs.append(current_job)
                current_job = []
                seen_dist_in_job = False
        # Pure-local blocks (delta prep, scatters) carry no stage.
    if current_job:
        plan.jobs.append(current_job)
    if not plan.jobs:
        # Even a purely local trigger costs the driver one no-op round.
        plan.jobs.append([])
    return plan
