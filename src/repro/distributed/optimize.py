"""Distributed program optimization (paper Section 4.3).

Intra-statement optimization minimizes communication rounds: the
bidirectional push rules of Figure 3 move transformers through joins,
unions, Sums, and assignments, while the simplification rules of
Figure 4 cancel adjacent transformers.  The optimizer explores pushes
by trial and error, always keeping the expression with the fewest
transformers (ties broken by preferring to reshuffle delta-derived
operands and by avoiding Gathers — Section 4.3.1's heuristics).

Inter-statement optimization (Section 4.3.2) converts the program into
*single transformer form* — every statement carries at most one
transformer, applied to one materialized reference — then runs
location-aware common subexpression and dead code elimination to drop
redundant network transfers.
"""

from __future__ import annotations

from repro.distributed.program import DistStatement, DistTrigger, DistributedProgram
from repro.distributed.tags import Dist, LOCAL, Tag, is_distributed
from repro.query.ast import (
    Assign,
    DeltaRel,
    Expr,
    Gather,
    Join,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    children,
    is_expr,
    rebuild,
)
from repro.query.schema import delta_relations, out_cols

_TRANSFORMERS = (Repart, Scatter, Gather)


# ----------------------------------------------------------------------
# Cost metric and heuristics (Section 4.3.1)
# ----------------------------------------------------------------------


def transformer_count(e: Expr) -> int:
    n = 1 if isinstance(e, _TRANSFORMERS) else 0
    return n + sum(transformer_count(c) for c in children(e))


def _gather_count(e: Expr) -> int:
    n = 1 if isinstance(e, Gather) else 0
    return n + sum(_gather_count(c) for c in children(e))


def _shuffled_view_weight(e: Expr) -> int:
    """Heuristic tie-breaker: count transformers applied to whole
    materialized views (weight 1) vs. delta-derived operands (weight 0)
    — deltas are small, so reshuffling them is preferred."""
    w = 0
    if isinstance(e, _TRANSFORMERS):
        w += 0 if delta_relations(e.child if not isinstance(e, Gather) else e.child) else 1
    return w + sum(_shuffled_view_weight(c) for c in children(e))


def _cost(e: Expr) -> tuple[int, int, int]:
    return (transformer_count(e), _gather_count(e), _shuffled_view_weight(e))


# ----------------------------------------------------------------------
# Figure 4: simplification rules
# ----------------------------------------------------------------------


def simplify_transformers(
    e: Expr,
    partitioning: dict[str, Tag],
    raw_delta_names: frozenset[str] = frozenset(),
    delta_tag: Tag | None = None,
) -> Expr:
    """Apply the Figure 4 rules bottom-up until fixpoint.

    ``raw_delta_names``/``delta_tag`` resolve the tag of base-relation
    delta references: ``ΔR`` lives in the delta namespace, so its
    location is the ingestion tag, *not* ``partitioning[R]`` (which is
    the materialized view R).
    """
    prev = None
    while e != prev:
        prev = e
        e = _simplify_once(e, partitioning, raw_delta_names, delta_tag)
    return e


def _ref_tag(
    child: Expr,
    part: dict[str, Tag],
    raw_delta_names: frozenset[str],
    delta_tag: Tag | None,
) -> Tag | None:
    if isinstance(child, DeltaRel) and child.name in raw_delta_names:
        return delta_tag
    return part.get(child.name)


def _simplify_once(
    e: Expr,
    part: dict[str, Tag],
    raw_delta_names: frozenset[str],
    delta_tag: Tag | None,
) -> Expr:
    kids = children(e)
    if kids:
        e = rebuild(
            e,
            tuple(
                _simplify_once(c, part, raw_delta_names, delta_tag)
                for c in kids
            ),
        )

    if isinstance(e, Repart):
        child = e.child
        # Repart_P(Q^Dist(P)) => Q
        if isinstance(child, (Rel, DeltaRel)):
            tag = _ref_tag(child, part, raw_delta_names, delta_tag)
            if isinstance(tag, Dist) and tag.keys == e.keys:
                return child
        # Repart_P1 ∘ Repart_P2 => Repart_P1
        if isinstance(child, Repart):
            return Repart(child.child, e.keys)
        # Repart_P1 ∘ Scatter_P2 => Scatter_P1
        if isinstance(child, Scatter):
            return Scatter(child.child, e.keys)
    if isinstance(e, Gather):
        child = e.child
        # Gather(Q^Local) => Q
        if isinstance(child, (Rel, DeltaRel)) and isinstance(
            _ref_tag(child, part, raw_delta_names, delta_tag), type(LOCAL)
        ):
            return child
        # Gather ∘ Repart / Gather ∘ Scatter => Gather (or the local Q)
        if isinstance(child, Repart):
            return Gather(child.child)
        if isinstance(child, Scatter):
            # Scatter moved a local result out; gathering it back is
            # the identity on the local contents.
            return child.child
    if isinstance(e, Scatter):
        child = e.child
        # Scatter_P ∘ Gather => Repart_P
        if isinstance(child, Gather):
            return Repart(child.child, e.keys)
    return e


# ----------------------------------------------------------------------
# Figure 3: push rules + trial-and-error search
# ----------------------------------------------------------------------


def _push_down_once(e: Expr) -> list[Expr]:
    """All expressions obtainable by pushing one transformer one level
    down (the bidirectional rules of Figure 3, applied downward)."""
    out: list[Expr] = []
    from repro.query.schema import free_vars as _fv

    # Never push a transformer into a correlated subexpression: it
    # could not be evaluated (and thus moved) standalone.
    if isinstance(e, (Repart, Scatter)) and not _fv(e.child):
        keys = e.keys
        ctor = type(e)
        child = e.child
        if isinstance(child, Join):
            # Only operands carrying the partition keys can absorb the
            # transformer; interpreted factors are location independent.
            parts = list(child.parts)
            pushed = []
            ok = True
            for p in parts:
                if not out_cols(p):
                    pushed.append(p)  # interpreted: replicate freely
                elif set(keys) <= set(out_cols(p)) or not keys:
                    pushed.append(ctor(p, keys))
                else:
                    ok = False
                    break
            if ok:
                out.append(Join(tuple(pushed)))
        elif isinstance(child, Union):
            out.append(
                Union(tuple(ctor(p, keys) for p in child.parts))
            )
        elif isinstance(child, Sum):
            if set(keys) <= set(out_cols(child.child)):
                out.append(Sum(child.group_by, ctor(child.child, keys)))
        elif isinstance(child, Assign) and is_expr(child.child):
            out.append(Assign(child.var, ctor(child.child, keys)))
    if isinstance(e, Gather):
        child = e.child
        if isinstance(child, Union):
            out.append(Union(tuple(Gather(p) for p in child.parts)))
        elif isinstance(child, Assign) and is_expr(child.child):
            out.append(Assign(child.var, Gather(child.child)))
        # Gather does not push through joins or Sums: gathering join
        # operands changes where the join runs, and gathering under a
        # Sum would merge partial aggregates too early only sometimes —
        # the conservative rule set keeps correctness trivial.
    # Recurse: push transformers deeper in subtrees.
    kids = children(e)
    for i, c in enumerate(kids):
        for pushed_c in _push_down_once(c):
            out.append(
                rebuild(e, kids[:i] + (pushed_c,) + kids[i + 1 :])
            )
    return out


def optimize_expr(
    e: Expr,
    partitioning: dict[str, Tag],
    budget: int = 200,
    raw_delta_names: frozenset[str] = frozenset(),
    delta_tag: Tag | None = None,
) -> Expr:
    """Trial-and-error minimization of one statement's communication.

    Starting from the well-formed expression, repeatedly explores
    one-step pushes followed by simplification, keeping the cheapest
    expression found.  ``budget`` bounds the number of explored
    candidates (the search space is tiny for real statements)."""
    best = simplify_transformers(e, partitioning, raw_delta_names, delta_tag)
    best_cost = _cost(best)
    frontier = [best]
    seen = {best}
    explored = 0
    while frontier and explored < budget:
        current = frontier.pop()
        for candidate in _push_down_once(current):
            candidate = simplify_transformers(
                candidate, partitioning, raw_delta_names, delta_tag
            )
            if candidate in seen:
                continue
            seen.add(candidate)
            explored += 1
            cost = _cost(candidate)
            # Pushing may raise cost; such candidates are kept in the
            # frontier (the backtracking of Section 4.3.1) but never
            # accepted as the result unless later simplification pays
            # off.
            if cost <= best_cost:
                frontier.append(candidate)
            if cost < best_cost:
                best, best_cost = candidate, cost
    return best


# ----------------------------------------------------------------------
# Single transformer form + CSE + DCE (Section 4.3.2)
# ----------------------------------------------------------------------


def to_single_transformer_form(
    trig: DistTrigger, partitioning: dict[str, Tag]
) -> None:
    """Normalize: every statement carries at most one transformer, and
    that transformer wraps a materialized reference."""
    counter = [0]
    new_statements: list[DistStatement] = []

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}_x{counter[0]}_{trig.relation}"

    def extract(e: Expr, stmt: DistStatement) -> Expr:
        kids = children(e)
        if kids:
            e = rebuild(e, tuple(extract(c, stmt) for c in kids))
        if isinstance(e, _TRANSFORMERS):
            inner = e.child
            # 1) materialize the transformed contents if complex
            if not isinstance(inner, (Rel, DeltaRel)):
                mat = fresh("mat")
                mat_cols = out_cols(inner)
                mat_tag = _tag_under_transformer(e, partitioning, "in")
                partitioning[mat] = mat_tag
                new_statements.append(
                    DistStatement(
                        mat, ":=", mat_cols, inner, "batch", mat_tag,
                        "dist" if is_distributed(mat_tag) else "local",
                    )
                )
                # Batch-scoped transients live in the delta namespace,
                # so references to them are DeltaRel nodes.
                inner = DeltaRel(mat, mat_cols)
            # 2) extract the transformer itself
            moved = fresh("move")
            moved_cols = out_cols(inner)
            out_tag = _tag_under_transformer(e, partitioning, "out")
            wrapped = rebuild(e, (inner,))
            new_statements.append(
                DistStatement(
                    moved, ":=", moved_cols, wrapped, "batch", out_tag,
                    "local",  # the driver initiates every transformer
                )
            )
            partitioning[moved] = out_tag
            return DeltaRel(moved, moved_cols)
        return e

    out: list[DistStatement] = []
    for stmt in trig.statements:
        new_statements.clear()
        if isinstance(stmt.expr, _TRANSFORMERS) and isinstance(
            children(stmt.expr)[0], (Rel, DeltaRel)
        ):
            out.append(stmt)  # already in single transformer form
            continue
        new_expr = extract(stmt.expr, stmt)
        out.extend(new_statements)
        out.append(
            DistStatement(
                stmt.target, stmt.op, stmt.target_cols, new_expr,
                stmt.scope, stmt.target_tag, stmt.mode,
            )
        )
    trig.statements = out


def eliminate_common_transfers(trig: DistTrigger) -> None:
    """CSE + DCE over batch-scoped statements.

    Statements computing a structurally identical RHS at the same
    location are merged; transients never read afterwards are dropped —
    together they remove the redundant network transfers of Fig. 5.
    """
    # CSE: rhs -> canonical target
    canonical: dict[tuple, str] = {}
    rename: dict[str, str] = {}
    kept: list[DistStatement] = []
    for stmt in trig.statements:
        expr = _rename_refs(stmt.expr, rename)
        stmt = DistStatement(
            stmt.target, stmt.op, stmt.target_cols, expr, stmt.scope,
            stmt.target_tag, stmt.mode,
        )
        if stmt.scope == "batch":
            key = (repr(expr), repr(stmt.target_tag), stmt.op)
            if key in canonical:
                rename[stmt.target] = canonical[key]
                continue
            canonical[key] = stmt.target
        kept.append(stmt)

    # DCE: drop batch transients that are never read.
    read: set[str] = set()
    for stmt in kept:
        _collect_refs(stmt.expr, read)
    kept = [
        s for s in kept if s.scope != "batch" or s.target in read
    ]
    trig.statements = kept


def _rename_refs(e: Expr, rename: dict[str, str]) -> Expr:
    if isinstance(e, Rel) and e.name in rename:
        return Rel(rename[e.name], e.cols)
    if isinstance(e, DeltaRel) and e.name in rename:
        return DeltaRel(rename[e.name], e.cols)
    kids = children(e)
    if not kids:
        return e
    return rebuild(e, tuple(_rename_refs(c, rename) for c in kids))


def _collect_refs(e: Expr, acc: set[str]) -> None:
    if isinstance(e, (Rel, DeltaRel)):
        acc.add(e.name)
    for c in children(e):
        _collect_refs(c, acc)


def _tag_under_transformer(
    t: Expr, partitioning: dict[str, Tag], side: str
) -> Tag:
    from repro.distributed.tags import RANDOM, REPLICATED

    if side == "out":
        if isinstance(t, Gather):
            return LOCAL
        keys = t.keys
        if keys == ():
            return REPLICATED
        return Dist(keys)
    # side == "in": where the transformed contents is materialized
    if isinstance(t, Scatter):
        return LOCAL
    return RANDOM  # Repart/Gather inputs live on the workers


# ----------------------------------------------------------------------
# Whole-program driver
# ----------------------------------------------------------------------


def optimize_program(
    dprog: DistributedProgram,
    level: int = 3,
) -> DistributedProgram:
    """Optimization levels match the ablation of Figure 13:

    * 0 — naive well-formed program: single transformer form only
      (normalization is mandatory — the executor moves data through
      standalone transformer statements), no block fusion;
    * 1 — + simplification rules (Fig. 4) and push search (Fig. 3);
    * 2 — + block fusion (Appendix C.3);
    * 3 — + CSE and DCE on network transfers.
    """
    from repro.distributed.annotate import statement_mode

    raw_delta_names = frozenset(dprog.local_program.base_relations)
    for trig in dprog.triggers.values():
        if level >= 1:
            for stmt in trig.statements:
                stmt.expr = optimize_expr(
                    stmt.expr,
                    dprog.partitioning,
                    raw_delta_names=raw_delta_names,
                    delta_tag=dprog.delta_tag,
                )
        to_single_transformer_form(trig, dprog.partitioning)
        if level >= 3:
            eliminate_common_transfers(trig)
        for stmt in trig.statements:
            stmt.mode = statement_mode(stmt, dprog.partitioning)
    dprog.fuse_enabled = level >= 2
    return dprog
