"""Delta processing (paper Section 3).

* :mod:`repro.delta.rules` — the delta derivation rules of Section 3.1.
* :mod:`repro.delta.simplify` — polynomial normalization used to keep
  derived deltas in sum-of-products form and eliminate zero terms.
* :mod:`repro.delta.domain` — the domain-extraction algorithm (Fig. 1)
  and the revised assignment delta rule of Section 3.2.2, plus the
  incremental-vs-reevaluate decision of Section 3.2.3.
"""

from repro.delta.rules import derive_delta
from repro.delta.simplify import (
    flatten,
    is_statically_zero,
    simplify,
    to_polynomial,
)
from repro.delta.domain import (
    domain_binds_correlated_var,
    extract_domain,
    restrict_domain,
    revised_assign_delta,
)

__all__ = [
    "derive_delta",
    "flatten",
    "is_statically_zero",
    "simplify",
    "to_polynomial",
    "domain_binds_correlated_var",
    "extract_domain",
    "restrict_domain",
    "revised_assign_delta",
]
