"""Domain extraction (paper Section 3.2.2, Figure 1).

A *domain expression* binds a set of variables with the sole purpose of
restricting downstream iteration; all its tuples have multiplicity 1.
``extract_domain(ΔQ)`` computes, from a delta expression, the domain of
output tuples that the update can possibly affect.  Prepending that
domain to the recompute-twice delta of an assignment or Exists confines
the work to affected tuples only — this is what makes queries with
nested aggregates incrementally maintainable for batch updates.

The algorithm (mirroring Fig. 1):

* union      → intersect the operand domains (keep common factors; a
  weaker domain is a *larger* one, so intersection stays correct for
  both branches);
* product    → union the operand domains (join their factor sets);
* ``Sum``    → recurse, then restrict the domain schema to the group-by
  columns, wrapping in ``Exists(Sum(...))`` when projection is needed;
* ``Assign`` over a relational subquery → recurse into the subquery;
* relation leaves → ``Exists(rel)`` when the relation has low
  cardinality (update batches always do), else ``1``;
* other leaves (comparisons, values, value assignments) → kept as
  additional domain restrictions.

After extraction the domain is *closed*: interpreted factors whose free
variables are not bound by the relational factors are dropped, since a
domain expression must be evaluable on its own.
"""

from __future__ import annotations

from repro.query.ast import (
    Assign,
    Cmp,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    ValueF,
    is_expr,
)
from repro.query.schema import free_vars, has_relations, out_cols

_ONE = Const(1)


def _factors(dom: Expr) -> list[Expr]:
    """A domain expression as a list of join factors (1 → no factors)."""
    if dom == _ONE:
        return []
    if isinstance(dom, Join):
        return list(dom.parts)
    return [dom]


def _of_factors(factors: list[Expr]) -> Expr:
    if not factors:
        return _ONE
    if len(factors) == 1:
        return factors[0]
    return Join(tuple(factors))


def _inter_domains(a: Expr, b: Expr) -> Expr:
    """Common factors of two domains (see module docstring: weaker =
    larger = safe for both union branches)."""
    fb = _factors(b)
    common = [f for f in _factors(a) if f in fb]
    return _of_factors(common)


def _union_domains(a: Expr, b: Expr) -> Expr:
    """Merge two domains into one (dedup by structural equality)."""
    out = _factors(a)
    for f in _factors(b):
        if f not in out:
            out.append(f)
    return _of_factors(out)


def extract_domain(
    e: Expr, low_cardinality: frozenset[str] | None = None
) -> Expr:
    """The domain-extraction algorithm of Fig. 1.

    ``low_cardinality`` optionally names base relations assumed small
    enough to serve as domain anchors; delta relations always qualify
    (update batches are small relative to base tables).
    """
    dom = _extract(e, low_cardinality or frozenset())
    return _close(dom)


def _extract(e: Expr, low: frozenset[str]) -> Expr:
    if isinstance(e, Union):
        dom = _extract(e.parts[0], low)
        for p in e.parts[1:]:
            dom = _inter_domains(dom, _extract(p, low))
        return dom
    if isinstance(e, Join):
        dom = _ONE
        for p in e.parts:
            dom = _union_domains(dom, _extract(p, low))
        return dom
    if isinstance(e, Sum):
        dom_child = _extract(e.child, low)
        if dom_child == _ONE:
            return _ONE
        # Equality correlation lifts domain bindings: (B == B2) with B2
        # bound by the domain also restricts B (Section 3.2.3, "when the
        # correlation involves equality predicates, extracting the
        # domain of the inner query might restrict some of the
        # correlated variables").
        dom_child = _lift_equalities(dom_child)
        dom_cols = set(out_cols(dom_child))
        # The domain may usefully bind group-by columns *and* the
        # aggregate's correlation variables (free vars reach the
        # enclosing assignment's context).
        wanted = set(e.group_by) | free_vars(e)
        keep_set = dom_cols & wanted
        if not keep_set:
            # The extracted domain binds no useful column: it cannot
            # restrict this aggregate's output.
            return _ONE
        if dom_cols == keep_set:
            return dom_child
        # Project the domain onto the useful columns it does bind,
        # wrapping with Exists to preserve multiplicity-1 semantics.
        keep = tuple(c for c in out_cols(dom_child) if c in keep_set)
        return Exists(Sum(keep, dom_child))
    if isinstance(e, Assign):
        if is_expr(e.child) and has_relations(e.child):
            return _extract(e.child, low)
        return e  # value assignment: a legitimate domain restriction
    if isinstance(e, Exists):
        return _extract(e.child, low)
    if isinstance(e, DeltaRel):
        return Exists(e)  # update batches are always low-cardinality
    if isinstance(e, Rel):
        if e.name in low:
            return Exists(e)
        return _ONE
    if isinstance(e, (Cmp, ValueF)):
        return e
    if isinstance(e, Const):
        return _ONE
    return _ONE


def _lift_equalities(dom: Expr) -> Expr:
    """Turn equality comparisons into bindings inside a domain.

    A factor ``(x == y)`` where exactly one side is already bound by the
    domain becomes the assignment ``(unbound := bound)``, which *binds*
    the other column and thereby propagates the restriction to
    equality-correlated variables.  Applied to fixpoint, so chained
    equalities lift transitively.
    """
    factors = _factors(dom)
    changed = True
    while changed:
        changed = False
        bound: set[str] = set()
        for f in factors:
            bound |= set(out_cols(f))
        for i, f in enumerate(factors):
            if not isinstance(f, Cmp) or f.op != "==":
                continue
            from repro.query.ast import Col

            lhs_col = f.lhs.name if isinstance(f.lhs, Col) else None
            rhs_col = f.rhs.name if isinstance(f.rhs, Col) else None
            if lhs_col and rhs_col:
                if lhs_col in bound and rhs_col not in bound:
                    factors[i] = Assign(rhs_col, Col(lhs_col))
                    changed = True
                elif rhs_col in bound and lhs_col not in bound:
                    factors[i] = Assign(lhs_col, Col(rhs_col))
                    changed = True
    return _of_factors(factors)


def _close(dom: Expr) -> Expr:
    """Drop interpreted factors whose free variables are unbound.

    A domain expression is evaluated standalone (prepended to a delta),
    so every comparison/value factor must be satisfiable from columns
    bound by the relational domain factors to its left.
    """
    factors = _factors(dom)
    relational = [f for f in factors if has_relations(f)]
    interpreted = [f for f in factors if not has_relations(f)]
    bound: set[str] = set()
    for f in relational:
        bound |= set(out_cols(f))
    closed = list(relational)
    for f in interpreted:
        if free_vars(f) <= bound:
            closed.append(f)
            bound |= set(out_cols(f))
    return _of_factors(closed)


def restrict_domain(dom: Expr, cols: tuple[str, ...]) -> Expr:
    """Project a domain onto (its intersection with) ``cols``.

    Used before prepending a domain to a delta whose output schema must
    not grow: extra domain columns are summed away under an Exists.
    Returns ``Const(1)`` when nothing remains.
    """
    if dom == _ONE:
        return _ONE
    dom_cols = out_cols(dom)
    keep = tuple(c for c in dom_cols if c in cols)
    if not keep:
        return _ONE
    if keep == dom_cols:
        if isinstance(dom, Exists):
            return dom
        return Exists(Sum(keep, dom))
    return Exists(Sum(keep, dom))


def revised_assign_delta(e: Assign, delta_child: Expr) -> Expr:
    """The revised delta rule for assignments (Section 3.2.2)::

        Δ(var := Q) = Q_dom ⋈ ((var := Q+ΔQ) − (var := Q))

    ``delta_child`` is ``ΔQ``.  The domain is restricted to ``Q``'s
    output columns plus its correlation (free) variables: binding a
    correlated variable is precisely what lets the enclosing query
    iterate over only the affected outer tuples.
    """
    dom = extract_domain(delta_child)
    dom = restrict_domain(
        dom, out_cols(e.child) + tuple(sorted(free_vars(e.child)))
    )
    new = Assign(e.var, _plus(e.child, delta_child))
    old = Assign(e.var, e.child)
    diff = Union((new, Join((Const(-1), old))))
    if dom == _ONE:
        return diff
    return Join((dom, diff))


def revised_exists_delta(e: Exists, delta_child: Expr) -> Expr:
    """Domain-restricted delta for ``Exists`` (Example 3.2)."""
    dom = extract_domain(delta_child)
    dom = restrict_domain(dom, out_cols(e.child))
    new = Exists(_plus(e.child, delta_child))
    old = Exists(e.child)
    diff = Union((new, Join((Const(-1), old))))
    if dom == _ONE:
        return diff
    return Join((dom, diff))


def domain_binds_correlated_var(dom: Expr, nested: Expr) -> bool:
    """The incremental-vs-reevaluate decision of Section 3.2.3.

    A nested aggregate is maintained incrementally when the extracted
    domain binds at least one of its correlation variables (its free
    variables) — or, for uncorrelated-but-grouped aggregates such as
    DISTINCT (Example 3.2), at least one output column.
    """
    if dom == _ONE:
        return False
    dom_cols = set(out_cols(dom))
    correlated = free_vars(nested)
    if correlated:
        return bool(dom_cols & correlated)
    return bool(dom_cols & set(out_cols(nested)))


def _plus(a: Expr, b: Expr) -> Expr:
    parts: list[Expr] = []
    for x in (a, b):
        if isinstance(x, Union):
            parts.extend(x.parts)
        else:
            parts.append(x)
    return Union(tuple(parts))
