"""Polynomial normalization and simplification of algebra expressions.

Derived deltas come out of the rules as deeply nested sums of products.
This module normalizes them: joins and unions are flattened, unions are
distributed out of joins, constants are folded, statically-zero terms
are dropped, and delta relations are hoisted to the front of joins
(deltas are the small operands — evaluating them first is the paper's
hash-join ordering heuristic, Section 3.2.1).
"""

from __future__ import annotations

from repro.ring import is_zero
from repro.query.ast import (
    Assign,
    Cmp,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    ValueF,
    is_expr,
)
from repro.query.schema import free_vars, out_cols


def is_statically_zero(e: Expr) -> bool:
    """Conservative zero test: True only when ``e`` is provably empty.

    Note that ``Assign`` over a query is *never* statically zero: in
    scalar context ``(var := 0)`` emits the tuple ``(var=0)`` with
    multiplicity 1 (SQL COUNT semantics).
    """
    if isinstance(e, Const):
        return is_zero(e.value)
    if isinstance(e, Join):
        return any(is_statically_zero(p) for p in e.parts)
    if isinstance(e, Union):
        return all(is_statically_zero(p) for p in e.parts)
    if isinstance(e, Sum):
        return is_statically_zero(e.child)
    if isinstance(e, Exists):
        return is_statically_zero(e.child)
    return False


def flatten(e: Expr) -> Expr:
    """Flatten nested joins and unions (one level of each node kind)."""
    if isinstance(e, Join):
        parts: list[Expr] = []
        for p in e.parts:
            p = flatten(p)
            if isinstance(p, Join):
                parts.extend(p.parts)
            else:
                parts.append(p)
        if len(parts) == 1:
            return parts[0]
        return Join(tuple(parts))
    if isinstance(e, Union):
        parts = []
        for p in e.parts:
            p = flatten(p)
            if isinstance(p, Union):
                parts.extend(p.parts)
            else:
                parts.append(p)
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))
    if isinstance(e, Sum):
        return Sum(e.group_by, flatten(e.child))
    if isinstance(e, Exists):
        return Exists(flatten(e.child))
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, flatten(e.child))
    return e


def _distribute(e: Expr) -> Expr:
    """Distribute unions out of joins: ``A*(B+C) -> A*B + A*C``.

    Join order is preserved within each distributed term, keeping the
    left-to-right information flow intact.
    """
    if isinstance(e, Join):
        parts = [_distribute(p) for p in e.parts]
        terms: list[list[Expr]] = [[]]
        for p in parts:
            if isinstance(p, Union):
                terms = [t + [up] for t in terms for up in p.parts]
            elif isinstance(p, Join):
                terms = [t + list(p.parts) for t in terms]
            else:
                terms = [t + [p] for t in terms]
        built = [
            t[0] if len(t) == 1 else Join(tuple(t)) for t in terms
        ]
        if len(built) == 1:
            return built[0]
        return Union(tuple(built))
    if isinstance(e, Union):
        parts = []
        for p in e.parts:
            p = _distribute(p)
            if isinstance(p, Union):
                parts.extend(p.parts)
            else:
                parts.append(p)
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))
    if isinstance(e, Sum):
        child = _distribute(e.child)
        if isinstance(child, Union):
            # Sum is linear: push it through the union.
            return Union(tuple(Sum(e.group_by, p) for p in child.parts))
        return Sum(e.group_by, child)
    if isinstance(e, Exists):
        return Exists(_distribute(e.child))
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _distribute(e.child))
    return e


def _fold_join_constants(e: Expr) -> Expr:
    """Multiply out constant factors inside a join; drop unit constants."""
    if isinstance(e, Join):
        parts = [_fold_join_constants(p) for p in e.parts]
        const_val = 1
        rest: list[Expr] = []
        for p in parts:
            if isinstance(p, Const):
                const_val *= p.value
            else:
                rest.append(p)
        if is_zero(const_val):
            return Const(0)
        if const_val != 1:
            rest.insert(0, Const(const_val))
        if not rest:
            return Const(const_val)
        if len(rest) == 1:
            return rest[0]
        return Join(tuple(rest))
    if isinstance(e, Union):
        return Union(tuple(_fold_join_constants(p) for p in e.parts))
    if isinstance(e, Sum):
        return Sum(e.group_by, _fold_join_constants(e.child))
    if isinstance(e, Exists):
        return Exists(_fold_join_constants(e.child))
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _fold_join_constants(e.child))
    return e


def _drop_zero_terms(e: Expr) -> Expr:
    """Remove statically-zero terms from unions / collapse zero joins."""
    if isinstance(e, Union):
        parts = [_drop_zero_terms(p) for p in e.parts]
        parts = [p for p in parts if not is_statically_zero(p)]
        if not parts:
            return Const(0)
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))
    if isinstance(e, Join):
        parts = [_drop_zero_terms(p) for p in e.parts]
        if any(is_statically_zero(p) for p in parts):
            return Const(0)
        if len(parts) == 1:
            return parts[0]
        return Join(tuple(parts))
    if isinstance(e, Sum):
        child = _drop_zero_terms(e.child)
        if is_statically_zero(child):
            return Const(0)
        return Sum(e.group_by, child)
    if isinstance(e, Exists):
        child = _drop_zero_terms(e.child)
        if is_statically_zero(child):
            return Const(0)
        return Exists(child)
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _drop_zero_terms(e.child))
    return e


def _collapse_nested_sums(e: Expr) -> Expr:
    """``Sum[g](Sum[h](e)) -> Sum[g](e)`` when ``g ⊆ h``, and
    ``Sum[g](e) -> e`` when ``e`` is already keyed exactly by ``g``."""
    if isinstance(e, Sum):
        child = _collapse_nested_sums(e.child)
        if isinstance(child, Sum) and set(e.group_by) <= set(child.group_by):
            return Sum(e.group_by, child.child)
        if isinstance(child, (Rel, DeltaRel)) and child.cols == e.group_by:
            return child  # projection onto the exact key is the identity
        return Sum(e.group_by, child)
    if isinstance(e, Union):
        return Union(tuple(_collapse_nested_sums(p) for p in e.parts))
    if isinstance(e, Join):
        return Join(tuple(_collapse_nested_sums(p) for p in e.parts))
    if isinstance(e, Exists):
        return Exists(_collapse_nested_sums(e.child))
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _collapse_nested_sums(e.child))
    return e


def _is_delta_domain(e: Expr) -> bool:
    """True for self-contained delta-only factors — domain expressions.

    A domain expression (Section 3.2.2) references only delta relations
    and has no free variables, so it commutes to the front of a join:
    evaluated first, it *binds* its output columns and restricts the
    iteration domain of every later factor (the whole point of domain
    extraction — without this hoist, a preceding view scan would drive
    the iteration and the domain would merely filter).
    """
    from repro.query.schema import base_relations, delta_relations

    return (
        not isinstance(e, DeltaRel)
        and bool(delta_relations(e))
        and not base_relations(e)
        and not free_vars(e)
    )


def _hoist_deltas(e: Expr) -> Expr:
    """Move delta-relation factors to the front of joins.

    Deltas are the small operands; evaluating them first minimizes hash
    lookups (the term-commuting discussion of Section 3.2.1).  Delta
    relations (and closed delta-only domain expressions) have no free
    variables, so hoisting them never breaks the left-to-right binding
    discipline of the remaining factors.
    """
    if isinstance(e, Join):
        parts = [_hoist_deltas(p) for p in e.parts]
        front = [p for p in parts if isinstance(p, DeltaRel)]
        domains = [p for p in parts if _is_delta_domain(p)]
        back = [
            p
            for p in parts
            if not isinstance(p, DeltaRel) and not _is_delta_domain(p)
        ]
        ordered = front + domains + back
        if len(ordered) == 1:
            return ordered[0]
        return Join(tuple(ordered))
    if isinstance(e, Union):
        return Union(tuple(_hoist_deltas(p) for p in e.parts))
    if isinstance(e, Sum):
        return Sum(e.group_by, _hoist_deltas(e.child))
    if isinstance(e, Exists):
        return Exists(_hoist_deltas(e.child))
    if isinstance(e, Assign) and is_expr(e.child):
        return Assign(e.var, _hoist_deltas(e.child))
    return e


def simplify(e: Expr, hoist: bool = True) -> Expr:
    """Normalize to simplified sum-of-products form (fixpoint)."""
    prev = None
    current = e
    for _ in range(20):  # fixpoint with a safety bound
        if current == prev:
            break
        prev = current
        current = flatten(current)
        current = _distribute(current)
        current = _fold_join_constants(current)
        current = _drop_zero_terms(current)
        current = _collapse_nested_sums(current)
    if hoist:
        current = _hoist_deltas(current)
    return current


def to_polynomial(e: Expr) -> list[list[Expr]]:
    """Decompose a simplified expression into sum-of-products form.

    Returns a list of terms; each term is the ordered list of join
    factors.  ``Const(0)`` decomposes to no terms.
    """
    e = simplify(e)
    if is_statically_zero(e):
        return []
    terms = e.parts if isinstance(e, Union) else (e,)
    out: list[list[Expr]] = []
    for t in terms:
        if isinstance(t, Join):
            out.append(list(t.parts))
        else:
            out.append([t])
    return out


def from_polynomial(terms: list[list[Expr]]) -> Expr:
    """Inverse of :func:`to_polynomial`."""
    if not terms:
        return Const(0)
    built = [
        t[0] if len(t) == 1 else Join(tuple(t)) for t in terms
    ]
    if len(built) == 1:
        return built[0]
    return Union(tuple(built))
