"""The delta derivation rules of Section 3.1.

For a batch update ``ΔR`` to relation ``R``::

    Δ(R)            = ΔR                      (the update batch itself)
    Δ(Q1 + Q2)      = ΔQ1 + ΔQ2
    Δ(Q1 ⋈ Q2)      = ΔQ1⋈Q2 + Q1⋈ΔQ2 + ΔQ1⋈ΔQ2
    Δ(Sum[A..](Q))  = Sum[A..](ΔQ)
    Δ(var := Q)     = (var := Q+ΔQ) − (var := Q)
    Δ(anything else)= 0

``Exists`` follows the assignment pattern:
``Δ(Exists(Q)) = Exists(Q+ΔQ) − Exists(Q)``.

The n-ary join rule generalizes the binary one: with the factors whose
delta is non-zero indexed by ``D``, the delta is the sum over non-empty
subsets ``S ⊆ D`` of products taking ``ΔQi`` for ``i ∈ S`` and ``Qi``
otherwise — i.e. the expansion of ``∏(Qi+ΔQi) − ∏Qi``.
"""

from __future__ import annotations

from itertools import combinations

from repro.query.ast import (
    Assign,
    Const,
    Exists,
    Expr,
    Join,
    Rel,
    Sum,
    Union,
    is_expr,
)
from repro.query.ast import DeltaRel
from repro.delta.simplify import is_statically_zero, simplify

_ZERO = Const(0)


def derive_delta(
    e: Expr,
    rel_name: str,
    simplify_result: bool = True,
    use_domain: bool = False,
) -> Expr:
    """Derive ``Δ_rel_name(e)``: the change of ``e`` for a batch update
    to base relation ``rel_name``.

    The update batch is referenced in the result as
    ``DeltaRel(rel_name, cols)``; it may contain both insertions
    (positive multiplicities) and deletions (negative multiplicities).

    With ``use_domain=True``, assignment and Exists deltas are produced
    in the revised, domain-restricted form of Section 3.2.2 instead of
    the plain recompute-twice form.
    """
    d = _delta(e, rel_name, use_domain)
    if simplify_result:
        d = simplify(d)
    return d


def _delta(e: Expr, r: str, use_domain: bool = False) -> Expr:
    if isinstance(e, Rel):
        if e.name == r:
            return DeltaRel(e.name, e.cols)
        return _ZERO
    if isinstance(e, Union):
        parts = [_delta(p, r, use_domain) for p in e.parts]
        parts = [p for p in parts if not is_statically_zero(p)]
        if not parts:
            return _ZERO
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))
    if isinstance(e, Join):
        return _delta_join(e, r, use_domain)
    if isinstance(e, Sum):
        d = _delta(e.child, r, use_domain)
        if is_statically_zero(d):
            return _ZERO
        return Sum(e.group_by, d)
    if isinstance(e, Assign):
        if not is_expr(e.child):
            return _ZERO  # assignment over a value term is constant
        d = _delta(e.child, r, use_domain)
        if is_statically_zero(d):
            return _ZERO
        if use_domain:
            from repro.delta.domain import revised_assign_delta

            return revised_assign_delta(e, d)
        new = Assign(e.var, _plus(e.child, d))
        old = Assign(e.var, e.child)
        return Union((new, Join((Const(-1), old))))
    if isinstance(e, Exists):
        d = _delta(e.child, r, use_domain)
        if is_statically_zero(d):
            return _ZERO
        if use_domain:
            from repro.delta.domain import revised_exists_delta

            return revised_exists_delta(e, d)
        new = Exists(_plus(e.child, d))
        old = Exists(e.child)
        return Union((new, Join((Const(-1), old))))
    # Constants, values, comparisons, delta relations: no change.
    return _ZERO


def _plus(a: Expr, b: Expr) -> Expr:
    if is_statically_zero(a):
        return b
    if is_statically_zero(b):
        return a
    parts: list[Expr] = []
    for x in (a, b):
        if isinstance(x, Union):
            parts.extend(x.parts)
        else:
            parts.append(x)
    return Union(tuple(parts))


def _delta_join(e: Join, r: str, use_domain: bool = False) -> Expr:
    parts = e.parts
    deltas = [_delta(p, r, use_domain) for p in parts]
    delta_positions = [
        i for i, d in enumerate(deltas) if not is_statically_zero(d)
    ]
    if not delta_positions:
        return _ZERO
    terms: list[Expr] = []
    for k in range(1, len(delta_positions) + 1):
        for subset in combinations(delta_positions, k):
            chosen = set(subset)
            factors = tuple(
                deltas[i] if i in chosen else parts[i]
                for i in range(len(parts))
            )
            terms.append(Join(factors) if len(factors) > 1 else factors[0])
    if len(terms) == 1:
        return terms[0]
    return Union(tuple(terms))
