"""The unified metrics registry: named counters, gauges, histograms.

Every tier of the serving stack records into one
:class:`MetricsRegistry` so that "where does time go" has a single
answer surface (``GET /metrics``) instead of three disjoint schemas:
the engine :class:`~repro.metrics.Counters` (virtual instructions),
:class:`~repro.metrics.IngestMetrics` (async ingestion percentiles),
and the multiproc :class:`~repro.parallel.ParallelMetrics` all
``bind()`` into a registry scope rather than living as islands.

Design constraints, in priority order:

* **lock-cheap** — one tiny lock per metric child (never a registry-wide
  lock on the hot path), so a counter increment from a batcher thread
  costs an uncontended acquire;
* **bounded cardinality** — each family caps its number of label sets
  (``max_series`` per family); excess label sets fold into the
  registry-wide ``repro_registry_dropped_series_total`` counter instead
  of growing without bound;
* **get-or-create** — registering an existing family (same name, same
  type) returns it, and a callback gauge re-registration replaces the
  callback, so a server re-hosting a service never collides with the
  previous incarnation's metrics;
* **Prometheus text exposition** — :meth:`MetricsRegistry.render`
  produces the standard ``text/plain; version=0.0.4`` format, and
  :func:`parse_prometheus` is the strict inverse used by the router's
  shard-scrape aggregation, ``python -m repro top``, and the tests.

Histograms are fixed-bucket (cumulative, Prometheus-style) and answer
streaming percentile queries by linear interpolation within the bucket
(:meth:`Histogram.percentile`) — O(#buckets), no sample retention.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsScope",
    "Sample",
    "bucket_percentile",
    "merge_expositions",
    "parse_prometheus",
]

#: default histogram buckets (seconds-oriented, sub-ms to tens of s)
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric registration or malformed exposition text."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    for k in labels:
        if not _LABEL_RE.match(k):
            raise MetricError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v)) if isinstance(v, float) else str(v)


def _render_labels(pairs: Iterable[tuple[str, str]]) -> str:
    items = [f'{k}="{_escape(v)}"' for k, v in pairs]
    return "{" + ",".join(items) + "}" if items else ""


# ----------------------------------------------------------------------
# Metric children
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count; ``inc`` is thread-safe."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise MetricError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """A settable value, or a zero-argument callback read at scrape."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, v: float) -> None:
        with self._lock:
            self._value = v

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self):
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return fn()
        except Exception:  # scrape must never take the server down
            return float("nan")


class Histogram:
    """Fixed cumulative buckets plus count/sum, Prometheus-style."""

    __slots__ = ("_lock", "uppers", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise MetricError("histogram needs at least one bucket")
        self.uppers = uppers
        self._lock = threading.Lock()
        self._counts = [0] * (len(uppers) + 1)  # +Inf is the last slot
        self._sum = 0.0
        self._count = 0

    def observe(self, v: float) -> None:
        idx = bisect_left(self.uppers, v)
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out = []
        for upper, c in zip(self.uppers + (math.inf,), counts):
            total += c
            out.append((upper, total))
        return out

    def percentile(self, p: float) -> float:
        """Streaming percentile estimate by in-bucket interpolation."""
        cum = self.cumulative()
        return bucket_percentile(cum, p)


def bucket_percentile(cumulative: list[tuple[float, int]], p: float) -> float:
    """The ``p``-th percentile (0..100) from cumulative bucket counts.

    Linear interpolation inside the containing bucket; the +Inf bucket
    reports its lower bound (there is nothing to interpolate against).
    Returns 0.0 for an empty histogram.
    """
    if not cumulative:
        return 0.0
    total = cumulative[-1][1]
    if total == 0:
        return 0.0
    rank = total * (p / 100.0)
    prev_upper, prev_cum = 0.0, 0
    for upper, cum in cumulative:
        if cum >= rank:
            if upper == math.inf:
                return prev_upper
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return upper
            frac = (rank - prev_cum) / in_bucket
            return prev_upper + (upper - prev_upper) * frac
        prev_upper, prev_cum = upper, cum
    return prev_upper


# ----------------------------------------------------------------------
# Families and the registry
# ----------------------------------------------------------------------
class Family:
    """One named metric with any number of label sets (children)."""

    def __init__(self, registry, name: str, kind: str, help_text: str,
                 buckets: tuple[float, ...], max_series: int):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.max_series = max_series
        self._lock = threading.Lock()
        self.children: dict[tuple, object] = {}

    def child(self, labels: dict | None):
        key = _label_key(labels)
        with self._lock:
            existing = self.children.get(key)
            if existing is not None:
                return existing
            if len(self.children) >= self.max_series:
                # Bounded cardinality: fold the overflow into a probe
                # counter and hand back a detached child so callers
                # never crash — the series just is not exported.
                self.registry._dropped.inc()
                return self._make()
            made = self._make()
            self.children[key] = made
            return made

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def remove(self, labels: dict | None) -> None:
        with self._lock:
            self.children.pop(_label_key(labels), None)


class MetricsRegistry:
    """Process-wide (or per-service) named metrics with exposition."""

    def __init__(self, max_series_per_family: int = 512):
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}
        self.max_series_per_family = max_series_per_family
        self._dropped = Counter()
        self.counter(
            "repro_registry_dropped_series_total",
            help="label sets discarded by the per-family cardinality cap",
        )

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                buckets: tuple[float, ...]) -> Family:
        _check_name(name)
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{fam.kind}, not {kind}"
                    )
                if help_text and not fam.help:
                    fam.help = help_text
                return fam
            fam = Family(
                self, name, kind, help_text, buckets,
                self.max_series_per_family,
            )
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        fam = self._family(name, "counter", help, ())
        if name == "repro_registry_dropped_series_total":
            # The probe counter is the registry's own dropped-series
            # count, shared so Family overflow increments surface here.
            with fam._lock:
                fam.children.setdefault((), self._dropped)
            return self._dropped
        return fam.child(labels)

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None) -> Gauge:
        return self._family(name, "gauge", help, ()).child(labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], help: str = "",
                 labels: dict | None = None) -> Gauge:
        g = self.gauge(name, help, labels)
        g.set_function(fn)
        return g

    def histogram(self, name: str, help: str = "",
                  labels: dict | None = None,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(name, "histogram", help, buckets).child(labels)

    def remove(self, name: str, labels: dict | None = None) -> None:
        with self._lock:
            fam = self._families.get(name)
        if fam is not None:
            fam.remove(labels)

    def scope(self, **labels) -> "MetricsScope":
        """A handle that stamps ``labels`` on everything registered
        through it and removes those series on :meth:`MetricsScope.close`
        (what keeps create/drop view churn cardinality-bounded)."""
        return MetricsScope(self, labels)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def collect(self) -> list["Sample"]:
        """Flat samples (histograms expanded to bucket/sum/count)."""
        out: list[Sample] = []
        with self._lock:
            families = list(self._families.values())
        for fam in families:
            with fam._lock:
                children = dict(fam.children)
            for key, child in sorted(children.items()):
                labels = dict(key)
                if fam.kind == "histogram":
                    for upper, cum in child.cumulative():
                        out.append(Sample(
                            fam.name + "_bucket",
                            {**labels, "le": _fmt_value(upper)},
                            cum,
                        ))
                    out.append(Sample(fam.name + "_sum", labels, child.sum))
                    out.append(Sample(fam.name + "_count", labels,
                                      child.count))
                else:
                    out.append(Sample(fam.name, labels, child.value))
        return out

    def render(self) -> str:
        """Prometheus text exposition (``text/plain; version=0.0.4``)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for fam in families:
            with fam._lock:
                children = dict(fam.children)
            if not children:
                continue
            if fam.help:
                lines.append(f"# HELP {fam.name} {_escape(fam.help)}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key, child in sorted(children.items()):
                base = _render_labels(key)
                if fam.kind == "histogram":
                    for upper, cum in child.cumulative():
                        lab = _render_labels(
                            list(key) + [("le", _fmt_value(upper))]
                        )
                        lines.append(
                            f"{fam.name}_bucket{lab} {cum}"
                        )
                    lines.append(
                        f"{fam.name}_sum{base} {_fmt_value(child.sum)}"
                    )
                    lines.append(f"{fam.name}_count{base} {child.count}")
                else:
                    lines.append(
                        f"{fam.name}{base} {_fmt_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"


class MetricsScope:
    """Fixed labels + bookkeeping for group removal.

    Everything registered through a scope carries the scope's labels
    merged over the call-site labels; :meth:`close` removes exactly the
    series this scope created (families persist — they are shared).
    """

    def __init__(self, registry: MetricsRegistry, labels: dict):
        self.registry = registry
        self.labels = dict(labels)
        self._created: list[tuple[str, dict]] = []
        self._lock = threading.Lock()

    def _merged(self, labels: dict | None) -> dict:
        merged = dict(self.labels)
        if labels:
            merged.update(labels)
        return merged

    def _track(self, name: str, labels: dict):
        with self._lock:
            self._created.append((name, labels))

    def counter(self, name, help="", labels=None) -> Counter:
        merged = self._merged(labels)
        self._track(name, merged)
        return self.registry.counter(name, help, merged)

    def gauge(self, name, help="", labels=None) -> Gauge:
        merged = self._merged(labels)
        self._track(name, merged)
        return self.registry.gauge(name, help, merged)

    def gauge_fn(self, name, fn, help="", labels=None) -> Gauge:
        merged = self._merged(labels)
        self._track(name, merged)
        return self.registry.gauge_fn(name, fn, help, merged)

    def histogram(self, name, help="", labels=None,
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        merged = self._merged(labels)
        self._track(name, merged)
        return self.registry.histogram(name, help, merged, buckets)

    def close(self) -> None:
        with self._lock:
            created, self._created = self._created, []
        for name, labels in created:
            self.registry.remove(name, labels)


# ----------------------------------------------------------------------
# Parsing and multi-source merging (router aggregation, `repro top`)
# ----------------------------------------------------------------------
class Sample:
    """One exposition line: ``name{labels} value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict, value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self):
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Sample)
            and (self.name, self.labels, self.value)
            == (other.name, other.labels, other.value)
        )


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> list[Sample]:
    """Strictly parse Prometheus text exposition into flat samples.

    Raises :class:`MetricError` on any line that is neither a comment,
    blank, nor a well-formed sample — the assertion surface for "the
    exposition parses".
    """
    samples: list[Sample] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        m = _SAMPLE_RE.match(stripped)
        if not m:
            raise MetricError(
                f"exposition line {lineno} is malformed: {line!r}"
            )
        labels: dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            pos = 0
            while pos < len(raw):
                pm = _LABEL_PAIR_RE.match(raw, pos)
                if pm is None:
                    raise MetricError(
                        f"exposition line {lineno} has malformed labels: "
                        f"{line!r}"
                    )
                labels[pm.group(1)] = _unescape(pm.group(2))
                pos = pm.end()
        try:
            value = _parse_value(m.group("value"))
        except ValueError as exc:
            raise MetricError(
                f"exposition line {lineno} has a non-numeric value: "
                f"{line!r}"
            ) from exc
        samples.append(Sample(m.group("name"), labels, value))
    return samples


def merge_expositions(parts: list[tuple[dict, str]]) -> str:
    """Combine several expositions into one, stamping extra labels.

    ``parts`` is ``[(extra_labels, exposition_text), ...]`` — the
    cluster router passes its own registry render with no extra labels
    plus each shard scrape stamped ``{"shard": "N", ...}``.  HELP/TYPE
    headers are deduplicated per family (first writer wins); samples
    are regrouped under their family so the output is itself a valid
    exposition.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    grouped: dict[str, list[tuple[dict, float]]] = {}
    order: list[str] = []

    for extra, text in parts:
        current: str | None = None
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("# HELP "):
                rest = stripped[len("# HELP "):]
                name, _, help_text = rest.partition(" ")
                helps.setdefault(name, help_text)
                continue
            if stripped.startswith("# TYPE "):
                rest = stripped[len("# TYPE "):]
                name, _, kind = rest.partition(" ")
                types.setdefault(name, kind.strip())
                current = name
                continue
            if not stripped or stripped.startswith("#"):
                continue
            sample = parse_prometheus(stripped)[0]
            family = sample.name
            if current is not None and (
                family == current
                or family.startswith(current + "_")
            ):
                family = current
            if family not in grouped:
                grouped[family] = []
                order.append(family)
            labels = dict(sample.labels)
            labels.update({k: str(v) for k, v in extra.items()})
            grouped[family].append((sample.name, labels, sample.value))

    lines: list[str] = []
    for family in order:
        if family in helps:
            lines.append(f"# HELP {family} {helps[family]}")
        if family in types:
            lines.append(f"# TYPE {family} {types[family]}")
        for name, labels, value in grouped[family]:
            lab = _render_labels(sorted(labels.items()))
            lines.append(f"{name}{lab} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"
