"""Telemetry: unified metrics registry + seq-correlated batch tracing.

See :mod:`repro.obs.registry` for the metrics model and Prometheus
exposition, :mod:`repro.obs.trace` for the trace-context propagation
design, and :mod:`repro.obs.top` for the live CLI dashboard.
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    MetricsScope,
    Sample,
    bucket_percentile,
    merge_expositions,
    parse_prometheus,
)
from .trace import (
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    TRACE_HEADER,
    assemble,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_TRACER",
    "Sample",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACE_HEADER",
    "assemble",
    "bucket_percentile",
    "merge_expositions",
    "parse_prometheus",
]
