"""Seq-correlated batch tracing.

One trace per ingested batch: a :class:`TraceContext` (trace id +
span id) is created at ingest admission, carried through
``IngestQueue`` entries and batcher flushes, stamped on backend
maintenance and delta publish, and propagated over the wire via the
``X-Repro-Trace`` HTTP header and a delta-envelope ``trace`` field so
router → shard → subscriber hops join one trace.

Stages, in causal order for a single batch:

``admission``
    the service (or router) accepted the batch; exactly one per seq,
    carrying ``seq`` and ``relation`` — the anchor for seq coverage.
``scatter``
    (router only) one per shard the batch was fanned out to.
``flush``
    the batcher drained queue entries into one inner call; a coalesced
    flush merges batches from several traces, so the span joins the
    max-seq entry's trace and records **all** merged seqs in
    ``attrs["seqs"]``.
``maintain``
    the inner backend applied the delta (child of ``admission`` for
    sync views, of ``flush`` for async views).
``publish``
    the service computed a view delta and handed it to subscribers.
``merge``
    (router only) the router re-stamped a shard delta into the merged
    output order.
``deliver``
    a network stream wrote the delta envelope to one subscriber.

Two durability stages sit outside the per-batch causal chain (they
belong to the service lifecycle, not to one seq):

``recover``
    a :class:`~repro.durability.DurableViewService` rebuilt its state
    at startup; attrs record the checkpoint seq, the number of WAL
    batches replayed, and the final seq.
``checkpoint``
    the durable service captured a drained state and truncated the
    WAL prefix it covers; attrs record the checkpointed seq and the
    next WAL segment.

Spans go to a pluggable sink: an in-memory ring buffer by default
(served by ``GET /trace/recent``), optionally tee'd to an NDJSON file
via ``--trace-out``.  A disabled tracer costs one attribute check per
span — the overhead guardrail (BENCH_obs.json) holds the default
ring-buffer mode to ≤5% vs off.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "Span",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "TRACE_HEADER",
    "assemble",
]

#: HTTP request header carrying ``<trace_id>/<span_id>``
TRACE_HEADER = "X-Repro-Trace"

_span_counter = itertools.count(1)
_span_prefix = f"{os.getpid():x}-{uuid.uuid4().hex[:6]}"


def _new_span_id() -> str:
    return f"{_span_prefix}-{next(_span_counter):x}"


def _new_trace_id() -> str:
    # os.urandom beats uuid4 ~3x and this runs once per ingested batch
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """What travels between stages: which trace, and which parent span."""

    trace_id: str
    span_id: str

    def header(self) -> str:
        return f"{self.trace_id}/{self.span_id}"

    @classmethod
    def parse(cls, text: str | None) -> "TraceContext | None":
        """Parse a header value; tolerant — bad input yields ``None``."""
        if not text:
            return None
        trace_id, sep, span_id = text.strip().partition("/")
        if not sep or not trace_id or not span_id:
            return None
        return cls(trace_id, span_id)

    @classmethod
    def from_wire(cls, obj) -> "TraceContext | None":
        """Parse the delta-envelope ``trace`` field."""
        if not isinstance(obj, dict):
            return None
        trace_id, span_id = obj.get("id"), obj.get("span")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id))

    def to_wire(self) -> dict:
        return {"id": self.trace_id, "span": self.span_id}


@dataclass(slots=True)
class Span:
    """One completed stage of one batch's journey."""

    trace_id: str
    span_id: str
    parent_id: str | None
    stage: str
    start: float  # wall clock (time.time) — comparable across processes
    dur_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "stage": self.stage,
            "start": self.start,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            stage=d["stage"],
            start=d["start"],
            dur_s=d["dur_s"],
            attrs=d.get("attrs", {}),
        )


class SpanHandle:
    """Context manager for an in-flight span.

    ``handle.ctx`` is the child :class:`TraceContext` to hand to the
    next stage.  Extra attributes may be attached before exit via
    :meth:`set`.  The disabled-tracer singleton has ``ctx = None`` and
    does nothing.
    """

    __slots__ = ("tracer", "ctx", "stage", "attrs", "_parent", "_start",
                 "_t0")

    def __init__(self, tracer, ctx, stage, parent_id, attrs):
        self.tracer = tracer
        self.ctx = ctx
        self.stage = stage
        self.attrs = attrs
        self._parent = parent_id
        self._start = time.time()
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.finish()
        return False

    def finish(self) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        self.tracer = None  # emit exactly once
        tracer._emit(Span(
            self.ctx.trace_id,
            self.ctx.span_id,
            self._parent,
            self.stage,
            self._start,
            time.perf_counter() - self._t0,
            self.attrs,
        ))


class _NullHandle:
    """Shared do-nothing handle returned by a disabled tracer."""

    __slots__ = ()
    ctx = None
    attrs: dict = {}

    def set(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def finish(self) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Span factory + sink: ring buffer always, NDJSON tee optionally.

    The ring buffer (``deque(maxlen=capacity)``; appends are atomic
    under the GIL) backs ``GET /trace/recent`` even when ``out=`` is
    set, so tee'ing to a file never disables the endpoint.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True,
                 out: str | None = None):
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._out_path = out
        self._out_file = None
        self._out_lock = threading.Lock()
        if out is not None:
            self._out_file = open(out, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def begin(self, parent: TraceContext | None = None) -> TraceContext:
        """The admission-time context: new trace unless joining one."""
        if parent is not None:
            return parent
        return TraceContext(_new_trace_id(), _new_span_id())

    def span(self, stage: str, parent: TraceContext | None = None,
             **attrs) -> SpanHandle | _NullHandle:
        """Open a span; ``parent=None`` starts a fresh trace."""
        if not self.enabled:
            return _NULL_HANDLE
        if parent is None:
            ctx = TraceContext(_new_trace_id(), _new_span_id())
            parent_id = None
        else:
            ctx = TraceContext(parent.trace_id, _new_span_id())
            parent_id = parent.span_id
        # ``attrs`` is already a fresh dict (built from **kwargs): hand
        # it over without copying — this path runs on every batch.
        return SpanHandle(self, ctx, stage, parent_id, attrs)

    def _emit(self, span: Span) -> None:
        self._ring.append(span)
        f = self._out_file
        if f is not None:
            line = json.dumps(span.to_dict(), separators=(",", ":"))
            with self._out_lock:
                f.write(line + "\n")
                f.flush()

    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        return list(self._ring)

    def recent(self, view: str | None = None, seq: int | None = None,
               trace_id: str | None = None, limit: int = 50) -> list[dict]:
        """Assembled span trees for recent traces, newest first.

        A trace matches when *any* of its spans carries the requested
        ``view``/``seq`` attribute (coalesced flush spans match via
        their ``seqs`` list).
        """
        trees = assemble(self.spans())
        if trace_id is not None:
            trees = [t for t in trees if t["trace_id"] == trace_id]
        if view is not None:
            trees = [t for t in trees if _tree_matches(t, "view", view)]
        if seq is not None:
            trees = [t for t in trees if _tree_matches_seq(t, seq)]
        trees.reverse()  # assemble() is oldest-first
        return trees[:max(0, limit)]

    def close(self) -> None:
        f, self._out_file = self._out_file, None
        if f is not None:
            f.close()


#: default tracer for components constructed without one
NULL_TRACER = Tracer(enabled=False)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def assemble(spans: list[Span]) -> list[dict]:
    """Group spans by trace id into parent/child trees.

    Returns one dict per trace (ordered by earliest span start):
    ``{"trace_id", "start", "spans": [roots...]}`` where each node is
    the span's ``to_dict()`` plus a ``children`` list.  A span whose
    parent is missing from the window (evicted from the ring, or
    emitted by another process) becomes a root — partial traces are
    still viewable.
    """
    by_trace: dict[str, list[Span]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)

    trees = []
    for trace_id, group in by_trace.items():
        nodes = {}
        for s in group:
            node = s.to_dict()
            node["children"] = []
            nodes[s.span_id] = node
        roots = []
        for s in sorted(group, key=lambda s: (s.start, s.span_id)):
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        trees.append({
            "trace_id": trace_id,
            "start": min(s.start for s in group),
            "spans": roots,
        })
    trees.sort(key=lambda t: t["start"])
    return trees


def _iter_nodes(tree: dict):
    stack = list(tree["spans"])
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node["children"])


def _tree_matches(tree: dict, key: str, value) -> bool:
    want = str(value)
    for node in _iter_nodes(tree):
        if str(node["attrs"].get(key)) == want:
            return True
    return False


def _tree_matches_seq(tree: dict, seq: int) -> bool:
    for node in _iter_nodes(tree):
        attrs = node["attrs"]
        if attrs.get("seq") == seq:
            return True
        seqs = attrs.get("seqs")
        if isinstance(seqs, (list, tuple)) and seq in seqs:
            return True
    return False
