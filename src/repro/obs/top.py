"""``python -m repro top`` — live per-view serving dashboard.

Polls ``GET /metrics`` on a :class:`~repro.net.server.ViewServer` or
:class:`~repro.cluster.router.ClusterRouter`, parses the Prometheus
exposition with the strict parser from :mod:`repro.obs.registry`, and
renders per-view throughput (batch/delta rates between polls),
maintenance latency percentiles (interpolated from the histogram
buckets), and ingest queue depth.
"""

from __future__ import annotations

import math
import sys
import time
import urllib.error
import urllib.request

from .registry import Sample, bucket_percentile, parse_prometheus

__all__ = ["TopSnapshot", "fetch_metrics", "render_top", "run_top"]


class TopSnapshot:
    """Per-view readings extracted from one /metrics scrape."""

    def __init__(self, samples: list[Sample], at: float):
        self.at = at
        self.views: dict[str, dict] = {}
        self.service: dict[str, float] = {}
        hist: dict[str, list[tuple[float, int]]] = {}
        for s in samples:
            view = s.labels.get("view")
            if s.name in ("repro_service_seq", "repro_router_seq",
                          "repro_service_views", "repro_server_uptime_seconds",
                          "repro_router_uptime_seconds"):
                # A router's merged page repeats these per shard under
                # shard/replica labels; the scraped tier's own samples
                # are the unlabeled ones.
                if "shard" not in s.labels:
                    self.service[s.name] = s.value
                continue
            if view is None:
                continue
            row = self.views.setdefault(view, {})
            if s.name == "repro_view_batches_total":
                row["batches"] = row.get("batches", 0) + s.value
            elif s.name == "repro_view_deltas_total":
                row["deltas"] = row.get("deltas", 0) + s.value
            elif s.name == "repro_ingest_queue_depth":
                row["queue"] = row.get("queue", 0) + s.value
            elif s.name == "repro_view_subscribers":
                row["subs"] = row.get("subs", 0) + s.value
            elif s.name == "repro_view_maintain_seconds_bucket":
                try:
                    upper = (math.inf if s.labels.get("le") == "+Inf"
                             else float(s.labels.get("le", "inf")))
                except ValueError:
                    continue
                hist.setdefault(view, []).append((upper, int(s.value)))
            elif s.name == "repro_view_maintain_seconds_count":
                row["maintains"] = row.get("maintains", 0) + s.value
        for view, buckets in hist.items():
            buckets.sort(key=lambda t: t[0])
            row = self.views.setdefault(view, {})
            row["p50_ms"] = bucket_percentile(buckets, 50) * 1e3
            row["p99_ms"] = bucket_percentile(buckets, 99) * 1e3


def fetch_metrics(url: str, auth_token: str | None = None,
                  timeout: float = 5.0) -> TopSnapshot:
    req = urllib.request.Request(url.rstrip("/") + "/metrics")
    if auth_token:
        req.add_header("Authorization", f"Bearer {auth_token}")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    return TopSnapshot(parse_prometheus(text), time.time())


def render_top(cur: TopSnapshot, prev: TopSnapshot | None) -> str:
    from ..harness.report import format_table

    elapsed = (cur.at - prev.at) if prev is not None else 0.0
    rows = []
    for view in sorted(cur.views):
        row = cur.views[view]
        batch_rate = delta_rate = float("nan")
        if prev is not None and elapsed > 0 and view in prev.views:
            old = prev.views[view]
            batch_rate = (row.get("batches", 0)
                          - old.get("batches", 0)) / elapsed
            delta_rate = (row.get("deltas", 0)
                          - old.get("deltas", 0)) / elapsed
        rows.append([
            view,
            "-" if math.isnan(batch_rate) else f"{batch_rate:.1f}",
            "-" if math.isnan(delta_rate) else f"{delta_rate:.1f}",
            f"{row['p50_ms']:.2f}" if "p50_ms" in row else "-",
            f"{row['p99_ms']:.2f}" if "p99_ms" in row else "-",
            f"{int(row['queue'])}" if "queue" in row else "-",
            f"{int(row.get('subs', 0))}",
        ])
    if not rows:
        rows.append(["(no views)", "-", "-", "-", "-", "-", "-"])
    seq = cur.service.get("repro_service_seq",
                          cur.service.get("repro_router_seq"))
    uptime = cur.service.get("repro_server_uptime_seconds",
                             cur.service.get("repro_router_uptime_seconds"))
    title = "repro top"
    if seq is not None:
        title += f" · seq={int(seq)}"
    if uptime is not None:
        title += f" · up {uptime:.0f}s"
    return format_table(
        ["view", "batch/s", "delta/s", "p50 ms", "p99 ms", "queue", "subs"],
        rows,
        title=title,
    )


def run_top(url: str, interval: float = 2.0, iterations: int | None = None,
            auth_token: str | None = None, clear: bool = True,
            out=None) -> int:
    """Poll loop; ``iterations=None`` runs until interrupted."""
    out = out if out is not None else sys.stdout
    prev: TopSnapshot | None = None
    n = 0
    try:
        while iterations is None or n < iterations:
            if n > 0:
                time.sleep(interval)
            try:
                cur = fetch_metrics(url, auth_token=auth_token)
            except (urllib.error.URLError, OSError) as exc:
                print(f"scrape failed: {exc}", file=out)
                n += 1
                continue
            if clear and out is sys.stdout:
                out.write("\x1b[2J\x1b[H")
            print(render_top(cur, prev), file=out)
            out.flush()
            prev = cur
            n += 1
    except KeyboardInterrupt:
        pass
    return 0
