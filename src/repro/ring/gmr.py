"""The generalized multiset relation (GMR).

Tuples are plain Python tuples; the column names that give them meaning
live in the query AST (:mod:`repro.query`).  A GMR never stores a tuple
with multiplicity zero — zero means absence, which is what lets ``+``
express both insertion (positive multiplicity) and deletion (negative
multiplicity) of tuples uniformly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

Multiplicity = float | int
Tuple_ = tuple

_EPS = 1e-9


def is_zero(m: Multiplicity) -> bool:
    """Return True when a multiplicity should be treated as absent.

    Integer arithmetic is exact; float aggregates accumulate rounding
    error, so we clamp tiny residues to zero to keep GMRs canonical.
    This predicate is the single zero test of the whole system: every
    layer (scalar leaves, ring operations, storage pools) must agree on
    when a multiplicity vanishes, or canonical forms diverge between
    engines.
    """
    if isinstance(m, int):
        return m == 0
    return abs(m) < _EPS


#: Backwards-compatible alias (storage pools import the old name).
_is_zero = is_zero


class GMR:
    """A finite map from tuples to non-zero multiplicities.

    The class is deliberately thin: delta processing manipulates GMRs in
    tight loops, so every operation bottoms out in plain dict operations.
    """

    __slots__ = ("data",)

    def __init__(self, data: Mapping[Tuple_, Multiplicity] | None = None):
        if data is None:
            self.data: dict[Tuple_, Multiplicity] = {}
        else:
            self.data = {t: m for t, m in data.items() if not is_zero(m)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Tuple_, Multiplicity]]) -> "GMR":
        """Build a GMR by accumulating (tuple, multiplicity) pairs."""
        out: dict[Tuple_, Multiplicity] = {}
        for t, m in pairs:
            out[t] = out.get(t, 0) + m
        return cls({t: m for t, m in out.items() if not is_zero(m)})

    @classmethod
    def unsafe(cls, data: dict[Tuple_, Multiplicity]) -> "GMR":
        """Wrap an already-canonical dict without copying.

        Callers guarantee no zero multiplicities are present.  Used on
        hot paths where the dict was just built by a canonicalizing loop.
        """
        g = cls.__new__(cls)
        g.data = data
        return g

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.data)

    def items(self):
        return self.data.items()

    def get(self, t: Tuple_, default: Multiplicity = 0) -> Multiplicity:
        return self.data.get(t, default)

    def __contains__(self, t: Tuple_) -> bool:
        return t in self.data

    def is_zero(self) -> bool:
        return not self.data

    def total(self) -> Multiplicity:
        """Sum of all multiplicities (the full aggregate of the GMR)."""
        return sum(self.data.values())

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------
    def __add__(self, other: "GMR") -> "GMR":
        """Bag union: add multiplicities, dropping tuples that cancel."""
        if not self.data:
            return GMR(dict(other.data))
        if not other.data:
            return GMR(dict(self.data))
        out = dict(self.data)
        for t, m in other.data.items():
            nm = out.get(t, 0) + m
            if is_zero(nm):
                out.pop(t, None)
            else:
                out[t] = nm
        return GMR.unsafe(out)

    def __neg__(self) -> "GMR":
        return GMR.unsafe({t: -m for t, m in self.data.items()})

    def __sub__(self, other: "GMR") -> "GMR":
        return self + (-other)

    def scale(self, c: Multiplicity) -> "GMR":
        """Multiply every multiplicity by a constant (join with Const(c))."""
        if is_zero(c):
            return GMR()
        return GMR.unsafe({t: m * c for t, m in self.data.items()})

    def add_inplace(self, other: "GMR") -> None:
        """Destructive bag union; the mutation primitive behind ``+=``."""
        data = self.data
        for t, m in other.data.items():
            nm = data.get(t, 0) + m
            if is_zero(nm):
                data.pop(t, None)
            else:
                data[t] = nm

    def add_tuple(self, t: Tuple_, m: Multiplicity) -> None:
        """Accumulate one (tuple, multiplicity) pair in place."""
        nm = self.data.get(t, 0) + m
        if is_zero(nm):
            self.data.pop(t, None)
        else:
            self.data[t] = nm

    # ------------------------------------------------------------------
    # Structural operations used by the evaluator
    # ------------------------------------------------------------------
    def project(self, positions: Sequence[int]) -> "GMR":
        """Multiplicity-preserving projection onto tuple positions.

        This is the ``Sum`` operator once group-by columns have been
        resolved to positions: multiplicities of tuples that collide
        after projection are summed.
        """
        out: dict[Tuple_, Multiplicity] = {}
        for t, m in self.data.items():
            key = tuple(t[i] for i in positions)
            nm = out.get(key, 0) + m
            if is_zero(nm):
                out.pop(key, None)
            else:
                out[key] = nm
        return GMR.unsafe(out)

    def filter(self, pred: Callable[[Tuple_], bool]) -> "GMR":
        return GMR.unsafe({t: m for t, m in self.data.items() if pred(t)})

    def map_tuples(self, fn: Callable[[Tuple_], Tuple_]) -> "GMR":
        """Re-key every tuple, accumulating multiplicities on collision."""
        out: dict[Tuple_, Multiplicity] = {}
        for t, m in self.data.items():
            key = fn(t)
            nm = out.get(key, 0) + m
            if is_zero(nm):
                out.pop(key, None)
            else:
                out[key] = nm
        return GMR.unsafe(out)

    def exists(self) -> "GMR":
        """Set every non-zero multiplicity to 1 (the Exists operator)."""
        return GMR.unsafe({t: 1 for t in self.data})

    # ------------------------------------------------------------------
    # Equality / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GMR):
            return NotImplemented
        if self.data.keys() != other.data.keys():
            return False
        return all(
            is_zero(m - other.data[t]) for t, m in self.data.items()
        )

    def __hash__(self):  # pragma: no cover - GMRs are not hashable
        raise TypeError("GMR objects are mutable and unhashable")

    def __repr__(self) -> str:
        if len(self.data) > 8:
            head = dict(list(self.data.items())[:8])
            return f"GMR({head} ... {len(self.data)} tuples)"
        return f"GMR({self.data})"


#: The additive identity — an empty relation.
ZERO = GMR()


def singleton(t: Tuple_, m: Multiplicity = 1) -> GMR:
    """A one-tuple GMR; ``singleton((), c)`` is the constant ``c``."""
    if is_zero(m):
        return GMR()
    return GMR.unsafe({t: m})


def gmr_of_pairs(pairs: Iterable[tuple[Tuple_, Multiplicity]]) -> GMR:
    """Convenience alias of :meth:`GMR.from_pairs`."""
    return GMR.from_pairs(pairs)
