"""Generalized multiset relations (GMRs): the ring data model.

A GMR is a finite map from tuples to non-zero multiplicities.  The
multiplicity generalizes the classical bag count to arbitrary numeric
aggregate values (SUM, COUNT, ...), so *updating* an aggregate means
changing a multiplicity instead of deleting and re-inserting tuples.

GMRs form a commutative ring-like structure under bag union (``+``, adds
multiplicities) and natural join (``*``, multiplies multiplicities),
which is what makes delta processing compositional.
"""

from repro.ring.gmr import GMR, ZERO, gmr_of_pairs, is_zero, singleton

__all__ = ["GMR", "ZERO", "gmr_of_pairs", "is_zero", "singleton"]
