"""The thin network client mirroring the :class:`ViewServer` API.

One :class:`Client` wraps one keep-alive control connection (view
lifecycle, batches, snapshots, drain); each :meth:`Client.subscribe`
opens its *own* connection for the push stream, so reading deltas never
head-of-line-blocks ingestion.  Everything is stdlib ``http.client``.

A client is a single-producer handle: use one per thread (the server
side is what makes concurrent producers safe, via the ViewService
lock).  The blocking barrier pattern over the wire::

    client = Client(port=server.port)
    client.create_view("v", "SELECT ...", backend="async:rivm-batch")
    stream = client.subscribe("v")
    client.batch("R", GMR({(1, 10): 1}))
    token = client.drain("v")           # server-side barrier + mark
    deltas = stream.read_until_mark(token)   # everything owed, in order

**Failure classification.**  Transport failures split into two kinds,
and retry safety differs between them:

* :class:`NetConnectError` — the TCP connection could never be
  established (refused, unreachable, connect timeout).  The request
  was *never sent*, so retrying is safe for any method; the cluster
  router leans on this to fail over batches to a restarting shard.
* plain transport errors after connect — the request may already have
  been applied even though the reply was lost.  Only idempotent GETs
  are retried; a re-sent ``POST /batch`` could double-apply its delta.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.obs import TRACE_HEADER
from repro.ring import GMR
from repro.service import ViewDelta
from repro.net.wire import decode_delta, decode_gmr, encode_gmr

__all__ = [
    "Client", "DeltaStream", "NetConnectError", "NetError",
    "ResumableStream",
]


class NetError(RuntimeError):
    """An HTTP error reply (or a broken stream) from the view server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class NetConnectError(NetError):
    """The server could not be reached at all (connection refused,
    unreachable host, connect timeout).

    The request was never sent, so callers may retry it — including
    non-idempotent POSTs — against the same or another endpoint without
    risking a double apply.  ``status`` is 0: no HTTP reply exists.
    """

    def __init__(self, message: str):
        super().__init__(0, message)


class Client:
    """Control-plane client for one :class:`~repro.net.ViewServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        auth_token: str | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auth_token = auth_token
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        """Open and tune one connection; failures here are by
        definition pre-request and raise :class:`NetConnectError`."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.connect()
        except OSError as exc:
            conn.close()
            raise NetConnectError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        # Request bodies are small and ping-pong with replies on one
        # keep-alive connection; without TCP_NODELAY, Nagle plus the
        # peer's delayed ACK stalls every exchange ~40ms.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = self._connect()
        return self._conn

    def _headers(self) -> dict:
        if self.auth_token is None:
            return {}
        return {"Authorization": f"Bearer {self.auth_token}"}

    def _request(self, method: str, path: str, payload=None,
                 extra_headers: dict | None = None, raw: bool = False):
        body = None
        headers = self._headers()
        if extra_headers:
            headers.update(extra_headers)
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Only idempotent reads are retried transparently after an
        # in-flight failure (a dropped keep-alive connection gets one
        # reconnect).  POST/DELETE must not be: the server may already
        # have applied the request even though the reply never arrived,
        # and silently re-sending e.g. /batch would apply the same GMR
        # delta twice.  Connect-phase failures (NetConnectError) are
        # not retried here either — they propagate with their type so
        # callers that *can* safely retry (the request never left) get
        # to decide.
        attempts = (0, 1) if method == "GET" else (1,)
        for attempt in attempts:
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ) as exc:
                self._close_conn()
                if attempt:
                    # One carve-out from the no-retry-writes rule: a
                    # *reused* keep-alive connection that dies before a
                    # single response byte.  Servers half-close
                    # (``SHUT_RD``) idle keep-alives on shutdown, so
                    # zero-bytes-then-EOF on an old connection means
                    # the request was provably never read — re-sending
                    # it (against whatever now owns the port) is safe.
                    # Surfacing it as NetConnectError hands the retry
                    # decision to callers that already handle fresh
                    # connect failures, e.g. the router's write path.
                    if reused and isinstance(
                        exc,
                        (
                            http.client.RemoteDisconnected,
                            ConnectionResetError,
                            BrokenPipeError,
                        ),
                    ):
                        raise NetConnectError(
                            f"stale keep-alive connection to "
                            f"{self.host}:{self.port}: {exc}"
                        ) from exc
                    raise
        if resp.status >= 400:
            try:
                decoded = json.loads(data) if data else None
            except json.JSONDecodeError:
                decoded = None
            message = (
                decoded.get("error", data.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else data.decode("utf-8", "replace")
            )
            raise NetError(resp.status, message)
        if raw:
            return data.decode("utf-8")
        return json.loads(data) if data else None

    def _close_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def close(self) -> None:
        """Close the control connection (streams close separately)."""
        self._close_conn()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mirrored API
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def backends(self) -> dict:
        """Registered execution backends: ``{name: description}``."""
        return self._request("GET", "/backends")

    def views(self) -> dict:
        """All hosted views with their delivery stats."""
        return self._request("GET", "/views")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def create_view(
        self,
        name: str,
        source: str,
        backend: str = "rivm-batch",
        *,
        updatable=None,
        **options,
    ) -> dict:
        """Create a view from a SQL source (parsed against the server's
        catalog); ``options`` are forwarded to the backend factory."""
        payload = {"name": name, "source": source, "backend": backend}
        if updatable is not None:
            payload["updatable"] = sorted(updatable)
        if options:
            payload["options"] = options
        return self._request("POST", "/views", payload)

    def drop_view(self, name: str) -> dict:
        return self._request("DELETE", f"/views/{name}")

    def batch(self, relation: str, batch: GMR, trace=None) -> dict:
        """Stream one GMR delta batch; returns ``{seq, touched}``.

        ``trace`` (a :class:`~repro.obs.TraceContext`) is sent as the
        ``X-Repro-Trace`` header so the server joins the caller's trace
        instead of opening a new one.
        """
        extra = {TRACE_HEADER: trace.header()} if trace is not None else None
        return self._request(
            "POST", f"/batch/{relation}", encode_gmr(batch),
            extra_headers=extra,
        )

    def metrics_raw(self) -> str:
        """The server's ``/metrics`` Prometheus text exposition."""
        return self._request("GET", "/metrics", raw=True)

    def trace_recent(
        self,
        view: str | None = None,
        seq: int | None = None,
        trace_id: str | None = None,
        limit: int = 50,
    ) -> list[dict]:
        """Assembled span trees from the server's ``/trace/recent``."""
        params = [("limit", str(limit))]
        if view is not None:
            params.append(("view", view))
        if seq is not None:
            params.append(("seq", str(seq)))
        if trace_id is not None:
            params.append(("trace_id", trace_id))
        qs = "&".join(f"{k}={v}" for k, v in params)
        return self._request("GET", f"/trace/recent?{qs}")["traces"]

    def snapshot(self, name: str, consistent: bool = True) -> GMR:
        """Pull a view's contents.  ``consistent=False`` asks the
        server to skip the drain barrier for async-ingesting views and
        serve the last *flushed* state — a bounded-staleness read that
        never blocks behind the batcher (the router's replica reads)."""
        path = f"/views/{name}/snapshot"
        if not consistent:
            path += "?consistent=0"
        reply = self._request("GET", path)
        return decode_gmr(reply["snapshot"])

    def view_stats(self, name: str) -> dict:
        return self._request("GET", f"/views/{name}/stats")

    def drain(self, view: str | None = None) -> int:
        """Server-side barrier; returns the ``mark`` token broadcast on
        the drained delta streams (see ``DeltaStream.read_until_mark``)."""
        return self.drain_info(view)["mark"]

    def drain_info(self, view: str | None = None) -> dict:
        """The full ``/drain`` reply: ``mark`` (the token), ``seq`` (the
        server seq the barrier covered), ``streams`` — plus ``shards``
        (the per-shard seq vector) when the server is a cluster router."""
        payload = {"view": view} if view is not None else {}
        return self._request("POST", "/drain", payload)

    def shutdown_server(self) -> dict:
        """Ask the server to shut down cleanly."""
        reply = self._request("POST", "/shutdown")
        self._close_conn()
        return reply

    def subscribe(
        self, view: str, *, initial: bool = False,
        from_seq: int | None = None, timeout: float = 60.0
    ) -> "DeltaStream":
        """Open a push subscription on its own connection.

        ``timeout`` bounds any single blocking read on the stream; the
        server heartbeats idle streams well inside it, so a timeout
        means the server is gone, not just quiet.

        ``from_seq=N`` asks a *durable* server to first replay every
        logged delta with seq > N, then splice into the live stream
        with no gap and no duplicate — a lossless resume after a
        disconnect, restart, or a ``lagging`` drop.  Mutually exclusive
        with ``initial``.  Raises :class:`NetError` with status 400 on
        a non-durable server and 410 when N is below the server's
        resume horizon (a checkpoint truncated the log there; fall back
        to ``initial=True`` for a full snapshot).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.connect()
        except OSError as exc:
            conn.close()
            raise NetConnectError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        path = f"/views/{view}/deltas"
        if initial:
            path += "?initial=1"
        elif from_seq is not None:
            path += f"?from_seq={int(from_seq)}"
        conn.request("GET", path, headers=self._headers())
        resp = conn.getresponse()
        if resp.status >= 400:
            data = resp.read()
            conn.close()
            try:
                message = json.loads(data)["error"]
            except Exception:
                message = data.decode("utf-8", "replace")
            raise NetError(resp.status, message)
        stream = DeltaStream(view, conn, resp)
        first = stream._read_envelope()
        if first.get("type") != "subscribed":
            conn.close()
            raise NetError(502, f"expected subscribed event, got {first!r}")
        return stream


class DeltaStream:
    """One push subscription: an iterator of :class:`ViewDelta` events.

    Iterating yields decoded deltas (heartbeats are skipped) until the
    server closes the stream.  :meth:`read_until_mark` consumes up to a
    drain token — the client half of the over-the-wire barrier.
    """

    def __init__(self, view: str, conn, resp):
        self.view = view
        self._conn = conn
        self._resp = resp
        self.closed_reason: str | None = None
        #: highest delta seq read from the stream — the value to pass
        #: as ``from_seq`` when resuming after a disconnect
        self.last_seq: int = 0
        #: seq to resume from, taken from a ``closed`` envelope that
        #: carried one (the server's ``lagging`` drop includes it)
        self.resume_from: int | None = None
        #: mark tokens seen while reading (in arrival order)
        self.marks: list[int] = []
        #: per-shard seq vectors of cluster-router marks, keyed by
        #: token (single-server marks carry no vector)
        self.mark_shards: dict[int, dict[str, int]] = {}
        #: the most recent heartbeat envelope read from the stream
        #: (``{"type": "heartbeat", "seq": ..., "uptime_s": ...}``) —
        #: lets an idle subscriber detect a stalled shard (``seq``
        #: frozen) or a restart (``uptime_s`` reset) without a drain
        self.last_heartbeat: dict | None = None

    def _read_envelope(self) -> dict:
        """The next raw NDJSON envelope (any type)."""
        if self.closed_reason is not None:
            raise NetError(410, f"stream closed: {self.closed_reason}")
        try:
            line = self._resp.readline()
        except (
            http.client.HTTPException, ConnectionError, OSError,
            # close() from another thread tears the response's buffer
            # out from under a blocked readline, which then surfaces as
            # AttributeError/ValueError from http.client internals.
            AttributeError, ValueError,
        ) as exc:
            self.close()
            raise NetError(499, f"stream broken: {exc}") from exc
        if not line:
            self.close()
            raise NetError(499, "stream ended without a closed event")
        envelope = json.loads(line)
        kind = envelope.get("type")
        if kind == "heartbeat":
            # Recorded centrally so every read path (iteration,
            # read_until_mark, raw envelope reads) keeps it fresh.
            self.last_heartbeat = envelope
        elif kind == "closed":
            self.closed_reason = envelope.get("reason", "")
            if envelope.get("resume_from") is not None:
                self.resume_from = envelope["resume_from"]
            self.close()
        elif kind == "delta":
            seq = envelope.get("seq") or 0
            if seq > self.last_seq:
                self.last_seq = seq
        return envelope

    def _record_mark(self, envelope: dict) -> None:
        self.marks.append(envelope["token"])
        if "shards" in envelope:
            self.mark_shards[envelope["token"]] = envelope["shards"]

    def __iter__(self):
        while True:
            try:
                envelope = self._read_envelope()
            except NetError:
                return
            kind = envelope.get("type")
            if kind == "delta":
                yield decode_delta(envelope)
            elif kind == "mark":
                self._record_mark(envelope)
            elif kind == "closed":
                return

    def read_until_mark(self, token: int) -> list[ViewDelta]:
        """Consume the stream up to (and including) mark ``token``;
        returns the deltas read on the way, in delivery order.

        Raises :class:`NetError` if the stream closes first — except
        when the close reason is ``view dropped``, where the deltas
        owed were (by the drain-then-cancel drop ordering) already
        delivered before the close, so they are returned.
        """
        deltas: list[ViewDelta] = []
        while True:
            try:
                envelope = self._read_envelope()
            except NetError:
                if self.closed_reason == "view dropped":
                    return deltas
                raise
            kind = envelope.get("type")
            if kind == "delta":
                deltas.append(decode_delta(envelope))
            elif kind == "mark":
                self._record_mark(envelope)
                if envelope["token"] >= token:
                    return deltas
            elif kind == "closed":
                if self.closed_reason == "view dropped":
                    return deltas
                raise NetError(
                    410, f"stream closed before mark: {self.closed_reason}"
                )

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass

    def __enter__(self) -> "DeltaStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            f"closed: {self.closed_reason}" if self.closed_reason else "open"
        )
        return f"DeltaStream({self.view!r}, {state})"


class ResumableStream:
    """A delta iterator that survives disconnects via ``from_seq``.

    Wraps :meth:`Client.subscribe` against a *durable* server: when the
    underlying stream breaks (server restart, network drop, ``lagging``
    disconnect), it re-subscribes with ``from_seq=<highest seq seen>``
    and keeps yielding — deduping the resume overlap, so the caller
    observes every delta seq exactly once, in order, across any number
    of reconnects.

        stream = ResumableStream(client, "v")
        for delta in stream:       # seamless across server restarts
            total.add_inplace(delta.delta)

    Terminal conditions (iteration ends or raises instead of retrying):

    * the server closes with ``view dropped`` — iteration ends;
    * a non-transient reply — 400 (server not durable), 404 (unknown
      view), 410 (resume horizon passed: a checkpoint truncated the
      log; re-subscribe with ``initial=True`` for a snapshot) — raises;
    * ``max_reconnects`` consecutive failed attempts — raises the last
      error.  The budget resets every time a delta gets through.
    """

    def __init__(
        self,
        client: Client,
        view: str,
        *,
        from_seq: int = 0,
        max_reconnects: int = 8,
        reconnect_delay_s: float = 0.2,
        timeout: float = 60.0,
    ):
        self.client = client
        self.view = view
        self.last_seq = from_seq
        self.max_reconnects = max_reconnects
        self.reconnect_delay_s = reconnect_delay_s
        self.timeout = timeout
        #: reconnects performed so far (diagnostics)
        self.reconnects = 0
        self._stream: DeltaStream | None = None
        self._closed = False

    def _subscribe(self) -> DeltaStream:
        return self.client.subscribe(
            self.view, from_seq=self.last_seq, timeout=self.timeout
        )

    def __iter__(self):
        failures = 0
        while not self._closed:
            if self._stream is None:
                try:
                    self._stream = self._subscribe()
                except NetError as exc:
                    if exc.status in (400, 404, 410):
                        raise  # misconfiguration, not a blip: fail loudly
                    failures += 1
                    if failures > self.max_reconnects:
                        raise
                    self.reconnects += 1
                    time.sleep(self.reconnect_delay_s)
                    continue
            for delta in self._stream:
                if delta.seq <= self.last_seq:
                    continue  # resume overlap, already yielded
                self.last_seq = delta.seq
                failures = 0  # progress resets the reconnect budget
                yield delta
            # The inner iterator only exits on close/break of stream.
            reason = self._stream.closed_reason
            self._stream = None
            if reason == "view dropped":
                return
            failures += 1
            if failures > self.max_reconnects:
                raise NetError(
                    499,
                    f"stream to {self.view!r} lost after "
                    f"{self.max_reconnects} reconnect attempts "
                    f"(last close: {reason!r})",
                )
            self.reconnects += 1
            time.sleep(self.reconnect_delay_s)

    def close(self) -> None:
        self._closed = True
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ResumableStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ResumableStream({self.view!r}, last_seq={self.last_seq}, "
            f"reconnects={self.reconnects})"
        )
