"""The JSON wire format of the network frontend.

Everything the server and client exchange is JSON, one object per
message.  GMRs need a codec because their keys are Python tuples (JSON
objects only key on strings): a GMR travels as a list of
``[[v0, v1, ...], multiplicity]`` pairs, preserving int/float
multiplicities exactly and tuple fields as JSON scalars.  Push
subscriptions stream newline-delimited JSON (``application/x-ndjson``)
over a chunked HTTP response; every line is an *event envelope* with a
``type`` discriminator:

* ``subscribed`` — stream opened (echoes the view name);
* ``delta`` — one :class:`~repro.service.ViewDelta` (fields ``view``,
  ``relation``, ``seq``, ``delta``);
* ``mark`` — a drain barrier token (see the server's ``POST /drain``):
  every delta admitted before the drain precedes the mark on the wire.
  A mark from the cluster router additionally carries ``shards``, the
  vector of per-shard sequence numbers the barrier covered (shard
  index, as a string key, to that shard's service seq);
* ``heartbeat`` — keep-alive while the view is idle (clients skip it);
* ``closed`` — the stream is over (view dropped or server closing).

The codec is deliberately minimal: tuple fields must already be JSON
scalars (str/int/float/bool/None), which holds for every workload in
the repo — the decoder rebuilds rows with ``tuple(...)`` only.
"""

from __future__ import annotations

import json

from repro.obs import TraceContext
from repro.ring import GMR
from repro.service import ViewDelta

__all__ = [
    "WIRE_VERSION",
    "decode_delta",
    "decode_gmr",
    "dump_line",
    "encode_delta",
    "encode_gmr",
    "encode_mark",
]

#: bumped on incompatible wire-format changes; exchanged in /health
WIRE_VERSION = 1


def encode_gmr(gmr: GMR) -> list:
    """A GMR as JSON-safe ``[[row...], multiplicity]`` pairs."""
    return [[list(t), m] for t, m in gmr.data.items()]


def decode_gmr(payload) -> GMR:
    """Rebuild a GMR from :func:`encode_gmr` output.

    Raises ``ValueError`` on malformed payloads — the server turns that
    into an HTTP 400 instead of a 500.
    """
    if not isinstance(payload, list):
        raise ValueError(
            f"GMR payload must be a list of [row, multiplicity] pairs, "
            f"got {type(payload).__name__}"
        )
    data: dict[tuple, float | int] = {}
    for pair in payload:
        if not (isinstance(pair, list) and len(pair) == 2):
            raise ValueError(f"malformed GMR pair: {pair!r}")
        row, m = pair
        if not isinstance(row, list):
            raise ValueError(f"GMR row must be a list, got {row!r}")
        if not isinstance(m, (int, float)) or isinstance(m, bool):
            raise ValueError(f"multiplicity must be a number, got {m!r}")
        key = tuple(row)
        data[key] = data.get(key, 0) + m
    return GMR(data)


def encode_delta(event: ViewDelta) -> dict:
    """A ViewDelta as a ``type: delta`` wire envelope.

    The optional ``trace`` field (``{"id": ..., "span": ...}``) carries
    the publish span's context so the next hop — a router merge or a
    subscriber — joins the originating batch's trace.
    """
    envelope = {
        "type": "delta",
        "view": event.view,
        "relation": event.relation,
        "seq": event.seq,
        "delta": encode_gmr(event.delta),
    }
    if event.trace is not None:
        envelope["trace"] = event.trace.to_wire()
    return envelope


def decode_delta(envelope: dict) -> ViewDelta:
    """Rebuild a ViewDelta from a ``type: delta`` envelope."""
    return ViewDelta(
        view=envelope["view"],
        relation=envelope["relation"],
        seq=envelope["seq"],
        delta=decode_gmr(envelope["delta"]),
        trace=TraceContext.from_wire(envelope.get("trace")),
    )


def encode_mark(token: int, shards: dict | None = None) -> dict:
    """A drain-barrier token as a ``type: mark`` envelope.

    ``shards`` is the cluster router's per-shard seq vector (shard
    index -> that shard's service seq at the barrier); a single server
    omits it.
    """
    envelope = {"type": "mark", "token": token}
    if shards is not None:
        envelope["shards"] = {str(k): v for k, v in shards.items()}
    return envelope


def dump_line(obj: dict) -> bytes:
    """One NDJSON line: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
