"""The network serving frontend: ViewService over real sockets.

This package turns the in-process :class:`~repro.service.ViewService`
into a deployable view-serving service — the shape DBToaster-style
systems ship: a maintenance core behind an HTTP API, with push-based
delta subscriptions streamed to remote clients.

* :class:`ViewServer` — a stdlib-only threaded HTTP server exposing
  view lifecycle, batch ingestion, snapshots/stats, a drain barrier,
  and chunked-NDJSON push subscriptions;
* :class:`Client` / :class:`DeltaStream` — the thin client mirroring
  the API (``http.client``, one extra connection per subscription);
* :mod:`repro.net.wire` — the JSON codecs for GMRs and ViewDelta
  events.

See ARCHITECTURE.md ("Network frontend") for the wire format, the
threading model, and what ``drain`` means over HTTP.
"""

from repro.net.client import (
    Client,
    DeltaStream,
    NetConnectError,
    NetError,
    ResumableStream,
)
from repro.net.server import (
    JsonHttpHandler,
    RateLimiter,
    StreamHub,
    StreamQueue,
    ViewServer,
)
from repro.net.wire import (
    WIRE_VERSION,
    decode_delta,
    decode_gmr,
    encode_delta,
    encode_gmr,
    encode_mark,
)

__all__ = [
    "Client",
    "DeltaStream",
    "JsonHttpHandler",
    "NetConnectError",
    "NetError",
    "RateLimiter",
    "ResumableStream",
    "StreamHub",
    "StreamQueue",
    "ViewServer",
    "WIRE_VERSION",
    "decode_delta",
    "decode_gmr",
    "encode_delta",
    "encode_gmr",
    "encode_mark",
]
