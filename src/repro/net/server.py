"""The network serving frontend: :class:`ViewServer`.

A stdlib-only HTTP frontend over one :class:`~repro.service.ViewService`
session — the deployment shape of DBToaster-style view-serving systems:
a maintenance core behind a network API, with push subscriptions fanning
maintained deltas out to remote clients.

One ``ThreadingHTTPServer`` handles each connection on its own thread,
so the service's own lock (see the ViewService threading model) is what
serializes concurrent producers; the frontend adds no locking of its
own around maintenance.  Endpoints:

=========================== ==========================================
``GET  /health``            liveness + wire version + session summary
``GET  /backends``          the execution-backend catalog
``GET  /views``             all hosted views and their delivery stats
                            (``?dag=1`` adds the shared-subplan DAG:
                            internal nodes, consumers, routing)
``POST /views``             create a view (SQL source, backend, options)
``DELETE /views/<name>``    drop a view (drains async queues first)
``POST /batch/<relation>``  ingest one GMR delta batch; returns seq +
                            the touched views
``GET  /views/<name>/snapshot``  pull the current contents
                            (``?consistent=0`` skips the drain barrier
                            for async views: last flushed state)
``GET  /views/<name>/stats``     per-view delivery stats
``POST /drain``             barrier (optionally ``{"view": name}``);
                            broadcasts a ``mark`` token on the delta
                            streams it drained
``GET  /views/<name>/deltas``    push subscription: chunked NDJSON
                            stream of ``delta`` events (``?initial=1``
                            seeds with the current snapshot;
                            ``?from_seq=N`` — durable services only —
                            replays the logged deltas with seq > N,
                            then splices into the live stream with no
                            gap and no duplicate seq)
``POST /shutdown``          clean remote shutdown
=========================== ==========================================

**What ``drain`` means over HTTP.**  ``POST /drain`` returns once every
batch admitted *before the request* is flushed and its deltas have been
handed to the per-connection stream queues, and the ``mark`` token it
returns has been enqueued *behind* those deltas on each stream.  It
does **not** mean remote subscribers have already read them — sockets
buffer — so a client that needs the barrier reads its own stream until
the mark arrives (``DeltaStream.read_until_mark``).

**Auth.**  With ``auth_token=...`` every endpoint except ``GET /health``
requires ``Authorization: Bearer <token>`` and replies 401 otherwise —
the minimum needed for a router tier to front untrusted producers.

**Quotas.**  With ``max_batches_per_sec=...`` every ``POST /batch``
draws one token from a per-client token bucket (:class:`RateLimiter`;
clients are keyed by bearer token when presented, else by peer
address).  An empty bucket replies ``429`` with a ``Retry-After``
header and bumps ``repro_server_throttled_total``; admitted requests
are unaffected.  The same knob exists on the cluster router.

**Slow readers.**  Every stream's queue is a bounded
:class:`StreamQueue` (``stream_queue_limit`` events).  A subscriber
that falls further behind than the bound has its pending events
dropped and its stream ended with a typed
``closed{reason: "lagging", resume_from: N}`` envelope, where ``N`` is
the last seq actually written to it — against a durable service it
resumes losslessly via ``?from_seq=N`` (the dropped events are in the
log); one stalled reader can no longer grow server memory without
bound, and the other subscribers never notice.

The request plumbing (:class:`JsonHttpHandler`) and the stream registry
(:class:`StreamHub`) are shared with the cluster router frontend
(:mod:`repro.cluster`), which speaks the same wire protocol over a set
of shard ``ViewServer``\\ s.
"""

from __future__ import annotations

import hmac
import json
import queue
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from collections import deque

from repro.exec import BackendError, available_backends, backend_info
from repro.obs import TRACE_HEADER, TraceContext
from repro.service import ServiceError, ViewDelta, ViewService
from repro.net.wire import (
    WIRE_VERSION,
    decode_gmr,
    dump_line,
    encode_delta,
    encode_gmr,
    encode_mark,
)

__all__ = [
    "JsonHttpHandler",
    "RateLimiter",
    "StreamHub",
    "StreamQueue",
    "ViewServer",
]

#: how long a stream poll waits before re-checking liveness
_STREAM_POLL_S = 0.25
#: idle time after which a stream writes a heartbeat line
_HEARTBEAT_S = 2.0
#: default per-subscriber stream queue bound (events, not bytes)
DEFAULT_STREAM_QUEUE_LIMIT = 256

#: sentinel queued to every live stream when the server closes
CLOSE_SENTINEL = object()


class RateLimiter:
    """Per-client token buckets for the ingest quota.

    Each key (one producer: its bearer token, or its peer address when
    requests are anonymous) gets an independent bucket refilled at
    ``rate`` tokens/second up to ``burst`` (default: one second's worth,
    at least 1 — a client at exactly the quota is never throttled, and
    short bursts after idle are absorbed).  :meth:`try_acquire` is the
    whole protocol: take a token if one is there, otherwise report how
    long until one is.
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self._lock = threading.Lock()
        #: key -> [tokens, last refill timestamp]
        self._buckets: dict[str, list[float]] = {}

    def try_acquire(self, key: str, now: float | None = None) -> float:
        """Draw one token from ``key``'s bucket.

        Returns ``0.0`` if the request is admitted, else the seconds
        until a token will be available (the ``Retry-After`` basis).
        ``now`` injects a clock for tests; the default is monotonic.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = [self.burst, now]
            tokens = min(
                self.burst, bucket[0] + (now - bucket[1]) * self.rate
            )
            bucket[1] = now
            if tokens >= 1.0:
                bucket[0] = tokens - 1.0
                return 0.0
            bucket[0] = tokens
            return (1.0 - tokens) / self.rate


class StreamQueue:
    """One subscriber's bounded event queue, with lag-drop semantics.

    Publishers :meth:`put`, the stream's pump thread :meth:`get`.  An
    event arriving while ``limit`` events are already pending marks the
    queue *lagged*: the pending events are discarded (the subscriber
    will re-fetch them from the durable log via ``from_seq``), further
    puts are ignored, and the pump — which checks :attr:`lagged` every
    cycle — ends the stream with the typed lag close.  The close
    sentinel bypasses the bound so shutdown always reaches the pump.

    This replaces the unbounded ``queue.SimpleQueue`` the streams used
    before: one stalled reader could grow server memory without limit.
    """

    def __init__(self, limit: int = DEFAULT_STREAM_QUEUE_LIMIT):
        self.limit = max(1, int(limit))
        self._cond = threading.Condition()
        self._items: deque = deque()
        #: set (sticky) when the bound was hit; pending events dropped
        self.lagged = False

    def put(self, item) -> None:
        with self._cond:
            if item is CLOSE_SENTINEL:
                self._items.append(item)
                self._cond.notify()
                return
            if self.lagged:
                return
            if len(self._items) >= self.limit:
                self.lagged = True
                self._items.clear()
                self._cond.notify()  # wake the pump for the typed close
                return
            self._items.append(item)
            self._cond.notify()

    def get(self, timeout: float | None = None):
        """Next item, or raises :class:`queue.Empty` after ``timeout``."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                raise queue.Empty
            return self._items.popleft()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


class StreamHub:
    """Registry of live subscription streams, for mark/close broadcast.

    Every ``/deltas`` connection owns one :class:`StreamQueue`; delta
    events are enqueued by publisher threads (the service's
    subscription callback, or the cluster router's shard-stream
    mergers), marks by ``/drain`` handler threads, and the close
    sentinel by server shutdown — so the stream writer thread is the
    queue's only consumer and wire order equals enqueue order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._streams: dict[str, list[StreamQueue]] = {}
        self.closing = False

    def register(self, view: str, q: StreamQueue) -> None:
        with self._lock:
            self._streams.setdefault(view, []).append(q)

    def unregister(self, view: str, q: StreamQueue) -> None:
        with self._lock:
            streams = self._streams.get(view, [])
            if q in streams:
                streams.remove(q)
            if not streams:
                self._streams.pop(view, None)

    def broadcast(self, view: str | None, item) -> int:
        """Queue ``item`` on every stream of ``view`` (all views when
        ``None``); returns how many streams received it."""
        with self._lock:
            if view is None:
                targets = [q for qs in self._streams.values() for q in qs]
            else:
                targets = list(self._streams.get(view, []))
        for q in targets:
            q.put(item)
        return len(targets)

    def count(self) -> int:
        """Live streams across all views."""
        with self._lock:
            return sum(len(qs) for qs in self._streams.values())

    def close_all(self) -> None:
        with self._lock:
            self.closing = True
        self.broadcast(None, CLOSE_SENTINEL)


class JsonHttpHandler(BaseHTTPRequestHandler):
    """Shared request plumbing of the view-serving HTTP frontends.

    Subclasses implement :meth:`_resolve` (method + path parts -> a
    nullary handler) and may override :attr:`auth_token` (a property
    reading the owning server's configuration).  The base class
    provides JSON body I/O, the error-to-status mapping, bearer-token
    enforcement, and the chunked-NDJSON stream primitives.
    """

    # HTTP/1.1 gives keep-alive for the control connection and chunked
    # transfer for the delta streams.
    protocol_version = "HTTP/1.1"
    # Small request/reply bodies ping-pong on one keep-alive connection;
    # Nagle + delayed ACK would add ~40ms to every exchange.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep harness/test output clean; errors surface as JSON

    @property
    def auth_token(self) -> str | None:
        """The bearer token required on every endpoint but /health
        (``None`` disables the check)."""
        return None

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length == 0:
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    def _send_json(
        self, payload, status: int = 200, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
        status: int = 200,
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _fail(self, exc: Exception) -> None:
        """Map service-layer exceptions onto HTTP statuses."""
        message = str(exc)
        if isinstance(exc, ServiceError):
            if message.startswith("unknown view"):
                return self._send_error_json(404, message)
            if "already exists" in message:
                return self._send_error_json(409, message)
            return self._send_error_json(400, message)
        if isinstance(exc, BackendError):
            return self._send_error_json(500, message)
        if isinstance(exc, (ValueError, KeyError, TypeError)):
            return self._send_error_json(400, message)
        raise exc

    def _authorized(self, parts: list[str]) -> bool:
        token = self.auth_token
        if token is None or parts == ["health"]:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    # ------------------------------------------------------------------
    # Ingest quotas
    # ------------------------------------------------------------------
    def _quota_key(self) -> str:
        """Who is this producer, for rate-limiting purposes?  The bearer
        token when one is presented (producers behind one NAT stay
        distinct), else the peer address."""
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return f"token:{header[len('Bearer '):]}"
        return f"addr:{self.client_address[0]}"

    def _throttled(self, limiter: RateLimiter | None, counter) -> bool:
        """Apply ``limiter`` to this request; on an empty bucket reply
        429 + ``Retry-After`` (whole seconds, rounded up as the spec
        wants), bump ``counter``, and return True."""
        if limiter is None:
            return False
        wait_s = limiter.try_acquire(self._quota_key())
        if wait_s <= 0:
            return False
        if counter is not None:
            counter.inc()
        # Drain the unread body: on a keep-alive connection the next
        # request would otherwise be parsed starting mid-body.
        length = int(self.headers.get("Content-Length", 0) or 0)
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)
        retry_after = max(1, int(-(-wait_s // 1)))
        self._send_json(
            {
                "error": "rate limit exceeded "
                         "(max_batches_per_sec quota)",
                "retry_after": retry_after,
            },
            status=429,
            headers={"Retry-After": str(retry_after)},
        )
        return True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if not self._authorized(parts):
                return self._send_error_json(
                    401, "missing or invalid bearer token "
                    "(Authorization: Bearer <token>)"
                )
            handler = self._resolve(method, parts, parse_qs(url.query))
            if handler is None:
                return self._send_error_json(
                    404, f"no route for {method} {url.path}"
                )
            handler()
        except (BrokenPipeError, ConnectionResetError):
            raise  # client gone; nothing to send
        except Exception as exc:  # noqa: BLE001 - mapped to a status
            try:
                self._fail(exc)
            except (BrokenPipeError, ConnectionResetError):
                pass

    def _resolve(self, method: str, parts: list[str], query: dict):
        raise NotImplementedError

    def do_GET(self):
        self._route("GET")

    def do_POST(self):
        self._route("POST")

    def do_DELETE(self):
        self._route("DELETE")

    # ------------------------------------------------------------------
    # Chunked-NDJSON stream primitives
    # ------------------------------------------------------------------
    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
        self.wfile.flush()

    def _end_chunks(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _start_stream(self, view: str) -> None:
        """Reply headers + the ``subscribed`` envelope of a push stream."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        self._write_chunk(dump_line({"type": "subscribed", "view": view}))

    def _close_stream(self, reason: str, **extra) -> None:
        """End a stream with a typed ``closed`` envelope.  ``extra``
        fields ride along (the lag close carries ``resume_from``)."""
        envelope = {"type": "closed", "reason": reason}
        envelope.update(extra)
        self._write_chunk(dump_line(envelope))
        self._end_chunks()


class _Handler(JsonHttpHandler):
    #: the owning ViewServer, injected by its handler subclass
    view_server: "ViewServer" = None

    @property
    def service(self) -> ViewService:
        return self.view_server.service

    @property
    def auth_token(self) -> str | None:
        return self.view_server.auth_token

    def _resolve(self, method: str, parts: list[str], query: dict):
        if method == "GET":
            if parts == ["health"]:
                return self._get_health
            if parts == ["backends"]:
                return self._get_backends
            if parts == ["stats"]:
                return self._get_stats
            if parts == ["metrics"]:
                return self._get_metrics
            if parts == ["trace", "recent"]:
                return lambda: self._get_trace_recent(query)
            if parts == ["views"]:
                return lambda: self._get_views(query)
            if len(parts) == 3 and parts[0] == "views":
                name = parts[1]
                if parts[2] == "snapshot":
                    return lambda: self._get_snapshot(name, query)
                if parts[2] == "stats":
                    return lambda: self._get_view_stats(name)
                if parts[2] == "deltas":
                    return lambda: self._stream_deltas(name, query)
        elif method == "POST":
            if parts == ["views"]:
                return self._post_views
            if len(parts) == 2 and parts[0] == "batch":
                return lambda: self._post_batch(parts[1])
            if parts == ["drain"]:
                return self._post_drain
            if parts == ["shutdown"]:
                return self._post_shutdown
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "views":
                return lambda: self._delete_view(parts[1])
        return None

    # ------------------------------------------------------------------
    # Control endpoints
    # ------------------------------------------------------------------
    def _get_health(self):
        payload = {
            "status": "ok",
            "wire_version": WIRE_VERSION,
            "views": len(self.service),
            "seq": self.service.seq,
        }
        horizon = getattr(self.service, "resume_horizon", None)
        if horizon is not None:  # durable service: advertise resume info
            payload["durable"] = True
            payload["resume_horizon"] = horizon
            recovered = getattr(self.service, "recovered", None)
            if recovered:
                payload["recovered"] = recovered
        self._send_json(payload)

    def _get_metrics(self):
        """Prometheus text exposition of the service registry."""
        self._send_text(
            self.service.registry.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _get_trace_recent(self, query: dict):
        """Assembled span trees from the service tracer's ring buffer."""
        seq = query.get("seq", [None])[0]
        limit = query.get("limit", ["50"])[0]
        trees = self.service.tracer.recent(
            view=query.get("view", [None])[0],
            seq=int(seq) if seq is not None else None,
            trace_id=query.get("trace_id", [None])[0],
            limit=int(limit),
        )
        self._send_json({"traces": trees})

    def _get_backends(self):
        self._send_json(
            {
                name: backend_info(name).description
                for name in available_backends()
            }
        )

    def _get_stats(self):
        self._send_json(
            {
                "views": list(self.service.views()),
                "seq": self.service.seq,
            }
        )

    def _view_stats(self, name: str) -> dict:
        handle = self.service.view(name)
        return {
            "view": handle.name,
            "backend": handle.backend_name,
            "streams": sorted(handle.relations),
            "batches_applied": handle.batches_applied,
            "deltas_delivered": handle.deltas_delivered,
            "subscribers": sum(
                1 for s in handle.subscriptions if s.active
            ),
        }

    def _get_views(self, query: dict | None = None):
        listing = {}
        for name in self.service.views():
            try:
                listing[name] = self._view_stats(name)
            except ServiceError:
                continue  # dropped between views() and the stat read
        dag = (query or {}).get("dag", ["0"])[0] in ("1", "true", "yes")
        if dag:
            # Shared-subplan DAG view: the flat listing plus the
            # internal nodes and each view's routing (which base
            # streams it takes directly, which node feeds it).
            return self._send_json(
                {"views": listing, "dag": self.service.dag_dump()}
            )
        self._send_json(listing)

    def _get_view_stats(self, name: str):
        self._send_json(self._view_stats(name))

    def _get_snapshot(self, name: str, query: dict):
        consistent = query.get("consistent", ["1"])[0] not in (
            "0", "false", "no",
        )
        # Read the seq first: the snapshot then covers at least every
        # batch up to it (reading after would claim batches a concurrent
        # producer added mid-read), so `seq` is a sound lower bound.
        seq = self.service.seq
        snap = self.service.snapshot(name, consistent=consistent)
        self._send_json(
            {"view": name, "seq": seq, "snapshot": encode_gmr(snap)}
        )

    def _post_views(self):
        body = self._read_json()
        if not isinstance(body, dict) or "name" not in body or "source" not in body:
            raise ValueError(
                'POST /views needs {"name": ..., "source": "SELECT ..."} '
                '(optional: "backend", "updatable", "options")'
            )
        updatable = body.get("updatable")
        handle = self.service.create_view(
            body["name"],
            body["source"],
            backend=body.get("backend", "rivm-batch"),
            updatable=frozenset(updatable) if updatable else None,
            **(body.get("options") or {}),
        )
        self._send_json(
            {
                "view": handle.name,
                "backend": handle.backend_name,
                "streams": sorted(handle.relations),
            },
            status=201,
        )

    def _delete_view(self, name: str):
        self.service.drop_view(name)
        self._send_json({"dropped": name})

    def _post_batch(self, relation: str):
        server = self.view_server
        if self._throttled(server.rate_limiter, server.throttled_counter):
            return
        payload = self._read_json()
        if payload is None:
            raise ValueError("POST /batch/<relation> needs a GMR body")
        batch = decode_gmr(payload)
        # Join the producer's trace when the request carries one; the
        # admission span (and everything below it) then shares the
        # producer's — or the router's — trace id.
        trace = TraceContext.parse(self.headers.get(TRACE_HEADER))
        # ingest() reports the seq assigned to *this* batch atomically;
        # reading service.seq afterwards would race other producers.
        seq, touched = self.service.ingest(relation, batch, trace=trace)
        reply = {"relation": relation, "seq": seq, "touched": touched}
        if trace is not None:
            reply["trace_id"] = trace.trace_id
        self._send_json(reply)

    def _post_drain(self):
        body = self._read_json() or {}
        view = body.get("view")
        self.service.drain(view)
        token = self.view_server._next_mark()
        streams = self.view_server.hub.broadcast(
            view, ("mark", token, None)
        )
        self._send_json(
            {"mark": token, "seq": self.service.seq, "streams": streams}
        )

    def _post_shutdown(self):
        self._send_json({"closing": True})
        # Close from a helper thread: close() joins the serve loop and
        # waits for streams, which must not happen on a handler thread
        # that the loop owns.
        threading.Thread(
            target=self.view_server.close, daemon=True
        ).start()

    # ------------------------------------------------------------------
    # The push stream
    # ------------------------------------------------------------------
    def _stream_deltas(self, name: str, query: dict):
        initial = query.get("initial", ["0"])[0] in ("1", "true", "yes")
        raw_from = query.get("from_seq", [None])[0]
        from_seq = None
        if raw_from is not None:
            if initial:
                return self._send_error_json(
                    400, "from_seq and initial=1 are mutually exclusive: "
                    "resume replays deltas, initial sends a snapshot"
                )
            fetch = getattr(self.service, "deltas_since", None)
            if fetch is None:
                return self._send_error_json(
                    400, "from_seq resume needs a durable service "
                    "(start the server with a WAL directory, e.g. "
                    "serve --wal-dir)"
                )
            try:
                from_seq = int(raw_from)
            except ValueError:
                return self._send_error_json(
                    400, f"from_seq must be an integer, got {raw_from!r}"
                )
        hub = self.view_server.hub
        q = StreamQueue(self.view_server.stream_queue_limit)
        hub.register(name, q)
        sub = None
        try:
            try:
                sub = self.service.subscribe(
                    name, lambda event: q.put(("delta", event)),
                    initial=initial,
                )
            except ServiceError:
                hub.unregister(name, q)
                raise
            handoff = from_seq or 0
            history = None
            if from_seq is not None:
                # Subscribe-then-scan: the durable publish path appends
                # to the log *before* delivering to subscriptions, so an
                # event is in this scan, in the live queue, or both —
                # never in neither.  The pump dedupes the overlap by
                # seq (per view, delivered seqs strictly increase).
                try:
                    history = list(fetch(name, from_seq))
                except ServiceError as exc:
                    sub.cancel()
                    hub.unregister(name, q)
                    sub = None
                    horizon = getattr(exc, "horizon", None)
                    if horizon is None:
                        raise
                    # Typed refusal: the log below `horizon` is
                    # truncated; the client falls back to initial=1.
                    return self._send_json(
                        {"error": str(exc), "resume_horizon": horizon},
                        status=410,
                    )
            self._start_stream(name)
            if history:
                delivered = self.view_server.delivery_counter(name)
                for seq, relation, delta, _seqs in history:
                    self._write_chunk(dump_line(
                        encode_delta(ViewDelta(name, relation, seq, delta))
                    ))
                    delivered.inc()
                    handoff = seq
            self._pump(
                name, q, sub,
                skip_to=handoff if from_seq is not None else None,
            )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; fall through to cleanup
        finally:
            if sub is not None:
                sub.cancel()
            hub.unregister(name, q)
            # The stream owned this connection; never reuse it.
            self.close_connection = True

    def _pump(self, name: str, q: StreamQueue, sub,
              skip_to: int | None = None) -> None:
        """Forward queued items to the socket until closed.

        ``skip_to`` (the ``from_seq`` handoff seq) drops queued deltas
        already covered by the historical replay.  A queue that went
        lagged ends the stream with ``closed{reason: "lagging",
        resume_from: <last seq written>}`` — note a *fully* stalled
        reader blocks this thread inside ``wfile.write``, so the typed
        close only reaches readers that are slow-but-reading; the
        memory bound holds either way.
        """
        idle_s = 0.0
        tracer = self.service.tracer
        delivered = self.view_server.delivery_counter(name)
        last_seq = skip_to or 0
        while True:
            if q.lagged:
                self.view_server.lag_counter(name).inc()
                self._close_stream("lagging", resume_from=last_seq)
                return
            try:
                item = q.get(timeout=_STREAM_POLL_S)
            except queue.Empty:
                if self.view_server.hub.closing:
                    self._close_stream("server closing")
                    return
                if not sub.active:
                    # drop_view cancelled us — everything owed was
                    # already queued (the drain-then-cancel ordering),
                    # and the queue is empty, so the stream is complete.
                    self._close_stream("view dropped")
                    return
                idle_s += _STREAM_POLL_S
                if idle_s >= _HEARTBEAT_S:
                    # seq + uptime let an idle subscriber detect a
                    # stalled shard (seq frozen) or a restarted one
                    # (uptime reset) without issuing a drain.
                    self._write_chunk(dump_line({
                        "type": "heartbeat",
                        "seq": self.service.seq,
                        "uptime_s": round(self.view_server.uptime_s(), 3),
                    }))
                    idle_s = 0.0
                continue
            idle_s = 0.0
            if item is CLOSE_SENTINEL:
                self._close_stream("server closing")
                return
            kind = item[0]
            if kind == "delta":
                event = item[1]
                if skip_to is not None and event.seq <= last_seq:
                    continue  # already sent by the historical replay
                with tracer.span(
                    "deliver", event.trace,
                    view=event.view, seq=event.seq,
                ):
                    self._write_chunk(dump_line(encode_delta(event)))
                delivered.inc()
                if event.seq > last_seq:
                    last_seq = event.seq
            elif kind == "mark":
                self._write_chunk(
                    dump_line(encode_mark(item[1], item[2]))
                )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Handler threads are daemons and streams end via the hub sentinel;
    # joining them here would make close() wait out a full poll cycle
    # per stream for no benefit.
    block_on_close = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._conns_lock = threading.Lock()
        self._conns: set = set()

    def process_request(self, request, client_address):
        with self._conns_lock:
            self._conns.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._conns_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Half-close (``SHUT_RD``) every open connection.

        Without this, a keep-alive handler thread blocked in its next
        ``readline`` outlives ``server_close()`` (daemon threads are
        never joined) and keeps *serving* — a zombie of the dead
        server.  A peer holding such a connection would have its
        requests answered against the dead server's stream hub, so a
        restarted server on the same port silently loses every
        broadcast.  ``SHUT_RD`` makes the blocked read return EOF —
        the handler loop exits and fully closes the socket — while
        letting a reply already being written flush: a request the
        old server *accepted* still completes, and one sent after the
        cut is provably unread, which is what lets clients classify
        the resulting EOF as safe-to-resend.
        """
        with self._conns_lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass  # already gone


class ViewServer:
    """Host a :class:`~repro.service.ViewService` on a real socket.

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    ``start()`` serves from a background thread;  ``serve_forever()``
    blocks the caller (the CLI's ``serve --port``).  ``close()`` ends
    every delta stream with a ``closed`` event, stops the accept loop,
    and closes the socket — it does **not** drop the hosted views, so a
    service can be re-hosted or inspected in-process afterwards.
    ``auth_token`` requires ``Authorization: Bearer <token>`` on every
    endpoint except ``GET /health``.  ``max_batches_per_sec`` puts a
    per-client token-bucket quota on ``POST /batch`` (see the module
    docstring); ``None`` disables it.
    """

    def __init__(
        self,
        service: ViewService,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
        stream_queue_limit: int = DEFAULT_STREAM_QUEUE_LIMIT,
        max_batches_per_sec: float | None = None,
    ):
        self.service = service
        self.hub = StreamHub()
        self.auth_token = auth_token
        self.stream_queue_limit = stream_queue_limit
        self.rate_limiter = (
            RateLimiter(max_batches_per_sec)
            if max_batches_per_sec is not None
            else None
        )
        self.throttled_counter = None
        handler = type("_BoundHandler", (_Handler,), {"view_server": self})
        self._httpd = _Server((host, port), handler)
        self._thread: threading.Thread | None = None
        self._mark_lock = threading.Lock()
        self._marks = 0
        self._closed = False
        self.started_at = time.time()
        self._delivery_counters: dict = {}
        self._lag_counters: dict = {}
        # Server-tier metrics live in the hosted service's registry so
        # one /metrics scrape covers both tiers; the scope is closed on
        # close() so a re-hosting server re-registers cleanly.
        self.metrics_scope = service.registry.scope()
        self.metrics_scope.gauge_fn(
            "repro_server_uptime_seconds", self.uptime_s,
            help="seconds since the server started",
        )
        self.metrics_scope.gauge_fn(
            "repro_server_active_streams", self.hub.count,
            help="open push subscription streams",
        )
        if self.rate_limiter is not None:
            self.throttled_counter = self.metrics_scope.counter(
                "repro_server_throttled_total",
                help="ingest requests rejected with 429 by the "
                     "per-client max_batches_per_sec quota",
            )

    def uptime_s(self) -> float:
        return time.time() - self.started_at

    def delivery_counter(self, view: str):
        """Per-view counter of delta envelopes written to streams."""
        with self._mark_lock:
            ctr = self._delivery_counters.get(view)
            if ctr is None:
                ctr = self.metrics_scope.counter(
                    "repro_server_deliveries_total",
                    help="delta envelopes delivered to subscribers",
                    labels={"view": view},
                )
                self._delivery_counters[view] = ctr
        return ctr

    def lag_counter(self, view: str):
        """Per-view counter of streams dropped for lagging."""
        with self._mark_lock:
            ctr = self._lag_counters.get(view)
            if ctr is None:
                ctr = self.metrics_scope.counter(
                    "repro_server_stream_lag_drops_total",
                    help="subscriber streams closed because the reader "
                         "fell behind the bounded queue",
                    labels={"view": view},
                )
                self._lag_counters[view] = ctr
        return ctr

    def _next_mark(self) -> int:
        with self._mark_lock:
            self._marks += 1
            return self._marks

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ViewServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"viewserver:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or an
        interrupt) stops the loop."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving: end streams, stop the loop, close the socket."""
        if self._closed:
            return
        self._closed = True
        self.hub.close_all()
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd.server_close()
        self._httpd.close_connections()
        self.metrics_scope.close()

    def __enter__(self) -> "ViewServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else self.url
        return f"ViewServer({state}, views={len(self.service)})"
