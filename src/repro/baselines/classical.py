"""Classical first-order incremental view maintenance (Section 2.1).

One delta query per updated relation, evaluated against the *full* base
tables — no auxiliary views, so an n-way join's delta still joins the
batch with (n-1) large relations.  Nested aggregates use the same
domain-extraction rewrite the paper applied to its PostgreSQL IVM
implementation (Section 6.1, "We implement incremental processing in
PostgreSQL using the domain extraction procedure").
"""

from __future__ import annotations

from repro.delta import derive_delta
from repro.delta.simplify import is_statically_zero
from repro.eval import Database, Evaluator
from repro.exec.backend import ExecutionBackend
from repro.metrics import Counters
from repro.query.ast import Expr
from repro.query.schema import base_relations
from repro.ring import GMR


class ClassicalIVMEngine(ExecutionBackend):
    """First-order IVM: ``M(D+ΔD) = M(D) + ΔQ(D, ΔD)``."""

    def __init__(self, query: Expr, counters: Counters | None = None):
        self.query = query
        self.counters = counters if counters is not None else Counters()
        self.db = Database()
        self._evaluator = Evaluator(self.db, self.counters)
        self._result = GMR()
        # Deltas are derived once, at "compile time".
        self._deltas: dict[str, Expr] = {}
        for r in sorted(base_relations(query)):
            d = derive_delta(query, r, use_domain=True)
            if not is_statically_zero(d):
                self._deltas[r] = d

    def initialize(self, base: Database) -> None:
        self.db = base.copy()
        self._evaluator = Evaluator(self.db, self.counters)
        self._result = self._evaluator.evaluate(self.query)

    def on_batch(self, relation: str, batch: GMR) -> None:
        self.counters.triggers_fired += 1
        d = self._deltas.get(relation)
        if d is not None:
            self.counters.statements_executed += 1
            self.db.set_delta(relation, batch)
            self._result.add_inplace(self._evaluator.evaluate(d))
            self.db.clear_deltas()
        self.db.apply_update(relation, batch)

    def snapshot(self) -> GMR:
        return self._result
