"""Baseline engines: the PostgreSQL substitutes of Figure 8 / Table 1.

* :class:`ReevalEngine` — refreshes the view by recomputing the query
  from the (materialized) base tables after every batch.
* :class:`ClassicalIVMEngine` — classical first-order incremental view
  maintenance: evaluates one delta query per updated relation against
  the full base tables, then merges it into the result (Section 2.1).

Both engines run on the same evaluator and data structures as the
recursive engine, so throughput comparisons isolate the *strategy*,
exactly as the paper's comparisons intend.
"""

from repro.baselines.reeval import ReevalEngine
from repro.baselines.classical import ClassicalIVMEngine
from repro.baselines.distributed_reeval import (
    compile_distributed_reeval,
    compile_reeval_program,
)

__all__ = [
    "ReevalEngine",
    "ClassicalIVMEngine",
    "compile_distributed_reeval",
    "compile_reeval_program",
]
