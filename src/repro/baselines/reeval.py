"""Naive re-evaluation: recompute the query after every update batch."""

from __future__ import annotations

from repro.eval import Database, Evaluator
from repro.exec.backend import ExecutionBackend
from repro.metrics import Counters
from repro.query.ast import Expr
from repro.ring import GMR


class ReevalEngine(ExecutionBackend):
    """Maintains a view by full recomputation per batch.

    Cost grows with the size of the base tables, so throughput falls as
    the stream accumulates — the behaviour the paper's re-evaluation
    baseline exhibits for every query.
    """

    def __init__(self, query: Expr, counters: Counters | None = None):
        self.query = query
        self.counters = counters if counters is not None else Counters()
        self.db = Database()
        self._evaluator = Evaluator(self.db, self.counters)
        self._result = GMR()
        self._dirty = False

    def initialize(self, base: Database) -> None:
        self.db = base.copy()
        self._evaluator = Evaluator(self.db, self.counters)
        self._dirty = True

    def on_batch(self, relation: str, batch: GMR) -> None:
        self.counters.triggers_fired += 1
        self.db.apply_update(relation, batch)
        self.counters.statements_executed += 1
        self._result = self._evaluator.evaluate(self.query)
        self._dirty = False

    def snapshot(self) -> GMR:
        if self._dirty:
            self._result = self._evaluator.evaluate(self.query)
            self._dirty = False
        return self._result
