"""Distributed re-evaluation baseline (the Spark SQL comparator).

Figures 10a/10c/10d compare incremental maintenance against Spark SQL,
which recomputes the query over the full distributed base tables on
every batch.  ``compile_distributed_reeval`` builds that program: each
trigger first merges the update batch into the (distributed) base
relation, then re-evaluates the whole query.  Passed through the same
annotator/optimizer pipeline as incremental programs, the re-evaluation
statement picks up the repartitions a distributed join requires, and
the simulated cluster charges compute proportional to the accumulated
base-table sizes — the cost structure the paper compares against.
"""

from __future__ import annotations

from repro.compiler.ir import Statement, Trigger, TriggerProgram, ViewInfo
from repro.delta.simplify import simplify
from repro.distributed.annotate import annotate_program
from repro.distributed.blocks import build_blocks, fuse_blocks
from repro.distributed.optimize import optimize_program
from repro.distributed.planner import plan_jobs
from repro.distributed.program import DistributedProgram
from repro.distributed.tags import Dist, LOCAL, RANDOM, Tag
from repro.query.ast import DeltaRel, Expr, Rel
from repro.query.schema import out_cols


def compile_reeval_program(
    query: Expr,
    name: str = "Q",
    updatable: frozenset[str] | None = None,
) -> TriggerProgram:
    """Build the local form of the re-evaluation program.

    Views: the top-level result plus one view per base relation (the
    materialized table itself).  Each trigger merges the batch into its
    relation and re-evaluates the query from the tables.
    """
    query = simplify(query)
    top_cols = out_cols(query)
    top_view = f"{name}_FULL"

    rels = _collect_relation_columns(query)
    if updatable is None:
        updatable = frozenset(rels)

    views: dict[str, ViewInfo] = {
        top_view: ViewInfo(top_view, top_cols, query)
    }
    for rel_name, cols in rels.items():
        views[rel_name] = ViewInfo(rel_name, cols, Rel(rel_name, cols))

    triggers: dict[str, Trigger] = {}
    for rel_name in sorted(updatable):
        cols = rels[rel_name]
        trig = Trigger(relation=rel_name, rel_cols=cols)
        trig.statements.append(
            Statement(rel_name, "+=", cols, DeltaRel(rel_name, cols))
        )
        trig.statements.append(
            Statement(top_view, ":=", top_cols, query)
        )
        triggers[rel_name] = trig

    return TriggerProgram(
        query_name=f"{name}-reeval",
        top_view=top_view,
        views=views,
        triggers=triggers,
        base_relations=dict(rels),
    )


def compile_distributed_reeval(
    query: Expr,
    name: str = "Q",
    key_hints: dict[str, tuple[str, ...]] | None = None,
    updatable: frozenset[str] | None = None,
) -> DistributedProgram:
    """Compile the Spark-SQL-style baseline for the simulated cluster.

    Base relations are hash-partitioned on their first key-hint column
    (their natural primary key); the result lives on the driver, as
    Spark SQL collects small aggregates there.
    """
    program = compile_reeval_program(query, name=name, updatable=updatable)
    hints = key_hints or {}

    partitioning: dict[str, Tag] = {program.top_view: LOCAL}
    for rel_name, cols in program.base_relations.items():
        key = _pick_key(cols, hints.get(rel_name))
        partitioning[rel_name] = Dist((key,)) if key else RANDOM

    dprog = annotate_program(program, partitioning, delta_tag=RANDOM)
    dprog = optimize_program(dprog, level=3)
    for trig in dprog.triggers.values():
        blocks = build_blocks(trig.statements)
        if dprog.fuse_enabled:
            blocks = fuse_blocks(blocks)
        trig.blocks = blocks
        trig.jobs = plan_jobs(blocks).jobs
    return dprog


def _pick_key(cols: tuple[str, ...], hint: tuple[str, ...] | None):
    if hint:
        for key in hint:
            if key in cols:
                return key
    return cols[0] if cols else None


def _collect_relation_columns(e: Expr) -> dict[str, tuple[str, ...]]:
    from repro.query.ast import children

    out: dict[str, tuple[str, ...]] = {}

    def visit(x: Expr) -> None:
        if isinstance(x, Rel):
            out.setdefault(x.name, x.cols)
            return
        for c in children(x):
            visit(c)

    visit(e)
    return out
