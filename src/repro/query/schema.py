"""Schema and variable analysis over the query algebra.

Two notions matter throughout the system:

* ``out_cols(e)`` — the output columns an expression produces (ordered,
  first appearance wins).  This is the paper's ``sch(e)``.
* ``free_vars(e)`` — columns an expression *requires* to be bound before
  it can be evaluated (correlation variables of nested aggregates,
  comparison operands not bound inside the expression, ...).
"""

from __future__ import annotations

from repro.query.ast import (
    Assign,
    Cmp,
    Col,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Gather,
    Join,
    Rel,
    Repart,
    Scatter,
    Sum,
    Union,
    ValueF,
    children,
    is_expr,
    rename_term,
    term_cols,
)


def _ordered_union(*seqs: tuple[str, ...]) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for seq in seqs:
        for c in seq:
            seen.setdefault(c, None)
    return tuple(seen)


def out_cols(e: Expr) -> tuple[str, ...]:
    """The output schema of an expression (``sch(e)`` in the paper)."""
    if isinstance(e, (Rel, DeltaRel)):
        return e.cols
    if isinstance(e, Union):
        # All parts must agree as sets; order comes from the first part.
        first = out_cols(e.parts[0])
        for p in e.parts[1:]:
            if set(out_cols(p)) != set(first):
                raise ValueError(
                    f"union parts have different schemas: "
                    f"{first} vs {out_cols(p)} in {e!r}"
                )
        return first
    if isinstance(e, Join):
        return _ordered_union(*(out_cols(p) for p in e.parts))
    if isinstance(e, Sum):
        return e.group_by
    if isinstance(e, (Const, ValueF, Cmp)):
        return ()
    if isinstance(e, Assign):
        if is_expr(e.child):
            return _ordered_union(out_cols(e.child), (e.var,))
        return (e.var,)
    if isinstance(e, Exists):
        return out_cols(e.child)
    if isinstance(e, (Repart, Scatter, Gather)):
        return out_cols(e.child)
    raise TypeError(f"not an expression: {e!r}")


def free_vars(e: Expr) -> frozenset[str]:
    """Columns that must be bound by the evaluation context.

    Information flows left to right through joins: a column produced by
    an earlier join operand satisfies the requirement of a later one.
    """
    if isinstance(e, (Rel, DeltaRel, Const)):
        return frozenset()
    if isinstance(e, Union):
        out: frozenset[str] = frozenset()
        for p in e.parts:
            out |= free_vars(p)
        return out
    if isinstance(e, Join):
        bound: set[str] = set()
        free: set[str] = set()
        for p in e.parts:
            free |= free_vars(p) - bound
            bound |= set(out_cols(p))
        return frozenset(free)
    if isinstance(e, Sum):
        return free_vars(e.child)
    if isinstance(e, ValueF):
        return term_cols(e.term)
    if isinstance(e, Cmp):
        return term_cols(e.lhs) | term_cols(e.rhs)
    if isinstance(e, Assign):
        if is_expr(e.child):
            return free_vars(e.child)
        return term_cols(e.child)
    if isinstance(e, Exists):
        return free_vars(e.child)
    if isinstance(e, (Repart, Scatter, Gather)):
        return free_vars(e.child)
    raise TypeError(f"not an expression: {e!r}")


def base_relations(e: Expr) -> frozenset[str]:
    """Names of base relations referenced anywhere in the expression."""
    if isinstance(e, Rel):
        return frozenset((e.name,))
    out: frozenset[str] = frozenset()
    for c in children(e):
        out |= base_relations(c)
    return out


def delta_relations(e: Expr) -> frozenset[str]:
    """Names of delta (batch update) relations referenced anywhere."""
    if isinstance(e, DeltaRel):
        return frozenset((e.name,))
    out: frozenset[str] = frozenset()
    for c in children(e):
        out |= delta_relations(c)
    return out


def has_relations(e: Expr) -> bool:
    """True when the expression references any base or delta relation.

    This is the ``A.hasRelations`` test of the domain-extraction
    algorithm (Fig. 1): assignments over pure value terms need no
    domain, assignments over relational subqueries do.
    """
    if isinstance(e, (Rel, DeltaRel)):
        return True
    return any(has_relations(c) for c in children(e))


def query_degree(e: Expr) -> int:
    """The *degree* of a query (Section 3.2): number of base-relation
    references, which bounds how many delta derivations are needed
    before an expression becomes update-independent."""
    if isinstance(e, Rel):
        return 1
    return sum(query_degree(c) for c in children(e))


def rename_columns(e: Expr, mapping: dict[str, str]) -> Expr:
    """Consistently rename columns throughout an expression."""

    def m(c: str) -> str:
        return mapping.get(c, c)

    if isinstance(e, Rel):
        return Rel(e.name, tuple(m(c) for c in e.cols))
    if isinstance(e, DeltaRel):
        return DeltaRel(e.name, tuple(m(c) for c in e.cols))
    if isinstance(e, Union):
        return Union(tuple(rename_columns(p, mapping) for p in e.parts))
    if isinstance(e, Join):
        return Join(tuple(rename_columns(p, mapping) for p in e.parts))
    if isinstance(e, Sum):
        return Sum(
            tuple(m(c) for c in e.group_by), rename_columns(e.child, mapping)
        )
    if isinstance(e, Const):
        return e
    if isinstance(e, ValueF):
        return ValueF(rename_term(e.term, mapping))
    if isinstance(e, Cmp):
        return Cmp(e.op, rename_term(e.lhs, mapping), rename_term(e.rhs, mapping))
    if isinstance(e, Assign):
        if is_expr(e.child):
            return Assign(m(e.var), rename_columns(e.child, mapping))
        return Assign(m(e.var), rename_term(e.child, mapping))
    if isinstance(e, Exists):
        return Exists(rename_columns(e.child, mapping))
    if isinstance(e, Repart):
        return Repart(
            rename_columns(e.child, mapping), tuple(m(c) for c in e.keys)
        )
    if isinstance(e, Scatter):
        return Scatter(
            rename_columns(e.child, mapping), tuple(m(c) for c in e.keys)
        )
    if isinstance(e, Gather):
        return Gather(rename_columns(e.child, mapping))
    raise TypeError(f"not an expression: {e!r}")


def substitute(e: Expr, replacements: dict[Expr, Expr]) -> Expr:
    """Replace subexpressions (by structural equality), bottom-up."""
    kids = children(e)
    if kids:
        new_kids = tuple(substitute(c, replacements) for c in kids)
        if new_kids != kids:
            from repro.query.ast import rebuild

            e = rebuild(e, new_kids)
    return replacements.get(e, e)
