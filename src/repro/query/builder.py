"""Ergonomic constructors for building algebra expressions.

The workload definitions (TPC-H / TPC-DS queries) are written with these
helpers; they accept bare strings/numbers where the AST wants ``Col`` /
``Lit`` nodes and flatten nested joins/unions.
"""

from __future__ import annotations

from typing import Iterable, Union as TyUnion

from repro.query.ast import (
    Arith,
    Assign,
    Cmp,
    Col,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Join,
    Lit,
    Rel,
    Sum,
    Union,
    ValueF,
    ValueTerm,
    is_expr,
)

TermLike = TyUnion[ValueTerm, str, int, float]


def _as_term(x: TermLike) -> ValueTerm:
    """Coerce a string to a column reference and a number to a literal."""
    if isinstance(x, (Col, Lit, Arith)):
        return x
    if isinstance(x, str):
        return Col(x)
    if isinstance(x, (int, float)):
        return Lit(x)
    # Func instances and other terms pass through unchanged.
    return x


def col(name: str) -> Col:
    return Col(name)


def lit(v) -> Lit:
    return Lit(v)


def rel(name: str, *cols: str) -> Rel:
    return Rel(name, tuple(cols))


def delta(name: str, *cols: str) -> DeltaRel:
    return DeltaRel(name, tuple(cols))


def const(v) -> Const:
    return Const(v)


def value(term: TermLike) -> ValueF:
    return ValueF(_as_term(term))


def cmp(lhs: TermLike, op: str, rhs: TermLike) -> Cmp:
    return Cmp(op, _as_term(lhs), _as_term(rhs))


def join(*parts: Expr) -> Expr:
    """N-ary join; flattens nested joins and drops Const(1) units."""
    flat: list[Expr] = []
    for p in parts:
        if isinstance(p, Join):
            flat.extend(p.parts)
        elif isinstance(p, Const) and p.value == 1:
            continue
        else:
            flat.append(p)
    if not flat:
        return Const(1)
    if len(flat) == 1:
        return flat[0]
    return Join(tuple(flat))


def union(*parts: Expr) -> Expr:
    """N-ary union; flattens nested unions."""
    flat: list[Expr] = []
    for p in parts:
        if isinstance(p, Union):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return Const(0)
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def neg(e: Expr) -> Expr:
    """``-Q`` is sugar for ``(-1) * Q`` (Section 3.1)."""
    return join(Const(-1), e)


def sum_over(group_by: Iterable[str], e: Expr) -> Sum:
    return Sum(tuple(group_by), e)


def assign(var: str, child: TyUnion[Expr, TermLike]) -> Assign:
    if is_expr(child):
        return Assign(var, child)
    return Assign(var, _as_term(child))


def exists(e: Expr) -> Exists:
    return Exists(e)


def mul(lhs: TermLike, rhs: TermLike) -> Arith:
    return Arith("*", _as_term(lhs), _as_term(rhs))


def add(lhs: TermLike, rhs: TermLike) -> Arith:
    return Arith("+", _as_term(lhs), _as_term(rhs))


def sub(lhs: TermLike, rhs: TermLike) -> Arith:
    return Arith("-", _as_term(lhs), _as_term(rhs))


def div(lhs: TermLike, rhs: TermLike) -> Arith:
    return Arith("/", _as_term(lhs), _as_term(rhs))
