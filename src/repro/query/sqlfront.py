"""A SQL frontend for the query algebra.

The paper's system takes SQL in and emits maintenance code; the
workload queries in this repository are hand-written algebra, and this
module closes the loop for the supported SQL subset:

    SELECT [DISTINCT] <columns and/or COUNT(*) / SUM(expr)>
    FROM   <table [alias]> [, <table [alias]>]*
    [WHERE <conjunction of predicates>]
    [GROUP BY <columns>]

Predicates are comparisons between arithmetic expressions over columns
and integer literals, comparisons against scalar subqueries (nested
aggregates, possibly correlated — Example 3.1), and
``EXISTS (subquery)``.

Lowering follows the paper's modeling (§3.1/Appendix A):

* equality predicates between base columns become *natural join*
  columns (the two occurrences are renamed to one shared name);
* a scalar subquery becomes a generalized variable assignment
  ``(var := Q)`` joined with the enclosing comparison;
* ``EXISTS (Q)`` becomes ``(var := Q) ⋈ (var ≠ 0)``;
* ``COUNT(*)`` is the bare multiplicity; ``SUM(e)`` joins an
  interpreted value term ``[e]``;
* ``DISTINCT`` wraps the result in ``Exists``.

Usage::

    catalog = {"R": ("a", "b"), "S": ("b", "c")}
    query = parse_sql(
        "SELECT COUNT(*) FROM R WHERE R.a < "
        "(SELECT COUNT(*) FROM S WHERE S.b = R.b)",
        catalog,
    )
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.query.ast import (
    Arith,
    Assign,
    Cmp,
    Col,
    Exists,
    Expr,
    Join,
    Lit,
    Rel,
    Sum,
    ValueF,
)

__all__ = ["parse_sql", "SqlError", "sql_to_spec"]


class SqlError(ValueError):
    """Raised for syntax errors and unresolvable references."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<num>\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\.|\*|\+|-|/)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "AND",
    "EXISTS", "COUNT", "SUM", "AS",
}


@dataclass
class _Token:
    kind: str  # 'kw' | 'name' | 'num' | 'op' | 'eof'
    text: str
    pos: int


def _tokenize(sql: str) -> list[_Token]:
    out: list[_Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SqlError(f"cannot tokenize at {sql[pos:pos+10]!r}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        text = m.group()
        if m.lastgroup == "name":
            upper = text.upper()
            if upper in _KEYWORDS:
                out.append(_Token("kw", upper, m.start()))
            else:
                out.append(_Token("name", text, m.start()))
        elif m.lastgroup == "num":
            out.append(_Token("num", text, m.start()))
        else:
            out.append(_Token("op", text, m.start()))
    out.append(_Token("eof", "", len(sql)))
    return out


# ----------------------------------------------------------------------
# Parse tree (pre-lowering)
# ----------------------------------------------------------------------


@dataclass
class _ColRef:
    qualifier: str | None
    column: str


@dataclass
class _Num:
    value: float


@dataclass
class _Bin:
    op: str
    lhs: object
    rhs: object


@dataclass
class _CmpPred:
    op: str
    lhs: object  # arith or _Select
    rhs: object


@dataclass
class _ExistsPred:
    subquery: "_Select"


@dataclass
class _Select:
    distinct: bool
    columns: list[_ColRef]
    aggregates: list[tuple]  # ('count',) | ('sum', arith)
    tables: list[tuple[str, str]]  # (table, alias)
    predicates: list[object]
    group_by: list[_ColRef]


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.i = 0

    # -- primitives ----------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        t = self.tokens[self.i]
        self.i += 1
        return t

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        t = self.peek()
        if t.kind == kind and (text is None or t.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        t = self.accept(kind, text)
        if t is None:
            got = self.peek()
            want = text or kind
            raise SqlError(f"expected {want!r}, got {got.text!r} at {got.pos}")
        return t

    # -- grammar ---------------------------------------------------------
    def parse_select(self) -> _Select:
        self.expect("kw", "SELECT")
        distinct = self.accept("kw", "DISTINCT") is not None

        columns: list[_ColRef] = []
        aggregates: list[tuple] = []
        while True:
            if self.accept("kw", "COUNT"):
                self.expect("op", "(")
                self.expect("op", "*")
                self.expect("op", ")")
                aggregates.append(("count",))
            elif self.accept("kw", "SUM"):
                self.expect("op", "(")
                aggregates.append(("sum", self.parse_arith()))
                self.expect("op", ")")
            else:
                ref = self.parse_colref()
                nxt = self.peek()
                if (
                    ref.qualifier is None
                    and nxt.kind == "op"
                    and nxt.text == "("
                ):
                    raise SqlError(
                        f"unsupported function {ref.column!r} at {nxt.pos}; "
                        "supported aggregates: COUNT(*) and SUM(<arith>)"
                    )
                columns.append(ref)
            if not self.accept("op", ","):
                break

        self.expect("kw", "FROM")
        tables: list[tuple[str, str]] = []
        while True:
            name = self.expect("name").text
            alias = name
            self.accept("kw", "AS")
            alias_tok = self.accept("name")
            if alias_tok is not None:
                alias = alias_tok.text
            tables.append((name, alias))
            if not self.accept("op", ","):
                break

        predicates: list[object] = []
        if self.accept("kw", "WHERE"):
            predicates.append(self.parse_predicate())
            while self.accept("kw", "AND"):
                predicates.append(self.parse_predicate())

        group_by: list[_ColRef] = []
        if self.accept("kw", "GROUP"):
            self.expect("kw", "BY")
            group_by.append(self.parse_colref())
            while self.accept("op", ","):
                group_by.append(self.parse_colref())

        return _Select(distinct, columns, aggregates, tables, predicates, group_by)

    def parse_colref(self) -> _ColRef:
        first = self.expect("name").text
        if self.accept("op", "."):
            col = self.expect("name").text
            return _ColRef(first, col)
        return _ColRef(None, first)

    def parse_predicate(self) -> object:
        if self.accept("kw", "EXISTS"):
            self.expect("op", "(")
            sub = self.parse_select()
            self.expect("op", ")")
            return _ExistsPred(sub)
        lhs = self.parse_operand()
        op_tok = self.expect("op")
        op = {"=": "==", "<>": "!="}.get(op_tok.text, op_tok.text)
        if op not in ("<", "<=", ">", ">=", "==", "!="):
            raise SqlError(f"{op_tok.text!r} is not a comparison operator")
        rhs = self.parse_operand()
        return _CmpPred(op, lhs, rhs)

    def parse_operand(self) -> object:
        """An arithmetic expression or a parenthesized scalar subquery."""
        if self.peek().kind == "op" and self.peek().text == "(":
            # Lookahead: '(' SELECT ... means a scalar subquery.
            if self.tokens[self.i + 1].kind == "kw" and (
                self.tokens[self.i + 1].text == "SELECT"
            ):
                self.expect("op", "(")
                sub = self.parse_select()
                self.expect("op", ")")
                return sub
        return self.parse_arith()

    def parse_arith(self) -> object:
        node = self.parse_term()
        while True:
            t = self.peek()
            if t.kind == "op" and t.text in ("+", "-"):
                self.next()
                node = _Bin(t.text, node, self.parse_term())
            else:
                return node

    def parse_term(self) -> object:
        node = self.parse_factor()
        while True:
            t = self.peek()
            if t.kind == "op" and t.text in ("*", "/"):
                self.next()
                node = _Bin(t.text, node, self.parse_factor())
            else:
                return node

    def parse_factor(self) -> object:
        if self.accept("op", "("):
            node = self.parse_arith()
            self.expect("op", ")")
            return node
        t = self.peek()
        if t.kind == "num":
            self.next()
            v = float(t.text)
            return _Num(int(v) if v.is_integer() else v)
        return self.parse_colref()


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------


class _UnionFind:
    def __init__(self):
        self.parent: dict[tuple, tuple] = {}

    def find(self, x: tuple) -> tuple:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: tuple, b: tuple) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Keep the earlier-created root for stable naming.
            self.parent[rb] = ra


@dataclass
class _Scope:
    """Column resolution for one SELECT's FROM tables."""

    #: (alias, column) -> canonical algebra column name
    names: dict[tuple[str, str], str]
    #: bare column -> list of (alias, column) owning it
    bare: dict[str, list[tuple[str, str]]]
    parent: "_Scope | None" = None

    def resolve(self, ref: _ColRef) -> str:
        if ref.qualifier is not None:
            key = (ref.qualifier, ref.column)
            if key in self.names:
                return self.names[key]
            aliases = sorted({a for a, _ in self.names})
            if ref.qualifier in aliases:
                # The alias binds here (shadowing any outer scope), so a
                # missing column is this table's problem — don't let the
                # lookup escape to the parent and misdiagnose the alias.
                cols = sorted(
                    c for a, c in self.names if a == ref.qualifier
                )
                raise SqlError(
                    f"table {ref.qualifier!r} has no column "
                    f"{ref.column!r}; its columns: {', '.join(cols)}"
                )
            if self.parent is not None:
                return self.parent.resolve(ref)
            raise SqlError(
                f"unknown table alias {ref.qualifier!r} in "
                f"{ref.qualifier}.{ref.column}; FROM aliases in "
                f"scope: {', '.join(aliases) or '<none>'}"
            )
        owners = self.bare.get(ref.column, [])
        if len(owners) == 1:
            return self.names[owners[0]]
        if len(owners) > 1:
            aliases = ", ".join(sorted(a for a, _ in owners))
            raise SqlError(
                f"ambiguous column {ref.column!r}: provided by {aliases}; "
                f"qualify it (e.g. {owners[0][0]}.{ref.column})"
            )
        if self.parent is not None:
            return self.parent.resolve(ref)
        known = sorted(self.bare)
        raise SqlError(
            f"unknown column {ref.column!r}; columns in scope: "
            f"{', '.join(known) or '<none>'}"
        )

    def resolve_local(self, ref: _ColRef) -> tuple[str, str] | None:
        """The (alias, column) occurrence if the ref binds in *this*
        scope (not a correlated outer reference)."""
        if ref.qualifier is not None:
            key = (ref.qualifier, ref.column)
            return key if key in self.names else None
        owners = self.bare.get(ref.column, [])
        return owners[0] if len(owners) == 1 else None


class _Lowerer:
    def __init__(self, catalog: dict[str, tuple[str, ...]]):
        self.catalog = catalog
        self.var_counter = 0

    def fresh_var(self) -> str:
        self.var_counter += 1
        return f"sq{self.var_counter}"

    # ------------------------------------------------------------------
    def lower_select(
        self, sel: _Select, outer: _Scope | None = None
    ) -> Expr:
        if not sel.tables:
            raise SqlError("FROM clause is required")

        # 1. Equality predicates between two local base columns turn
        #    into natural-join columns via union-find.
        uf = _UnionFind()
        occurrences: list[tuple[str, str]] = []  # (alias, column) in order
        for table, alias in sel.tables:
            if table not in self.catalog:
                known = ", ".join(sorted(self.catalog)) or "<none>"
                raise SqlError(
                    f"unknown table {table!r}; catalog tables: {known}"
                )
            for col in self.catalog[table]:
                occurrences.append((alias, col))
        occ_set = set(occurrences)
        if len(occ_set) != len(occurrences):
            raise SqlError("duplicate table alias in FROM")
        for occ in occurrences:
            uf.find(occ)

        pre_scope = self._make_scope(sel, {}, outer)
        residual: list[object] = []
        for pred in sel.predicates:
            if (
                isinstance(pred, _CmpPred)
                and pred.op == "=="
                and isinstance(pred.lhs, _ColRef)
                and isinstance(pred.rhs, _ColRef)
            ):
                a = pre_scope.resolve_local(pred.lhs)
                b = pre_scope.resolve_local(pred.rhs)
                if a is not None and b is not None and a[0] != b[0]:
                    uf.union(a, b)
                    continue
            residual.append(pred)

        # 2. Canonical names: the first occurrence of each class.
        order = {occ: i for i, occ in enumerate(occurrences)}
        names: dict[tuple[str, str], str] = {}
        for occ in occurrences:
            root = uf.find(occ)
            canonical = min(
                (o for o in occurrences if uf.find(o) == root),
                key=order.__getitem__,
            )
            names[occ] = f"{canonical[0]}_{canonical[1]}"

        scope = self._make_scope(sel, names, outer)

        # 3. FROM: relations over canonical column names.
        factors: list[Expr] = []
        for table, alias in sel.tables:
            cols = tuple(names[(alias, c)] for c in self.catalog[table])
            if len(set(cols)) != len(cols):
                raise SqlError(
                    f"self-equality within table {table!r} is unsupported"
                )
            factors.append(Rel(table, cols))

        # 4. Residual predicates.
        for pred in residual:
            factors.extend(self._lower_predicate(pred, scope))

        # 5. SELECT list.
        group_cols = tuple(
            scope.resolve(ref) for ref in (sel.group_by or sel.columns)
        )
        for ref in sel.columns:
            if scope.resolve(ref) not in group_cols:
                raise SqlError(
                    f"column {ref.column!r} must appear in GROUP BY"
                )

        for agg in sel.aggregates:
            if agg[0] == "sum":
                factors.append(ValueF(self._lower_arith(agg[1], scope)))

        body: Expr = factors[0] if len(factors) == 1 else Join(tuple(factors))
        result: Expr = Sum(group_cols, body)
        if sel.distinct:
            result = Exists(result)
        return result

    # ------------------------------------------------------------------
    def _make_scope(
        self,
        sel: _Select,
        names: dict[tuple[str, str], str],
        outer: _Scope | None,
    ) -> _Scope:
        full_names: dict[tuple[str, str], str] = {}
        bare: dict[str, list[tuple[str, str]]] = {}
        for table, alias in sel.tables:
            for col in self.catalog[table]:
                occ = (alias, col)
                full_names[occ] = names.get(occ, f"{alias}_{col}")
                bare.setdefault(col, []).append(occ)
        return _Scope(full_names, bare, outer)

    def _lower_predicate(self, pred: object, scope: _Scope) -> list[Expr]:
        if isinstance(pred, _ExistsPred):
            sub = self.lower_select(pred.subquery, outer=scope)
            var = self.fresh_var()
            return [Assign(var, sub), Cmp("!=", Col(var), Lit(0))]
        assert isinstance(pred, _CmpPred)
        factors: list[Expr] = []
        lhs = self._lower_operand(pred.lhs, scope, factors)
        rhs = self._lower_operand(pred.rhs, scope, factors)
        factors.append(Cmp(pred.op, lhs, rhs))
        return factors

    def _lower_operand(self, node: object, scope: _Scope, factors: list[Expr]):
        if isinstance(node, _Select):
            sub = self.lower_select(node, outer=scope)
            var = self.fresh_var()
            factors.append(Assign(var, sub))
            return Col(var)
        return self._lower_arith(node, scope)

    def _lower_arith(self, node: object, scope: _Scope):
        if isinstance(node, _Num):
            return Lit(node.value)
        if isinstance(node, _ColRef):
            return Col(scope.resolve(node))
        if isinstance(node, _Bin):
            return Arith(
                node.op,
                self._lower_arith(node.lhs, scope),
                self._lower_arith(node.rhs, scope),
            )
        raise SqlError(f"unsupported expression {node!r}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def parse_sql(sql: str, catalog: dict[str, tuple[str, ...]]) -> Expr:
    """Parse a SQL string into a query-algebra expression.

    ``catalog`` maps table names to their column names; columns in the
    produced algebra are named ``<alias>_<column>`` (with natural-join
    classes collapsing to the first-mentioned occurrence).
    """
    parser = _Parser(_tokenize(sql))
    sel = parser.parse_select()
    parser.expect("eof")
    return _Lowerer(catalog).lower_select(sel)


def sql_to_spec(
    name: str,
    sql: str,
    catalog: dict[str, tuple[str, ...]],
    updatable: frozenset[str] | None = None,
    key_hints: dict[str, tuple[str, ...]] | None = None,
):
    """Parse SQL straight into a benchmarkable :class:`QuerySpec`."""
    from repro.query.schema import base_relations
    from repro.workloads.spec import QuerySpec

    query = parse_sql(sql, catalog)
    if updatable is None:
        updatable = frozenset(base_relations(query))
    return QuerySpec(
        name=name,
        query=query,
        updatable=updatable,
        key_hints=key_hints or {},
        notes=f"parsed from SQL: {sql.strip()}",
    )
