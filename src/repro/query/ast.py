"""AST node definitions for the query algebra.

All nodes are immutable (frozen dataclasses), so structural equality and
hashing come for free — the compiler relies on both for common
subexpression elimination across the materialized-view hierarchy.

Two small term languages coexist:

* :class:`ValueTerm` — scalar arithmetic over bound columns and
  literals, used inside comparisons, interpreted values, and plain
  variable assignments.
* :class:`Expr` — the relational algebra itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union as TyUnion

# ----------------------------------------------------------------------
# Scalar value terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """A reference to a (bound) column."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit:
    """A literal constant."""

    value: TyUnion[int, float, str]

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Arith:
    """Binary arithmetic over value terms: ``+ - * /``."""

    op: str
    lhs: "ValueTerm"
    rhs: "ValueTerm"

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


#: Registry of named scalar functions usable in :class:`Func` terms.
#: Functions are registered by name so that AST nodes stay hashable and
#: structurally comparable.
_FUNCTION_REGISTRY: dict[str, Callable] = {}


def register_function(name: str, fn: Callable) -> None:
    """Register a named scalar function for use in :class:`Func` terms."""
    _FUNCTION_REGISTRY[name] = fn


def lookup_function(name: str) -> Callable:
    try:
        return _FUNCTION_REGISTRY[name]
    except KeyError:
        raise KeyError(f"scalar function {name!r} is not registered") from None


@dataclass(frozen=True)
class Func:
    """Application of a registered scalar function to value terms."""

    name: str
    args: tuple["ValueTerm", ...]

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


ValueTerm = TyUnion[Col, Lit, Arith, Func]


def term_cols(term: ValueTerm) -> frozenset[str]:
    """Columns referenced by a value term (all must be bound to evaluate)."""
    if isinstance(term, Col):
        return frozenset((term.name,))
    if isinstance(term, Lit):
        return frozenset()
    if isinstance(term, Arith):
        return term_cols(term.lhs) | term_cols(term.rhs)
    if isinstance(term, Func):
        out: frozenset[str] = frozenset()
        for a in term.args:
            out |= term_cols(a)
        return out
    raise TypeError(f"not a value term: {term!r}")


def eval_term(term: ValueTerm, env: dict[str, object]):
    """Evaluate a value term under an environment of bound columns."""
    if isinstance(term, Col):
        return env[term.name]
    if isinstance(term, Lit):
        return term.value
    if isinstance(term, Arith):
        a = eval_term(term.lhs, env)
        b = eval_term(term.rhs, env)
        if term.op == "+":
            return a + b
        if term.op == "-":
            return a - b
        if term.op == "*":
            return a * b
        if term.op == "/":
            return a / b
        raise ValueError(f"unknown arithmetic op {term.op!r}")
    if isinstance(term, Func):
        fn = lookup_function(term.name)
        return fn(*(eval_term(a, env) for a in term.args))
    raise TypeError(f"not a value term: {term!r}")


def rename_term(term: ValueTerm, mapping: dict[str, str]) -> ValueTerm:
    """Rename column references in a value term."""
    if isinstance(term, Col):
        return Col(mapping.get(term.name, term.name))
    if isinstance(term, Lit):
        return term
    if isinstance(term, Arith):
        return Arith(term.op, rename_term(term.lhs, mapping), rename_term(term.rhs, mapping))
    if isinstance(term, Func):
        return Func(term.name, tuple(rename_term(a, mapping) for a in term.args))
    raise TypeError(f"not a value term: {term!r}")


# ----------------------------------------------------------------------
# Relational expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Rel:
    """A base relation or materialized-view reference.

    ``cols`` names the output columns *as used in this query*; workload
    definitions rename physical attributes into query-local variables.
    """

    name: str
    cols: tuple[str, ...]

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.cols)})"


@dataclass(frozen=True)
class DeltaRel:
    """A batch of updates to a base relation.

    Insertions carry positive and deletions negative multiplicities; a
    single batch may mix both (footnote 3 of the paper).
    """

    name: str
    cols: tuple[str, ...]

    def __repr__(self) -> str:
        return f"d{self.name}({', '.join(self.cols)})"


@dataclass(frozen=True)
class Union:
    """N-ary bag union; all parts share one output schema (as a set)."""

    parts: tuple["Expr", ...]

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Join:
    """N-ary natural join.

    Order matters operationally (not semantically): information about
    bound variables flows left to right, per the paper's model of
    computation (Section 3.2.1).
    """

    parts: tuple["Expr", ...]

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Sum:
    """Multiplicity-preserving projection onto ``group_by`` columns."""

    group_by: tuple[str, ...]
    child: "Expr"

    def __repr__(self) -> str:
        return f"Sum[{', '.join(self.group_by)}]({self.child!r})"


@dataclass(frozen=True)
class Const:
    """A constant: a singleton relation mapping () to the constant."""

    value: TyUnion[int, float]

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ValueF:
    """An interpreted value used as a multiplicity factor.

    Joining with ``ValueF(t)`` multiplies multiplicities by the value of
    ``t`` under the current bindings (the paper's *value* construct).
    """

    term: ValueTerm

    def __repr__(self) -> str:
        return f"[{self.term!r}]"


@dataclass(frozen=True)
class Cmp:
    """A comparison: an interpreted 0/1-multiplicity relation."""

    op: str  # one of < <= > >= == !=
    lhs: ValueTerm
    rhs: ValueTerm

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Assign:
    """Generalized variable assignment ``(var := child)``.

    With a :class:`ValueTerm` child this is the classical singleton
    assignment.  With an :class:`Expr` child it implements nested
    aggregates: tuples of the child with non-zero multiplicity are
    extended by column ``var`` holding that multiplicity, each with
    output multiplicity 1.  In *scalar context* (no unbound output
    columns) the aggregate value is emitted even when it is 0, matching
    SQL COUNT semantics; the delta rule uses the same convention on both
    of its terms, so deltas remain consistent.
    """

    var: str
    child: TyUnion["Expr", ValueTerm]

    def __repr__(self) -> str:
        return f"({self.var} := {self.child!r})"


@dataclass(frozen=True)
class Exists:
    """Set every non-zero multiplicity of the child to 1.

    Sugar for ``Sum[sch(Q)]((X := Q) * (X != 0))``; kept first-class
    because domain extraction (Fig. 1) builds domain expressions out of
    it directly.
    """

    child: "Expr"

    def __repr__(self) -> str:
        return f"Exists({self.child!r})"


# ----------------------------------------------------------------------
# Location transformers (paper Section 4.2)
# ----------------------------------------------------------------------
# The only mechanism for exchanging data among nodes.  Semantically
# every transformer is the identity on its child's contents — it only
# moves data — so the reference evaluator treats all three as
# pass-throughs, which is what makes local/distributed equivalence
# testable.


@dataclass(frozen=True)
class Repart:
    """Re-partition a distributed result by ``keys``.

    ``keys == ()`` means broadcast: every worker receives a full copy
    (the replication used e.g. for small pre-aggregated deltas).
    """

    child: "Expr"
    keys: tuple[str, ...]

    def __repr__(self) -> str:
        return f"Repart[{', '.join(self.keys)}]({self.child!r})"


@dataclass(frozen=True)
class Scatter:
    """Partition a driver-local result among the workers by ``keys``.

    ``keys == ()`` replicates the local result to every worker.
    """

    child: "Expr"
    keys: tuple[str, ...]

    def __repr__(self) -> str:
        return f"Scatter[{', '.join(self.keys)}]({self.child!r})"


@dataclass(frozen=True)
class Gather:
    """Aggregate a distributed result on the driver node."""

    child: "Expr"

    def __repr__(self) -> str:
        return f"Gather({self.child!r})"


Expr = TyUnion[
    Rel, DeltaRel, Union, Join, Sum, Const, ValueF, Cmp, Assign, Exists,
    Repart, Scatter, Gather,
]

LOCATION_TRANSFORMERS = (Repart, Scatter, Gather)

#: Node types whose contents are interpreted (never materialized); they
#: are location-independent in distributed programs (Section 4.2).
INTERPRETED_TYPES = (Const, ValueF, Cmp)


def is_expr(x: object) -> bool:
    return isinstance(
        x,
        (
            Rel, DeltaRel, Union, Join, Sum, Const, ValueF, Cmp, Assign,
            Exists, Repart, Scatter, Gather,
        ),
    )


def children(e: Expr) -> tuple[Expr, ...]:
    """Relational children of a node (value terms are not included)."""
    if isinstance(e, (Union, Join)):
        return e.parts
    if isinstance(e, (Sum, Exists, Repart, Scatter, Gather)):
        return (e.child,)
    if isinstance(e, Assign) and is_expr(e.child):
        return (e.child,)
    return ()


def rebuild(e: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Reconstruct a node with replaced relational children."""
    if isinstance(e, Union):
        return Union(new_children)
    if isinstance(e, Join):
        return Join(new_children)
    if isinstance(e, Sum):
        (c,) = new_children
        return Sum(e.group_by, c)
    if isinstance(e, Exists):
        (c,) = new_children
        return Exists(c)
    if isinstance(e, Repart):
        (c,) = new_children
        return Repart(c, e.keys)
    if isinstance(e, Scatter):
        (c,) = new_children
        return Scatter(c, e.keys)
    if isinstance(e, Gather):
        (c,) = new_children
        return Gather(c)
    if isinstance(e, Assign) and is_expr(e.child):
        (c,) = new_children
        return Assign(e.var, c)
    if new_children:
        raise ValueError(f"node {e!r} takes no children")
    return e
