"""The query algebra of the paper (Section 3.1 / Appendix A).

Queries over generalized multiset relations are algebraic formulas built
from base relations, bag union, natural join, multiplicity-preserving
projection (``Sum``), constants, interpreted value terms, comparisons,
and (generalized) variable assignments.  ``Exists`` is first-class here
for convenience; semantically it is sugar for
``Sum[sch(Q)]((X := Q) * (X != 0))``.
"""

from repro.query.ast import (
    Arith,
    Assign,
    Cmp,
    Col,
    Const,
    DeltaRel,
    Exists,
    Expr,
    Func,
    Join,
    Lit,
    Rel,
    Sum,
    Union,
    ValueF,
    ValueTerm,
    register_function,
)
from repro.query.builder import (
    assign,
    cmp,
    col,
    const,
    delta,
    exists,
    join,
    lit,
    neg,
    rel,
    sum_over,
    union,
    value,
)
from repro.query.schema import (
    base_relations,
    delta_relations,
    free_vars,
    out_cols,
    query_degree,
    rename_columns,
    substitute,
)
from repro.query.sqlfront import SqlError, parse_sql, sql_to_spec

__all__ = [
    "Arith",
    "Assign",
    "Cmp",
    "Col",
    "Const",
    "DeltaRel",
    "Exists",
    "Expr",
    "Func",
    "Join",
    "Lit",
    "Rel",
    "Sum",
    "Union",
    "ValueF",
    "ValueTerm",
    "register_function",
    "assign",
    "cmp",
    "col",
    "const",
    "delta",
    "exists",
    "join",
    "lit",
    "neg",
    "rel",
    "sum_over",
    "union",
    "value",
    "base_relations",
    "delta_relations",
    "free_vars",
    "out_cols",
    "query_degree",
    "rename_columns",
    "substitute",
    "SqlError",
    "parse_sql",
    "sql_to_spec",
]
