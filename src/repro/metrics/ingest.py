"""Split ingestion/maintenance metrics for the async ingestion layer.

The paper's central knob is the update batch size: throughput rises
with larger batches while per-update latency falls apart.  Once
ingestion is decoupled from trigger execution (a bounded queue and a
batcher thread in front of ``on_batch``), that tradeoff splits into
*separately measurable* quantities, which this module records:

* **enqueue wait** — how long a producer's ``on_batch`` call blocked in
  admission control (near zero unless the queue is full);
* **queue depth** — entries waiting at each accepted enqueue;
* **ingest delay** — how long the oldest update of a flush sat in the
  queue before its flush completed (the decoupling latency an update
  actually experiences);
* **flush size** — streamed tuples per batcher flush (what the batching
  policy actually chose);
* **maintenance latency** — wall time of the inner backend's
  ``on_batch`` per flush (the paper's per-batch maintenance cost).

All recording methods append to plain lists (atomic under the GIL);
the producer thread records enqueue-side series, the batcher thread
records flush-side series, so no series has two writers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def percentile(values, p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation.

    Returns 0.0 for an empty series so summaries stay JSON-friendly.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (p / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass
class IngestMetrics:
    """Accumulated ingestion-side measurements of one async backend."""

    #: producer-side blocking time per accepted enqueue (seconds)
    enqueue_wait_s: list = field(default_factory=list)
    #: queue depth (entries) observed at each accepted enqueue
    queue_depths: list = field(default_factory=list)
    #: streamed tuples per flush
    flush_sizes: list = field(default_factory=list)
    #: coalesced queue entries per flush
    flush_entries: list = field(default_factory=list)
    #: oldest-entry queue residency per flush, enqueue -> flush end
    ingest_delay_s: list = field(default_factory=list)
    #: inner ``on_batch`` wall time per flush
    maintenance_s: list = field(default_factory=list)

    enqueued_batches: int = 0
    enqueued_tuples: int = 0
    shed_batches: int = 0
    shed_tuples: int = 0
    coalesced_batches: int = 0
    coalesced_tuples: int = 0
    flushes: int = 0
    flushed_tuples: int = 0

    #: optional registry histogram fed by :meth:`record_flush`
    #: (set by :meth:`bind`; excluded from dataclass comparisons)
    _maintain_hist: object = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Recording (producer side)
    # ------------------------------------------------------------------
    def record_enqueue(self, wait_s: float, depth: int, tuples: int) -> None:
        """An accepted enqueue (queued or coalesced into a queued entry)."""
        self.enqueue_wait_s.append(wait_s)
        self.queue_depths.append(depth)
        self.enqueued_batches += 1
        self.enqueued_tuples += tuples

    def record_shed(self, tuples: int) -> None:
        """A batch dropped by the ``shed`` admission policy."""
        self.shed_batches += 1
        self.shed_tuples += tuples

    def record_coalesced(self, tuples: int) -> None:
        """A batch merged into an already-queued entry (``coalesce``)."""
        self.coalesced_batches += 1
        self.coalesced_tuples += tuples

    # ------------------------------------------------------------------
    # Recording (batcher side)
    # ------------------------------------------------------------------
    def record_flush(
        self,
        tuples: int,
        entries: int,
        maintenance_s: float,
        delay_s: float,
    ) -> None:
        self.flush_sizes.append(tuples)
        self.flush_entries.append(entries)
        self.maintenance_s.append(maintenance_s)
        self.ingest_delay_s.append(delay_s)
        self.flushes += 1
        self.flushed_tuples += tuples
        hist = self._maintain_hist
        if hist is not None:
            hist.observe(maintenance_s)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Percentile summary of the split series (JSON-friendly)."""

        def stats(series) -> dict:
            return {
                "p50": percentile(series, 50),
                "p95": percentile(series, 95),
                "p99": percentile(series, 99),
                "max": float(max(series)) if series else 0.0,
            }

        return {
            "enqueue_wait_s": stats(self.enqueue_wait_s),
            "ingest_delay_s": stats(self.ingest_delay_s),
            "maintenance_s": stats(self.maintenance_s),
            "queue_depth": stats(self.queue_depths),
            "flush_size": stats(self.flush_sizes),
            "mean_flush_size": (
                self.flushed_tuples / self.flushes if self.flushes else 0.0
            ),
            "enqueued_batches": self.enqueued_batches,
            "enqueued_tuples": self.enqueued_tuples,
            "shed_batches": self.shed_batches,
            "shed_tuples": self.shed_tuples,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_tuples": self.coalesced_tuples,
            "flushes": self.flushes,
            "flushed_tuples": self.flushed_tuples,
        }

    # ------------------------------------------------------------------
    # Registry export
    # ------------------------------------------------------------------
    def bind(self, scope, maintain_hist=None) -> None:
        """Export through a :class:`repro.obs.MetricsScope`.

        Counter fields become callback gauges (single-writer ints read
        at scrape time); the list series export recent-window p50/p99
        callback gauges (last 1024 samples, computed per scrape so the
        hot path stays a list append).  ``maintain_hist``, when given,
        is the service's shared per-view maintenance histogram — every
        subsequent :meth:`record_flush` observes into it.
        """
        if maintain_hist is not None:
            self._maintain_hist = maintain_hist
        for name in ("enqueued_batches", "enqueued_tuples", "shed_batches",
                     "shed_tuples", "coalesced_batches", "coalesced_tuples",
                     "flushes", "flushed_tuples"):
            scope.gauge_fn(
                f"repro_ingest_{name}",
                lambda self=self, name=name: getattr(self, name),
                help=f"async ingestion count: {name}",
            )
        series = (
            ("enqueue_wait_seconds", self.enqueue_wait_s),
            ("ingest_delay_seconds", self.ingest_delay_s),
            ("flush_size_tuples", self.flush_sizes),
        )
        for name, values in series:
            for p in (50, 99):
                scope.gauge_fn(
                    f"repro_ingest_{name}_p{p}",
                    lambda values=values, p=p: percentile(values[-1024:], p),
                    help=f"recent-window p{p} of ingest series {name}",
                )
