"""Instrumentation: operation counters and the data-cache simulator.

Real hardware counters (Table 2 of the paper) are substituted by
*virtual instructions* — the tuple visits, lookups, and emissions the
engines perform — plus a two-level set-associative LRU cache simulator
driven by the storage layer's record-access trace.  See DESIGN.md §1
for why the substitution preserves the phenomena under study.
"""

from repro.metrics.counters import Counters
from repro.metrics.cachesim import CacheLevel, CacheSimulator
from repro.metrics.ingest import IngestMetrics, percentile

__all__ = [
    "Counters",
    "CacheLevel",
    "CacheSimulator",
    "IngestMetrics",
    "percentile",
]
