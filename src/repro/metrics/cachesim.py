"""A two-level set-associative LRU data-cache simulator.

Substitute for the perf counters of Table 2: the storage layer emits a
trace of record addresses; the simulator replays it through an
L1-like and an LLC-like level and reports references and misses per
level.  The mechanism under study — extreme batch sizes hurt locality,
mid-size batches reuse the working set — survives the substitution
because it is a property of the access *sequence*, not of the silicon.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    references: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        if self.references == 0:
            return 0.0
        return 1.0 - self.misses / self.references


class CacheLevel:
    """One set-associative LRU cache level."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        # Each set is an OrderedDict tag -> None in LRU order.
        self._sets: list[OrderedDict] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit."""
        line = address // self.line_bytes
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        s = self._sets[set_idx]
        self.stats.references += 1
        if tag in s:
            s.move_to_end(tag)
            return True
        self.stats.misses += 1
        s[tag] = None
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()


class CacheSimulator:
    """An L1-like level backed by an LLC-like level.

    Addresses are synthetic: the storage layer assigns each record a
    stable virtual address, so revisiting a record re-touches the same
    cache lines just as a compiled program would.
    """

    def __init__(
        self,
        l1_bytes: int = 32 * 1024,
        llc_bytes: int = 2 * 1024 * 1024,
        line_bytes: int = 64,
    ):
        self.l1 = CacheLevel(l1_bytes, line_bytes, ways=8)
        self.llc = CacheLevel(llc_bytes, line_bytes, ways=16)

    def access(self, address: int) -> None:
        if not self.l1.access(address):
            self.llc.access(address)

    def access_record(self, address: int, record_bytes: int) -> None:
        """Touch every line a record spans."""
        line = self.l1.line_bytes
        for offset in range(0, record_bytes, line):
            self.access(address + offset)

    def report(self) -> dict[str, int]:
        return {
            "l1_refs": self.l1.stats.references,
            "l1_misses": self.l1.stats.misses,
            "llc_refs": self.llc.stats.references,
            "llc_misses": self.llc.stats.misses,
        }

    def reset(self) -> None:
        self.l1.reset()
        self.llc.reset()
