"""Operation counters — the "virtual instruction" substitute for perf.

Every engine accumulates counts of the primitive operations it
performs.  ``virtual_instructions`` is a weighted sum used wherever the
paper reports retired instructions; the weights are arbitrary but fixed,
so ratios between strategies (the quantity the paper analyzes) are
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Accumulated operation counts for one engine run."""

    tuples_scanned: int = 0
    index_lookups: int = 0
    tuples_emitted: int = 0
    statements_executed: int = 0
    triggers_fired: int = 0
    batches_materialized: int = 0
    bytes_shuffled: int = 0

    #: weights for the virtual-instruction aggregate
    _W_SCAN = 4
    _W_LOOKUP = 8
    _W_EMIT = 6
    _W_STMT = 30
    _W_TRIGGER = 60
    _W_BATCH = 40

    def virtual_instructions(self) -> int:
        """Weighted operation total — the stand-in for retired
        instructions in Table 2."""
        return (
            self.tuples_scanned * self._W_SCAN
            + self.index_lookups * self._W_LOOKUP
            + self.tuples_emitted * self._W_EMIT
            + self.statements_executed * self._W_STMT
            + self.triggers_fired * self._W_TRIGGER
            + self.batches_materialized * self._W_BATCH
        )

    def merge(self, other: "Counters") -> None:
        self.tuples_scanned += other.tuples_scanned
        self.index_lookups += other.index_lookups
        self.tuples_emitted += other.tuples_emitted
        self.statements_executed += other.statements_executed
        self.triggers_fired += other.triggers_fired
        self.batches_materialized += other.batches_materialized
        self.bytes_shuffled += other.bytes_shuffled

    def reset(self) -> None:
        self.tuples_scanned = 0
        self.index_lookups = 0
        self.tuples_emitted = 0
        self.statements_executed = 0
        self.triggers_fired = 0
        self.batches_materialized = 0
        self.bytes_shuffled = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "tuples_scanned": self.tuples_scanned,
            "index_lookups": self.index_lookups,
            "tuples_emitted": self.tuples_emitted,
            "statements_executed": self.statements_executed,
            "triggers_fired": self.triggers_fired,
            "batches_materialized": self.batches_materialized,
            "bytes_shuffled": self.bytes_shuffled,
            "virtual_instructions": self.virtual_instructions(),
        }

    def bind(self, scope) -> None:
        """Export these counters through a :class:`repro.obs.MetricsScope`.

        Registered as callback gauges (the engine mutates plain ints on
        the hot path; reading at scrape time keeps maintenance free of
        any registry cost).  Gauges rather than registry counters
        because :meth:`reset` makes the values non-monotonic.
        """
        fields = (
            "tuples_scanned", "index_lookups", "tuples_emitted",
            "statements_executed", "triggers_fired",
            "batches_materialized", "bytes_shuffled",
        )
        for name in fields:
            scope.gauge_fn(
                f"repro_engine_{name}",
                lambda self=self, name=name: getattr(self, name),
                help=f"engine operation count: {name}",
            )
        scope.gauge_fn(
            "repro_engine_virtual_instructions",
            self.virtual_instructions,
            help="weighted operation total (paper's retired-instruction "
                 "stand-in)",
        )
