"""repro — distributed incremental view maintenance with batch updates.

A from-scratch Python reproduction of the SIGMOD 2016 paper
"How to Win a Hot Dog Eating Contest: Distributed Incremental View
Maintenance with Batch Updates" (Nikolic, Dashti, Koch).

The most common entry points are re-exported here:

>>> from repro import ViewService                      # serving API
>>> from repro import compile_query, RecursiveIVMEngine, parse_sql
>>> from repro import compile_distributed, SimulatedCluster

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.ring import GMR
from repro.eval import Database, Evaluator, evaluate
from repro.query import parse_sql, sql_to_spec
from repro.compiler import apply_batch_preaggregation, compile_query
from repro.exec import RecursiveIVMEngine, SpecializedIVMEngine
from repro.baselines import ClassicalIVMEngine, ReevalEngine
from repro.distributed import (
    FaultTolerantCluster,
    PartitioningAdvisor,
    SimulatedCluster,
    compile_distributed,
)
from repro.service import ServiceError, Subscription, ViewDelta, ViewService

__version__ = "1.0.0"

__all__ = [
    "GMR",
    "Database",
    "Evaluator",
    "evaluate",
    "parse_sql",
    "sql_to_spec",
    "compile_query",
    "apply_batch_preaggregation",
    "RecursiveIVMEngine",
    "SpecializedIVMEngine",
    "ReevalEngine",
    "ClassicalIVMEngine",
    "compile_distributed",
    "SimulatedCluster",
    "FaultTolerantCluster",
    "PartitioningAdvisor",
    "ViewService",
    "ViewDelta",
    "Subscription",
    "ServiceError",
    "__version__",
]
