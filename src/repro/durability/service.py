"""A :class:`ViewService` whose seq axis survives the process.

:class:`DurableViewService` wires the write-ahead log
(:mod:`repro.durability.wal`) and checkpoint store
(:mod:`repro.durability.checkpoint`) into the service's ingest path:

* every ``on_batch`` appends a ``KIND_BATCH`` record — under the
  service lock, *before* routing, stamped with the seq the batch is
  about to be assigned — so an acknowledged batch is in the log even
  if it is still sitting in an async view's ingest queue when the
  process dies;
* every published view delta appends a ``KIND_DELTA`` record *before*
  it is handed to subscribers (log-append happens-before delivery is
  what makes the ``from_seq`` live-handoff race-free, see
  :meth:`deltas_since`);
* view create/drop append lifecycle records, so recovery rebuilds the
  same view set.

**The delta log stays gap-free across crashes.**  Per view, delta
records cover a contiguous seq prefix: batcher flushes are FIFO and
each record carries the highest seq it merged.  A crash can cut that
prefix short of the batch log (acked batches still queued, their
deltas never published).  Recovery heals the gap: it replays the batch
tail one batch at a time with a drain after each — forcing
one-batch-per-flush alignment — and the publish path logs a replayed
delta only when its seq exceeds the view's highest pre-crash delta
record, so the healed log continues exactly where the old one stopped,
with no duplicate and no missing seq.

**Checkpoints happen at drained boundaries.**  ``checkpoint()`` (auto
every ``checkpoint_every`` batches) drains every view under the
service lock — so the delta log covers everything up to the captured
seq — captures catalog + base database + view definitions, rotates the
WAL, then writes the checkpoint and deletes the covered segments.
Recovery = load the newest valid checkpoint, re-create its views warm
from the restored base (the normal ``create_view`` path), replay the
WAL tail.  The checkpoint seq becomes the **resume horizon**: a
``from_seq`` below it cannot be served (the records are gone) and
raises :class:`ResumeHorizonError` — subscribers fall back to a full
snapshot (``initial=1``).
"""

from __future__ import annotations

import threading

from repro.eval import Database
from repro.net.wire import decode_gmr
from repro.ring import GMR
from repro.service import ServiceError, ViewDelta, ViewService
from repro.service.service import ViewHandle
from repro.durability.checkpoint import CheckpointStore
from repro.durability.wal import (
    KIND_BATCH,
    KIND_DELTA,
    KIND_DROP,
    KIND_VIEW,
    WalError,
    WriteAheadLog,
)

__all__ = ["DurableViewService", "ResumeHorizonError"]


class ResumeHorizonError(ServiceError):
    """``from_seq`` points below the truncation horizon: the deltas it
    asks for were covered by a checkpoint and their WAL segments are
    gone.  Carries ``horizon`` so the frontend can tell the subscriber
    where resumability starts (it should re-subscribe with
    ``initial=1`` instead)."""

    def __init__(self, view: str, from_seq: int, horizon: int):
        super().__init__(
            f"cannot resume view {view!r} from seq {from_seq}: the log "
            f"is truncated up to checkpoint seq {horizon} — "
            "re-subscribe with initial=1 for a full snapshot"
        )
        self.view = view
        self.from_seq = from_seq
        self.horizon = horizon


class DurableViewService(ViewService):
    """A ViewService logging every batch and delta to a WAL directory.

    Construction *is* recovery: if ``wal_dir`` holds a checkpoint
    and/or WAL segments from a previous process, the service comes up
    with that state (same seq, same views, same base) before the first
    call reaches it.  ``checkpoint_every=N`` checkpoints after every N
    ingested batches (0 = manual :meth:`checkpoint` only); ``fsync``
    is the WAL policy (``always`` | ``interval`` | ``off``).

    The base database is always tracked (``track_base`` is forced on):
    checkpoints restore view state by re-initializing each view from
    the base, which only works if the base absorbed every batch.
    """

    def __init__(
        self,
        wal_dir: str,
        catalog: dict[str, tuple[str, ...]] | None = None,
        base: Database | None = None,
        registry=None,
        tracer=None,
        checkpoint_every: int = 0,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        sharing: bool = True,
    ):
        # Sharing composes with durability deterministically: only user
        # views are checkpointed/WAL-logged, and recovery replays
        # create_view in the original order, so the subplan DAG (and
        # its internal node names) is rebuilt identically before the
        # batch tail replays through it.
        super().__init__(
            catalog=catalog, base=base, track_base=True,
            registry=registry, tracer=tracer, sharing=sharing,
        )
        self.wal_dir = str(wal_dir)
        self.checkpoint_every = int(checkpoint_every or 0)
        self.checkpoints = CheckpointStore(self.wal_dir)
        self.wal = WriteAheadLog(
            self.wal_dir, fsync=fsync, fsync_interval_s=fsync_interval_s,
        )
        #: serializes the check-and-append of delta records so each
        #: view's logged seqs are strictly increasing even when a drain
        #: catch-up races a batcher flush
        self._delta_log_lock = threading.Lock()
        #: per view, the highest seq with a logged delta record
        self._delta_high: dict[str, int] = {}
        #: per view, the durable definition (spec/backend/options) —
        #: what checkpoints store and recovery replays
        self._view_defs: dict[str, dict] = {}
        #: seq of the checkpoint whose truncation bounds from_seq resume
        self._horizon = 0
        self._batches_since_ckpt = 0
        self._checkpoints_taken = 0
        self._replaying = False
        #: recovery summary ({"checkpoint_seq", "replayed"}) for /health
        self.recovered: dict | None = None
        self.registry.gauge_fn(
            "repro_wal_appends_total", lambda: self.wal.appends,
            help="records appended to the write-ahead log",
        )
        self.registry.gauge_fn(
            "repro_wal_bytes_total", lambda: self.wal.bytes_written,
            help="bytes appended to the write-ahead log",
        )
        self.registry.gauge_fn(
            "repro_wal_fsyncs_total", lambda: self.wal.fsyncs,
            help="fsync calls issued by the write-ahead log",
        )
        self.registry.gauge_fn(
            "repro_wal_segments",
            lambda: len(self.wal.segment_numbers()),
            help="WAL segment files on disk",
        )
        self.registry.gauge_fn(
            "repro_service_checkpoints_total",
            lambda: self._checkpoints_taken,
            help="checkpoints written since this process started",
        )
        self.registry.gauge_fn(
            "repro_service_resume_horizon", lambda: self._horizon,
            help="lowest seq from which from_seq subscriptions can resume",
        )
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Load the newest checkpoint, replay the WAL tail, heal the
        delta log.  Runs once, at construction, before any caller can
        reach the service."""
        span = self.tracer.span("recover", None)
        state = self.checkpoints.load_latest()
        from_segment = state["next_segment"] if state else None
        # Materialize the tail up front: replay itself appends healed
        # delta records to the active segment, which must not feed back
        # into the iteration.
        records = list(self.wal.records(from_segment))
        ckpt_seq = int(state["seq"]) if state else 0
        for kind, rec in records:
            if kind == KIND_DELTA:
                view = rec.get("view")
                if rec["seq"] > self._delta_high.get(view, 0):
                    self._delta_high[view] = rec["seq"]
        replayed = 0
        self._replaying = True
        try:
            if state is not None:
                self.catalog.update(
                    {t: tuple(c) for t, c in state["catalog"].items()}
                )
                for relation, data in state["base"].items():
                    self.base.set_view(relation, GMR(dict(data)))
                self._seq = ckpt_seq
                for vd in state["views"]:
                    self.create_view(
                        vd["name"], vd["spec"], backend=vd["backend"],
                        **vd["options"],
                    )
            for kind, rec in records:
                if kind == KIND_VIEW:
                    if rec["name"] not in self._views:
                        self.create_view(
                            rec["name"], rec["spec"],
                            backend=rec["backend"], **rec["options"],
                        )
                elif kind == KIND_DROP:
                    if rec["name"] in self._views:
                        self.drop_view(rec["name"])
                elif kind == KIND_BATCH:
                    seq = rec["seq"]
                    if seq <= self._seq:
                        continue  # covered by the checkpoint
                    if seq != self._seq + 1:
                        raise WalError(
                            f"WAL batch records are not contiguous: "
                            f"expected seq {self._seq + 1}, found {seq}"
                        )
                    try:
                        self.on_batch(
                            rec["relation"], decode_gmr(rec["delta"])
                        )
                    except Exception:
                        # The original producer already saw (and
                        # absorbed) this failure; replay matches the
                        # original partial routing.
                        pass
                    # Drain after *every* replayed batch: one batch per
                    # flush, so healed delta records slot in exactly
                    # after the pre-crash prefix (which may end on a
                    # coalesced record covering several seqs).
                    self.drain()
                    replayed += 1
            self.drain()
        finally:
            self._replaying = False
        self._horizon = ckpt_seq
        if ckpt_seq or replayed or self._views:
            self.recovered = {
                "checkpoint_seq": ckpt_seq,
                "replayed": replayed,
                "seq": self._seq,
                "views": list(self._views),
            }
        else:
            self.recovered = None  # fresh directory: nothing recovered
        span.set(
            checkpoint_seq=ckpt_seq, replayed=replayed, seq=self._seq,
            views=len(self._views),
        )
        span.finish()

    # ------------------------------------------------------------------
    # Durable overrides of the ingest path
    # ------------------------------------------------------------------
    def on_batch(self, relation, batch, trace=None):
        with self._lock:
            if not self._replaying:
                # Log before routing, with the seq the super call is
                # about to assign: an acked batch is durable even if it
                # dies in an async queue.  With fsync="always" the ack
                # implies the record hit the disk.
                self.wal.append_batch(self._seq + 1, relation, batch)
            try:
                return super().on_batch(relation, batch, trace=trace)
            finally:
                self._batches_since_ckpt += 1
                if (
                    self.checkpoint_every
                    and not self._replaying
                    and self._batches_since_ckpt >= self.checkpoint_every
                ):
                    self.checkpoint()

    def create_view(self, name, source, backend="rivm-batch", *,
                    updatable=None, key_hints=None, **options):
        with self._lock:
            handle = super().create_view(
                name, source, backend=backend, updatable=updatable,
                key_hints=key_hints, **options,
            )
            # The spec (not the raw source) is what the record carries:
            # it already folded in catalog resolution, updatable, and
            # key hints, and QuerySpec pickles by contract.
            record = {
                "name": name,
                "spec": handle.spec,
                "backend": backend,
                "options": dict(options),
            }
            if not self._replaying:
                try:
                    self.wal.append_view(record)
                except Exception as exc:
                    # Creation must not outlive its durability: a view
                    # the log cannot describe would silently vanish on
                    # restart.
                    super().drop_view(name)
                    raise ServiceError(
                        f"view {name!r} cannot be made durable "
                        f"(options not serializable?): {exc}"
                    ) from exc
            self._view_defs[name] = record
            return handle

    def drop_view(self, name):
        super().drop_view(name)
        self._view_defs.pop(name, None)
        if not self._replaying:
            self.wal.append_drop(name)

    def _publish(self, handle: ViewHandle, relation, seq=None,
                 delta_source=None, parent=None, seqs=None):
        """Like the base publish, with two durable differences: the
        delta is *always* computed (never coalesced into a later event
        — every seq's delta must reach the log), and it is appended to
        the WAL *before* any subscriber sees it (so a ``from_seq``
        handoff that scans the log after subscribing can never miss an
        event: whatever its live queue missed is in the scan)."""
        live = [s for s in handle.subscriptions if s.active]
        if len(live) != len(handle.subscriptions):
            for sub in [s for s in handle.subscriptions if not s.active]:
                try:
                    handle.subscriptions.remove(sub)
                except ValueError:
                    pass
        delta = (
            delta_source() if delta_source is not None
            else handle.backend.last_delta()
        )
        if delta.is_zero():
            return
        seq_val = self._seq if seq is None else seq
        with self._delta_log_lock:
            if seq_val > self._delta_high.get(handle.name, 0):
                self.wal.append_delta(
                    seq_val, handle.name, relation, delta, seqs=seqs,
                )
                self._delta_high[handle.name] = seq_val
            # else: replay recomputed a delta the pre-crash log already
            # covers (its record survived) — deliverable, not loggable.
        if not live:
            return
        span = self.tracer.span(
            "publish", parent,
            view=handle.name, relation=relation, seq=seq_val,
            subscribers=len(live),
        )
        event = ViewDelta(
            handle.name, relation, seq_val, delta, trace=span.ctx
        )
        handle.deltas_counter.inc()
        for sub in live:
            if sub.active:
                sub.callback(event)
        span.finish()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Capture a drained state, rotate the WAL, truncate the
        covered prefix; returns the checkpointed seq.

        Runs under the service lock (producers stall for the duration —
        ``checkpoint_every`` trades that stall against recovery time
        and resume-horizon depth).  The drain is what licenses the
        truncation: after it, every delta of every batch ``<= seq`` is
        either in a subscriber's hands or recomputable from the
        checkpoint, so the old segments carry no unique information.
        """
        with self._lock:
            span = self.tracer.span("checkpoint", None, seq=self._seq)
            self.drain()
            seq = self._seq
            state = {
                "seq": seq,
                "catalog": dict(self.catalog),
                "base": {
                    r: dict(g.data) for r, g in self.base.views.items()
                },
                "views": [
                    dict(self._view_defs[name]) for name in self._views
                ],
                "next_segment": self.wal.rotate(),
            }
            # Advance the horizon before releasing the lock: a from_seq
            # request racing the truncation below must be refused, not
            # fed a half-deleted log.
            self._horizon = seq
            self._batches_since_ckpt = 0
        self.checkpoints.save(state)
        self.wal.truncate_before(state["next_segment"])
        self._checkpoints_taken += 1
        span.set(next_segment=state["next_segment"])
        span.finish()
        return seq

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def deltas_since(self, view: str, from_seq: int):
        """Replay logged deltas of ``view`` with ``seq > from_seq``, as
        ``(seq, relation, GMR, seqs)`` tuples in seq order.

        The network frontend's ``?from_seq=`` handler subscribes
        *first* and scans *second*: because every delta is logged
        before it is delivered, an event is either in this scan or in
        the live queue (or both — the pump dedupes on seq), never in
        neither.  Raises :class:`ResumeHorizonError` below the
        truncation horizon and the usual unknown-view
        :class:`~repro.service.ServiceError` otherwise.
        """
        with self._lock:
            self._handle(view)
            horizon = self._horizon
        if from_seq < horizon:
            raise ResumeHorizonError(view, from_seq, horizon)
        return self.wal.read_deltas(view, from_seq)

    @property
    def resume_horizon(self) -> int:
        return self._horizon

    # ------------------------------------------------------------------
    def close(self, checkpoint: bool = False) -> None:
        """Flush queues (so the delta log is complete), optionally take
        a final checkpoint, and close the WAL."""
        if checkpoint:
            self.checkpoint()
        else:
            self.drain()
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurableViewService(views={sorted(self._views)}, "
            f"seq={self._seq}, wal_dir={self.wal_dir!r}, "
            f"horizon={self._horizon})"
        )
