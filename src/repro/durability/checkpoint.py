"""Checkpoint files: the state that lets the WAL prefix be thrown away.

A checkpoint is one pickled dict written next to the WAL segments as
``ckpt-<seq>.bin``::

    {
      "format": 1,
      "seq": ...,           # every batch <= seq is inside this state
      "next_segment": ...,  # replay starts at this WAL segment
      "catalog": {...},
      "base": {relation: {row_tuple: multiplicity}},
      "views": [{"name", "spec", "backend", "options"}, ...],
    }

This extends the simulated-cluster checkpoint idea
(:mod:`repro.distributed.checkpoint`) to real services: instead of
serializing backend internals (which differ per engine and include
threads, pipes, and shared memory), the checkpoint stores the *base
database* plus the view definitions — recovery re-creates each view
through the normal ``create_view`` path, which warm-initializes it
from the base, reproducing exactly the state a drained service had at
``seq``.  That is why the durable service drains before capturing: at
a drained boundary, view state is a pure function of the base.

Write protocol: temp file in the same directory, ``fsync``, atomic
``rename``, then prune older checkpoints — a crash anywhere leaves
either the old checkpoint or the new one, never a half-written file.
A 4-byte CRC header guards the payload, so :meth:`load_latest` can
skip a corrupt file and fall back to the previous one.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib

__all__ = ["CHECKPOINT_FORMAT", "CheckpointStore"]

CHECKPOINT_FORMAT = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{12})\.bin$")
_CRC = struct.Struct(">I")


class CheckpointStore:
    """Read/write checkpoints in one directory (shared with the WAL)."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, seq: int) -> str:
        return os.path.join(self.directory, f"ckpt-{seq:012d}.bin")

    def checkpoint_seqs(self) -> list[int]:
        seqs = []
        for name in os.listdir(self.directory):
            m = _CKPT_RE.match(name)
            if m:
                seqs.append(int(m.group(1)))
        return sorted(seqs)

    def save(self, state: dict) -> str:
        """Durably write ``state`` (must carry ``seq``) and prune every
        older checkpoint; returns the new file's path."""
        seq = int(state["seq"])
        payload = pickle.dumps(dict(state, format=CHECKPOINT_FORMAT))
        blob = _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF) + payload
        path = self._path(seq)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        for old in self.checkpoint_seqs():
            if old < seq:
                try:
                    os.remove(self._path(old))
                except OSError:
                    pass
        return path

    def load_latest(self) -> dict | None:
        """The newest checkpoint that passes its CRC and unpickles;
        ``None`` when no usable checkpoint exists."""
        for seq in reversed(self.checkpoint_seqs()):
            try:
                with open(self._path(seq), "rb") as f:
                    blob = f.read()
                if len(blob) < _CRC.size:
                    continue
                (crc,) = _CRC.unpack_from(blob)
                payload = blob[_CRC.size:]
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    continue
                state = pickle.loads(payload)
                if state.get("format") != CHECKPOINT_FORMAT:
                    continue
                return state
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                continue
        return None

    def __repr__(self) -> str:
        return f"CheckpointStore({self.directory!r})"
