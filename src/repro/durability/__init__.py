"""Durability: seq-stamped WAL, checkpoints, and crash recovery.

This package makes a :class:`~repro.service.ViewService` survive
``kill -9``:

* :mod:`repro.durability.wal` — an append-only, CRC-framed write-ahead
  log of ``(seq, relation, batch)`` records (and the coalesced view
  deltas derived from them), with configurable fsync policy and
  segment rotation;
* :mod:`repro.durability.checkpoint` — atomic full-state checkpoints
  that license truncating the WAL prefix they cover;
* :mod:`repro.durability.service` — :class:`DurableViewService`, the
  drop-in ViewService subclass that logs every acked batch before
  applying it, checkpoints periodically, recovers on construction
  (latest valid checkpoint + WAL tail replay, torn final record
  tolerated), and serves historical deltas for ``from_seq`` stream
  resumption.

See ARCHITECTURE.md ("Durability") for the record framing, the
recovery sequence, and the lag-drop/resume protocol.
"""

from repro.durability.checkpoint import CHECKPOINT_FORMAT, CheckpointStore
from repro.durability.service import DurableViewService, ResumeHorizonError
from repro.durability.wal import (
    FSYNC_POLICIES,
    KIND_BATCH,
    KIND_DELTA,
    KIND_DROP,
    KIND_VIEW,
    WalError,
    WriteAheadLog,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "DurableViewService",
    "FSYNC_POLICIES",
    "KIND_BATCH",
    "KIND_DELTA",
    "KIND_DROP",
    "KIND_VIEW",
    "ResumeHorizonError",
    "WalError",
    "WriteAheadLog",
]
