"""The append-only, seq-stamped write-ahead log.

One :class:`WriteAheadLog` owns a directory of numbered segment files
(``wal-000001.log``, ``wal-000002.log``, ...).  Appends always go to
the highest-numbered segment; a checkpoint rotates to a fresh segment
so the prefix it covers can be deleted as whole files
(:meth:`WriteAheadLog.truncate_before`) without rewriting anything.

**Record framing.**  Every record is one binary frame::

    magic(2) | kind(1) | length(4, BE) | crc32(4, BE) | payload(length)

The CRC covers ``kind + payload``, so a flipped byte anywhere in a
record is detected, and a torn final record (the process died mid
``write``) fails the length or CRC check.  Replay treats the first
invalid frame of a segment as that segment's end — everything before
it is intact, everything after is unreachable — which is exactly the
crash contract: records are either wholly in the log or wholly absent.
Opening the log for appending truncates the active segment at that
point so new records never land behind garbage.

Record kinds (payloads use the :mod:`repro.net.wire` codecs for GMRs,
as JSON; view-lifecycle records carry a pickled ``QuerySpec``):

``KIND_BATCH``
    ``{"seq", "relation", "delta"}`` — one ingested base batch, logged
    under the service lock *before* it is routed, with the seq it will
    be assigned.  The replayable total order.
``KIND_DELTA``
    ``{"seq", "view", "relation", "delta", "seqs"}`` — one published
    view delta (a coalesced async flush is one record; ``seqs`` lists
    every batch seq it merged).  What ``?from_seq=`` subscriptions
    replay.
``KIND_VIEW`` / ``KIND_DROP``
    view lifecycle, replayed in log order so recovery rebuilds the
    same view set the crashed process had.

**Fsync policy.**  ``always`` fsyncs after every append (an
acknowledged batch survives power loss), ``interval`` fsyncs at most
once per ``fsync_interval_s`` (bounded loss window, near-zero
overhead), ``off`` never fsyncs (the OS decides; still
crash-of-process safe, not crash-of-host safe).  Every append
*flushes* the userspace buffer regardless, so concurrent readers
(the ``from_seq`` replay path opens its own file handles) always see
whole records.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import threading
import time
import zlib

from repro.ring import GMR
from repro.net.wire import decode_gmr, encode_gmr

__all__ = [
    "KIND_BATCH",
    "KIND_DELTA",
    "KIND_DROP",
    "KIND_VIEW",
    "WalError",
    "WriteAheadLog",
]

_MAGIC = b"RW"
_HEADER = struct.Struct(">2sBII")  # magic, kind, length, crc32

KIND_BATCH = 0x42  # 'B'
KIND_DELTA = 0x44  # 'D'
KIND_VIEW = 0x56   # 'V'
KIND_DROP = 0x58   # 'X'

#: payloads of these kinds are JSON; KIND_VIEW is pickled (QuerySpec)
_JSON_KINDS = frozenset({KIND_BATCH, KIND_DELTA, KIND_DROP})

_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.log$")

FSYNC_POLICIES = ("always", "interval", "off")


class WalError(ValueError):
    """Invalid WAL configuration or a structurally broken log."""


def _segment_name(number: int) -> str:
    return f"wal-{number:06d}.log"


def _frame(kind: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF
    return _HEADER.pack(_MAGIC, kind, len(payload), crc) + payload


def _encode_payload(kind: int, record: dict) -> bytes:
    if kind in _JSON_KINDS:
        return json.dumps(record, separators=(",", ":")).encode("utf-8")
    return pickle.dumps(record)


def _decode_payload(kind: int, payload: bytes) -> dict:
    if kind in _JSON_KINDS:
        return json.loads(payload)
    return pickle.loads(payload)


def _read_frames(path: str):
    """Yield ``(kind, payload_bytes, end_offset)`` for every intact
    frame of one segment, stopping (silently) at the first torn or
    corrupt frame — the crash-tolerant read contract."""
    with open(path, "rb") as f:
        data = f.read()
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        magic, kind, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            return
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return  # torn tail: payload incomplete
        payload = data[start:end]
        if zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF != crc:
            return
        yield kind, payload, end
        offset = end


class WriteAheadLog:
    """Segmented, CRC-framed append log under one directory.

    Thread-safe for appends (one internal lock serializes the
    write+flush+fsync sequence); reads (:meth:`records`,
    :meth:`read_deltas`) open their own handles and may run
    concurrently with appends — they observe a prefix of whole
    records.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; choose from "
                + "/".join(FSYNC_POLICIES)
            )
        self.directory = str(directory)
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._last_fsync = time.monotonic()
        # Plain-int stats; the durable service exposes them as metrics.
        self.appends = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self._closed = False
        existing = self.segment_numbers()
        self.segment = existing[-1] if existing else 1
        path = self._segment_path(self.segment)
        if existing:
            # Drop a torn tail before appending behind it: replay stops
            # at the first bad frame, so anything written after one
            # would be unreachable.
            valid_end = 0
            for _, _, end in _read_frames(path):
                valid_end = end
            if valid_end < os.path.getsize(path):
                with open(path, "r+b") as f:
                    f.truncate(valid_end)
        self._file = open(path, "ab")

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def _segment_path(self, number: int) -> str:
        return os.path.join(self.directory, _segment_name(number))

    def segment_numbers(self) -> list[int]:
        """Sorted numbers of the segments currently on disk."""
        numbers = []
        for name in os.listdir(self.directory):
            m = _SEGMENT_RE.match(name)
            if m:
                numbers.append(int(m.group(1)))
        return sorted(numbers)

    def rotate(self) -> int:
        """Seal the active segment and open the next; returns the new
        segment number (the checkpoint records it as ``next_segment``:
        replay after that checkpoint starts there)."""
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            self._file.close()
            self.segment += 1
            self._file = open(self._segment_path(self.segment), "ab")
            return self.segment

    def truncate_before(self, segment: int) -> int:
        """Delete every segment numbered below ``segment`` (a
        checkpoint covers them); returns how many were removed."""
        removed = 0
        for number in self.segment_numbers():
            if number >= segment:
                break
            try:
                os.remove(self._segment_path(number))
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append(self, kind: int, record: dict) -> None:
        frame = _frame(kind, _encode_payload(kind, record))
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            self._file.write(frame)
            # Always push to the OS so concurrent from_seq readers (own
            # file handles) see whole records; fsync per policy.
            self._file.flush()
            if self.fsync == "always":
                os.fsync(self._file.fileno())
                self.fsyncs += 1
            elif self.fsync == "interval":
                now = time.monotonic()
                if now - self._last_fsync >= self.fsync_interval_s:
                    os.fsync(self._file.fileno())
                    self.fsyncs += 1
                    self._last_fsync = now
            self.appends += 1
            self.bytes_written += len(frame)

    def append_batch(self, seq: int, relation: str, batch: GMR) -> None:
        self._append(
            KIND_BATCH,
            {"seq": seq, "relation": relation, "delta": encode_gmr(batch)},
        )

    def append_delta(
        self,
        seq: int,
        view: str,
        relation: str | None,
        delta: GMR,
        seqs: list[int] | None = None,
    ) -> None:
        record = {
            "seq": seq,
            "view": view,
            "relation": relation,
            "delta": encode_gmr(delta),
        }
        if seqs:
            record["seqs"] = list(seqs)
        self._append(KIND_DELTA, record)

    def append_view(self, record: dict) -> None:
        """Log a view creation (``record`` carries the pickled-with-it
        ``spec``/``backend``/``options``)."""
        self._append(KIND_VIEW, record)

    def append_drop(self, name: str) -> None:
        self._append(KIND_DROP, {"name": name})

    def sync(self) -> None:
        """Force an fsync regardless of policy."""
        with self._lock:
            if not self._closed:
                self._file.flush()
                os.fsync(self._file.fileno())
                self.fsyncs += 1
                self._last_fsync = time.monotonic()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
                os.fsync(self._file.fileno())
            except (OSError, ValueError):
                pass
            self._file.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def records(self, from_segment: int | None = None):
        """Yield ``(kind, record)`` across segments ``>= from_segment``
        in log order, tolerating a torn tail in any segment."""
        for number in self.segment_numbers():
            if from_segment is not None and number < from_segment:
                continue
            for kind, payload, _ in _read_frames(self._segment_path(number)):
                try:
                    yield kind, _decode_payload(kind, payload)
                except (ValueError, pickle.UnpicklingError, EOFError):
                    # An intact frame with an undecodable payload can
                    # only come from a foreign writer; skip it rather
                    # than lose the records behind it.
                    continue

    def read_deltas(self, view: str, from_seq: int):
        """Yield ``(seq, relation, GMR, seqs)`` for every logged delta
        of ``view`` with ``seq > from_seq``, in log (= seq) order.

        Snapshots the segment list up front: a concurrent checkpoint
        may unlink a segment mid-read, but the already-opened handle
        keeps it readable (POSIX), and records appended after the
        snapshot are the live stream's problem, not the replay's.
        """
        for kind, record in self.records():
            if kind != KIND_DELTA:
                continue
            if record.get("view") != view:
                continue
            seq = record["seq"]
            if seq <= from_seq:
                continue
            yield (
                seq,
                record.get("relation"),
                decode_gmr(record["delta"]),
                record.get("seqs") or [seq],
            )

    def stats(self) -> dict:
        return {
            "appends": self.appends,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "segment": self.segment,
            "segments": len(self.segment_numbers()),
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, segment={self.segment}, "
            f"fsync={self.fsync!r})"
        )
