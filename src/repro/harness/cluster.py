"""Sharded-cluster serving experiments.

The cluster analogue of
:func:`~repro.harness.network.measure_network_throughput`: the same
multi-view workload and the same producer/subscriber shape, but hosted
on ``n_shards`` in-process :class:`~repro.net.ViewServer` shards behind
a :class:`~repro.cluster.ClusterRouter` — so single-server and sharded
numbers are directly comparable end to end (ingestion, scatter,
maintenance, merge, push fan-out, and the cross-shard barrier all
inside the timed window).

Static dimension tables are pre-loaded per shard through the *same*
split function the router will scatter with (replicated tables go to
every shard in full; partitioned ones are cut identically), so every
shard's warm initialization matches the placement of the stream it
will see.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.cluster import ClusterRouter, ShardMap
from repro.eval import Database
from repro.harness.network import NetViewStats
from repro.harness.service import coerce_view_defs, prepare_service_run
from repro.net import Client, ViewServer
from repro.ring import GMR
from repro.service import ViewService, infer_partition_plan

__all__ = ["ClusterResult", "measure_cluster_throughput"]

#: how long the driver waits for the router's barrier mark on a stream
_MARK_TIMEOUT_S = 60.0


@dataclass
class ClusterResult:
    """One timed sharded serving run."""

    views: list[NetViewStats]
    n_shards: int
    replicas: int
    n_clients: int
    n_tuples: int
    n_batches: int
    elapsed_s: float
    subscribers_per_view: int = 1
    #: the inferred placement, e.g. "R:hash(b) S:hash(b)"
    placement: str = ""

    @property
    def throughput(self) -> float:
        """Streamed tuples per second, measured at the clients."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.n_tuples / self.elapsed_s


def measure_cluster_throughput(
    views,
    batch_size: int,
    workload: str = "micro",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    use_compiled: bool = True,
    catalog: dict[str, tuple[str, ...]] | None = None,
    n_shards: int = 2,
    replicas: int = 1,
    n_clients: int = 1,
    subscribers_per_view: int = 1,
    partition: str = "hash",
    boundaries: list | None = None,
    host: str = "127.0.0.1",
) -> ClusterResult:
    """Serve N views on a ``n_shards``-shard cluster behind a router.

    View definitions must be SQL strings (each shard re-parses them
    against the shared ``catalog``).  Setup — workload generation,
    per-shard static preload, shard servers, router, view creation —
    happens outside the timed window; the window spans the producer
    threads (posting round-robin shares of the stream to the router),
    the cross-shard drain barrier, and every merged subscription stream
    observing the router's mark.  Each run also checks the end-to-end
    invariant: deltas accumulated off every merged stream equal the
    gathered snapshot.
    """
    defs = coerce_view_defs(views)
    for d in defs:
        if not isinstance(d.source, str):
            raise ValueError(
                f"view {d.name!r}: the cluster harness needs SQL view "
                "definitions (they are re-parsed by every shard)"
            )
    if n_shards < 1 or replicas < 1 or n_clients < 1:
        raise ValueError("n_shards, replicas and n_clients must be >= 1")

    specs, static, batches, n_tuples, _fed = prepare_service_run(
        defs, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, catalog=catalog,
    )

    # Pre-split the static tables with the same plan the router will
    # infer from the same specs (inference is deterministic).
    plan = infer_partition_plan(specs.values())
    splitter = ShardMap(
        [[(host, 0)] for _ in range(n_shards)],
        catalog or {}, plan, mode=partition, boundaries=boundaries,
    )
    shard_bases = [Database() for _ in range(n_shards)]
    for relation, contents in static.views.items():
        for shard, part in enumerate(splitter.split(relation, contents)):
            shard_bases[shard].set_view(relation, part)

    servers: list[ViewServer] = []
    groups: list[list[tuple[str, int]]] = []
    router = None
    streams: dict[tuple[str, int], object] = {}
    readers: list[threading.Thread] = []
    errors: list[BaseException] = []
    services: list[ViewService] = []
    try:
        for shard in range(n_shards):
            group = []
            for _ in range(replicas):
                base = Database()
                for rel, contents in shard_bases[shard].views.items():
                    base.set_view(rel, GMR(dict(contents.data)))
                svc = ViewService(
                    catalog=catalog, base=base, track_base=False
                )
                services.append(svc)
                server = ViewServer(svc, host=host).start()
                servers.append(server)
                group.append((host, server.port))
            groups.append(group)

        router = ClusterRouter(
            groups, catalog or {}, partition=partition,
            boundaries=boundaries,
        ).start()

        for d in defs:
            options = dict(d.options)
            options.setdefault("use_compiled", use_compiled)
            router.create_view(
                d.name, d.source, backend=d.backend,
                updatable=specs[d.name].updatable, options=options,
            )

        control = Client(host=host, port=router.port)
        accs: dict[tuple[str, int], GMR] = {}
        counts: dict[tuple[str, int], int] = {}
        for d in defs:
            for i in range(subscribers_per_view):
                key = (d.name, i)
                streams[key] = control.subscribe(d.name)
                accs[key] = GMR()
                counts[key] = 0

        def read(key) -> None:
            try:
                for delta in streams[key]:
                    accs[key].add_inplace(delta.delta)
                    counts[key] += 1
            except BaseException as exc:
                errors.append(exc)

        readers = [
            threading.Thread(target=read, args=(key,), daemon=True)
            for key in streams
        ]
        for r in readers:
            r.start()

        shares = [batches[i::n_clients] for i in range(n_clients)]

        def produce(share) -> None:
            client = Client(host=host, port=router.port)
            try:
                for relation, batch, _size in share:
                    client.batch(relation, batch)
            except BaseException as exc:
                errors.append(exc)
            finally:
                client.close()

        producers = [
            threading.Thread(target=produce, args=(share,), daemon=True)
            for share in shares
        ]

        start = time.perf_counter()
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        token = control.drain()
        deadline = time.monotonic() + _MARK_TIMEOUT_S
        for key, stream in streams.items():
            while token not in stream.marks:
                if errors:
                    raise RuntimeError(
                        f"cluster run failed: {errors[0]!r}"
                    ) from errors[0]
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"stream {key!r} never observed router mark {token}"
                    )
                time.sleep(0.002)
        elapsed = time.perf_counter() - start
        if errors:
            raise RuntimeError(
                f"cluster run failed: {errors[0]!r}"
            ) from errors[0]

        stats = []
        for d in defs:
            snap = control.snapshot(d.name)
            stats.append(
                NetViewStats(
                    name=d.name,
                    backend=d.backend,
                    deltas_received=counts[(d.name, 0)],
                    snapshot_tuples=len(snap),
                    consistent=all(
                        accs[(d.name, i)] == snap
                        for i in range(subscribers_per_view)
                    ),
                )
            )
        control.close()
        placement = plan.describe(catalog)
    finally:
        for stream in streams.values():
            stream.close()
        if router is not None:
            router.close()
        for server in servers:
            server.close()
        for r in readers:
            r.join(timeout=10)
        # Dropping the views closes async backends' batcher threads —
        # also on the error path, so a failed run cannot leak pollers.
        for svc in services:
            for name in svc.views():
                try:
                    svc.drop_view(name)
                except Exception:
                    pass
    return ClusterResult(
        views=stats,
        n_shards=n_shards,
        replicas=replicas,
        n_clients=n_clients,
        n_tuples=n_tuples,
        n_batches=len(batches),
        elapsed_s=elapsed,
        subscribers_per_view=subscribers_per_view,
        placement=placement,
    )
