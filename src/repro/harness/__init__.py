"""Experiment harness: the code that regenerates the paper's evaluation.

Each experiment of Section 6 (and the appendices) has a runner here that
produces the same rows/series the paper reports:

* :mod:`repro.harness.local` — single-node throughput experiments
  (Fig. 7, Fig. 8, Table 1, Fig. 12);
* :mod:`repro.harness.cache` — cache-locality experiment (Table 2);
* :mod:`repro.harness.scaling` — weak/strong scaling and the
  optimization ablation on the simulated cluster (Figs. 9–11, 13) and
  the job/stage complexity table (Table 3);
* :mod:`repro.harness.ablation` — design-choice ablations beyond the
  paper's figures (domain extraction, batch pre-aggregation, index
  specialization);
* :mod:`repro.harness.service` — multi-view serving runs (N concurrent
  views on one :class:`~repro.service.ViewService` over a shared
  stream);
* :mod:`repro.harness.ingest` — async-ingestion runs (ingestion vs
  maintenance latency through the ``async:<backend>`` wrappers);
* :mod:`repro.harness.network` — over-the-wire serving runs (the same
  multi-view workload behind a :class:`~repro.net.ViewServer` socket,
  driven by N concurrent client connections);
* :mod:`repro.harness.cluster` — sharded serving runs (the network
  workload scattered over N shard servers behind a
  :class:`~repro.cluster.ClusterRouter`);
* :mod:`repro.harness.report` — plain-text table/series rendering.

The ``benchmarks/`` directory contains one pytest-benchmark target per
table/figure; each is a thin wrapper over these runners with scaled-down
parameters (see DESIGN.md §1 for why scaled runs preserve the shapes).
"""

from repro.harness.setup import (
    PreparedStream,
    make_engine,
    prepare_stream,
    run_engine,
    STRATEGIES,
)
from repro.harness.local import (
    LocalResult,
    batch_size_sweep,
    normalized_sweep,
    strategy_matrix,
    measure_throughput,
)
from repro.harness.cache import cache_locality_run
from repro.harness.scaling import (
    ScalingPoint,
    jobs_stages_table,
    optimization_ablation,
    strong_scaling,
    weak_scaling,
)
from repro.harness.ablation import (
    compilation_ablation,
    domain_extraction_ablation,
    preaggregation_ablation,
    specialization_ablation,
)
from repro.harness.ingest import IngestionResult, measure_ingestion
from repro.harness.report import (
    bench_environment,
    format_series,
    format_table,
)
from repro.harness.service import (
    ServiceResult,
    ViewDef,
    ViewStats,
    measure_service_throughput,
    prepare_service_run,
)
from repro.harness.network import (
    NetViewStats,
    NetworkResult,
    measure_network_throughput,
)
from repro.harness.cluster import (
    ClusterResult,
    measure_cluster_throughput,
)

__all__ = [
    "PreparedStream",
    "prepare_stream",
    "make_engine",
    "run_engine",
    "STRATEGIES",
    "LocalResult",
    "measure_throughput",
    "batch_size_sweep",
    "normalized_sweep",
    "strategy_matrix",
    "cache_locality_run",
    "ScalingPoint",
    "weak_scaling",
    "strong_scaling",
    "optimization_ablation",
    "jobs_stages_table",
    "compilation_ablation",
    "domain_extraction_ablation",
    "preaggregation_ablation",
    "specialization_ablation",
    "bench_environment",
    "format_table",
    "format_series",
    "ViewDef",
    "ViewStats",
    "ServiceResult",
    "measure_service_throughput",
    "prepare_service_run",
    "NetViewStats",
    "NetworkResult",
    "measure_network_throughput",
    "ClusterResult",
    "measure_cluster_throughput",
    "IngestionResult",
    "measure_ingestion",
]
