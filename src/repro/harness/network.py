"""Over-the-wire serving experiments.

The network analogue of
:func:`~repro.harness.service.measure_service_throughput`: the same
multi-view workload, but hosted behind a real :class:`~repro.net.ViewServer`
socket and driven by ``n_clients`` concurrent
:class:`~repro.net.Client` connections — each on its own thread, the
shape of the deployment the frontend exists for.  Per view, one push
subscription accumulates deltas off the wire; the timed window covers
ingestion, maintenance, push fan-out, *and* the client-side barrier
(drain mark observed on every stream), so in-process vs network runs
are directly comparable end to end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.harness.service import (
    coerce_view_defs,
    create_views,
    prepare_service_run,
)
from repro.net import Client, ViewServer
from repro.ring import GMR
from repro.service import ViewService

__all__ = ["NetViewStats", "NetworkResult", "measure_network_throughput"]

#: how long the driver waits for a drain mark to show up on a stream
_MARK_TIMEOUT_S = 60.0


@dataclass
class NetViewStats:
    """Per-view outcome of one network serving run."""

    name: str
    backend: str
    deltas_received: int
    snapshot_tuples: int
    #: deltas accumulated off the wire equal the final snapshot — the
    #: end-to-end delivery invariant, checked per run
    consistent: bool


@dataclass
class NetworkResult:
    """One timed over-the-wire serving run."""

    views: list[NetViewStats]
    n_clients: int
    n_tuples: int
    n_batches: int
    elapsed_s: float
    subscribers_per_view: int = 1

    @property
    def throughput(self) -> float:
        """Streamed tuples per second, measured at the clients."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.n_tuples / self.elapsed_s


def measure_network_throughput(
    views,
    batch_size: int,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    use_compiled: bool = True,
    catalog: dict[str, tuple[str, ...]] | None = None,
    n_clients: int = 1,
    subscribers_per_view: int = 1,
    host: str = "127.0.0.1",
) -> NetworkResult:
    """Serve N views over a real socket, driven by concurrent clients.

    Stream preparation, view creation, and server startup happen
    outside the timed window; the window spans the producer threads
    (each posting its round-robin share of batches over its own client
    connection), a drain barrier, and every subscription stream
    observing the barrier's mark — i.e. all pushed deltas received.
    ``subscribers_per_view`` opens that many independent push streams
    per view (the fan-out axis): each is a separate connection and each
    must observe the barrier inside the timed window.
    """
    defs = coerce_view_defs(views)
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if subscribers_per_view < 1:
        raise ValueError(
            f"subscribers_per_view must be >= 1, got {subscribers_per_view}"
        )

    specs, static, batches, n_tuples, _fed = prepare_service_run(
        defs, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, catalog=catalog,
    )

    service = ViewService(catalog=catalog, base=static, track_base=False)
    create_views(service, defs, specs, use_compiled)

    server = ViewServer(service, host=host).start()
    control = Client(host=host, port=server.port)
    streams: dict[tuple[str, int], object] = {}
    accs: dict[tuple[str, int], GMR] = {}
    counts: dict[tuple[str, int], int] = {}
    readers: list[threading.Thread] = []
    errors: list[BaseException] = []
    try:
        for d in defs:
            for i in range(subscribers_per_view):
                key = (d.name, i)
                streams[key] = control.subscribe(d.name)
                accs[key] = GMR()
                counts[key] = 0

        def read(key) -> None:
            # Iteration appends marks to stream.marks and ends when the
            # server closes the stream (our shutdown path).
            try:
                for delta in streams[key]:
                    accs[key].add_inplace(delta.delta)
                    counts[key] += 1
            except BaseException as exc:
                errors.append(exc)

        readers = [
            threading.Thread(target=read, args=(key,), daemon=True)
            for key in streams
        ]
        for r in readers:
            r.start()

        shares = [batches[i::n_clients] for i in range(n_clients)]

        def produce(share) -> None:
            client = Client(host=host, port=server.port)
            try:
                for relation, batch, _size in share:
                    client.batch(relation, batch)
            except BaseException as exc:
                errors.append(exc)
            finally:
                client.close()

        producers = [
            threading.Thread(target=produce, args=(share,), daemon=True)
            for share in shares
        ]

        start = time.perf_counter()
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        token = control.drain()
        deadline = time.monotonic() + _MARK_TIMEOUT_S
        for key, stream in streams.items():
            while token not in stream.marks:
                if errors:
                    raise RuntimeError(
                        f"network run failed: {errors[0]!r}"
                    ) from errors[0]
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"stream {key!r} never observed drain mark {token}"
                    )
                time.sleep(0.002)
        elapsed = time.perf_counter() - start
        if errors:
            raise RuntimeError(f"network run failed: {errors[0]!r}") from errors[0]

        stats = []
        for d in defs:
            snap = control.snapshot(d.name)
            stats.append(
                NetViewStats(
                    name=d.name,
                    backend=d.backend,
                    deltas_received=counts[(d.name, 0)],
                    snapshot_tuples=len(snap),
                    consistent=all(
                        accs[(d.name, i)] == snap
                        for i in range(subscribers_per_view)
                    ),
                )
            )
    finally:
        for stream in streams.values():
            stream.close()
        control.close()
        server.close()
        for r in readers:
            r.join(timeout=10)
        for d in defs:
            try:
                service.drop_view(d.name)
            except Exception:
                pass
    return NetworkResult(
        views=stats,
        n_clients=n_clients,
        n_tuples=n_tuples,
        n_batches=len(batches),
        elapsed_s=elapsed,
        subscribers_per_view=subscribers_per_view,
    )
