"""Async-ingestion experiments: the split latency story.

Where :func:`~repro.harness.local.measure_throughput` sweeps the batch
size *statically* (the paper's fig7/fig12 knob), this runner streams a
prepared workload through an ``async:<inner>`` backend and reports what
the decoupling makes separately measurable: ingestion latency (enqueue
wait + queue residency) versus maintenance latency (the inner engine's
per-flush trigger time), per batching policy.
``benchmarks/test_async_ingestion.py`` sweeps the policies on Q1/Q6/Q17
and emits ``BENCH_async.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.exec import create_backend
from repro.harness.setup import PreparedStream
from repro.metrics import IngestMetrics
from repro.ring import GMR


@dataclass
class IngestionResult:
    """One async-ingestion run: throughput plus the split latencies."""

    query: str
    inner: str
    policy: str
    n_tuples: int
    n_batches: int
    elapsed_s: float
    snapshot: GMR
    metrics: IngestMetrics

    @property
    def throughput(self) -> float:
        """End-to-end streamed tuples per second (enqueue through the
        final drain barrier)."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.n_tuples / self.elapsed_s

    def summary(self) -> dict:
        """JSON-friendly record: identifiers, throughput, and the
        metrics' percentile summary."""
        return {
            "query": self.query,
            "inner": self.inner,
            "policy": self.policy,
            "n_tuples": self.n_tuples,
            "n_batches": self.n_batches,
            "elapsed_s": self.elapsed_s,
            "throughput_tps": self.throughput,
            **self.metrics.summary(),
        }


def measure_ingestion(
    prepared: PreparedStream,
    inner: str = "rivm-batch",
    policy: str = "fixed",
    use_compiled: bool = True,
    **async_options,
) -> IngestionResult:
    """Stream a prepared workload through ``async:<inner>``.

    The producer loop enqueues every batch, then drains — so
    ``elapsed_s`` is end-to-end and the final snapshot covers the whole
    stream (callers differential-test it against the bare inner
    engine).  ``async_options`` reach the wrapper factory (``max_batch``,
    ``max_delay_s``, ``queue_capacity``, ``admission``, ...; anything
    else is forwarded to the inner factory).
    """
    backend = create_backend(
        f"async:{inner}",
        prepared.spec,
        policy=policy,
        use_compiled=use_compiled,
        **async_options,
    )
    try:
        backend.initialize(prepared.fresh_static())
        start = time.perf_counter()
        for relation, batch in prepared.batches:
            backend.on_batch(relation, batch)
        backend.drain()
        elapsed = time.perf_counter() - start
        snapshot = GMR(dict(backend.snapshot().data))
    finally:
        backend.close()
    return IngestionResult(
        query=prepared.spec.name,
        inner=inner,
        policy=policy,
        n_tuples=prepared.n_tuples,
        n_batches=len(prepared.batches),
        elapsed_s=elapsed,
        snapshot=snapshot,
        metrics=backend.metrics,
    )
