"""Cache-locality experiment (paper Table 2, Appendix B.2).

The paper profiles TPC-H Q3 with perf counters while varying the batch
size.  Our substitute (DESIGN.md §1) drives a two-level LRU data-cache
simulator from the storage layer's record-access trace and reports the
evaluator's virtual-instruction count in place of retired instructions.
The quantity under study — the U-shape across batch sizes, with ~10x
more instructions at batch 1 than at batch 1,000 and worst locality at
the extremes — is produced by the same mechanism (per-trigger constant
overheads at small batches, working sets exceeding cache at large
ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.setup import prepare_stream, run_engine
from repro.metrics import CacheSimulator
from repro.workloads import QuerySpec


@dataclass
class CacheRow:
    """One Table 2 column: counters for a single batch size."""

    batch_label: str
    virtual_instructions: int
    l1_refs: int
    l1_misses: int
    llc_refs: int
    llc_misses: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_refs if self.l1_refs else 0.0

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_misses / self.llc_refs if self.llc_refs else 0.0


def cache_locality_run(
    spec: QuerySpec,
    batch_size: int | None,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    l1_bytes: int = 32 * 1024,
    llc_bytes: int = 512 * 1024,
    max_batches: int | None = None,
) -> CacheRow:
    """Run Q3 (or any query) at one batch size with the cache simulator
    attached; ``batch_size=None`` measures the single-tuple engine."""
    sim = CacheSimulator(l1_bytes=l1_bytes, llc_bytes=llc_bytes)
    if batch_size is None:
        prepared = prepare_stream(
            spec, 100, workload=workload, sf=sf, seed=seed,
            max_batches=max_batches,
        )
        # The single-tuple engine also runs over pools so its accesses
        # feed the same trace.
        outcome = _run_specialized(prepared, "single", sim)
        label = "Single"
    else:
        prepared = prepare_stream(
            spec, batch_size, workload=workload, sf=sf, seed=seed,
            max_batches=max_batches,
        )
        outcome = _run_specialized(prepared, "batch", sim)
        label = str(batch_size)
    report = sim.report()
    return CacheRow(
        batch_label=label,
        virtual_instructions=outcome.virtual_instructions,
        l1_refs=report["l1_refs"],
        l1_misses=report["l1_misses"],
        llc_refs=report["llc_refs"],
        llc_misses=report["llc_misses"],
    )


def _run_specialized(prepared, mode: str, sim: CacheSimulator):
    """Run the pool-backed engine in the requested trigger mode."""
    import time

    from repro.compiler import apply_batch_preaggregation, compile_query
    from repro.exec import SpecializedIVMEngine
    from repro.harness.setup import RunOutcome
    from repro.metrics import Counters

    spec = prepared.spec
    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    if mode == "batch":
        program = apply_batch_preaggregation(program)
    counters = Counters()
    engine = SpecializedIVMEngine(
        program, mode=mode, counters=counters, cache_sim=sim
    )
    engine.initialize(prepared.fresh_static())
    sim.reset()
    counters.reset()

    start = time.perf_counter()
    for relation, batch in prepared.batches:
        engine.on_batch(relation, batch)
    elapsed = time.perf_counter() - start
    return RunOutcome(
        strategy=f"rivm-specialized/{mode}",
        elapsed_s=elapsed,
        n_tuples=prepared.n_tuples,
        virtual_instructions=counters.virtual_instructions(),
        result=engine.snapshot(),
    )
