"""Distributed scaling experiments on the simulated cluster
(paper Section 6.2, Figures 9-11 and 13, Table 3).

Latency numbers come from the cluster's calibrated cost model, not wall
clock: a stage's modeled latency composes per-worker compute (converted
from executed virtual instructions), a synchronization term that grows
with the worker count, and shuffle time from byte-accounted transfers
(see ``repro.distributed.cluster``).  Scaled-down worker counts and
batch sizes preserve the curve shapes because the three terms keep
their paper-calibrated ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed import (
    CostModel,
    SimulatedCluster,
    compile_distributed,
)
from repro.eval import Database
from repro.harness.setup import prepare_stream
from repro.workloads import QuerySpec


def paper_scale_cost_model(
    seconds_per_instruction: float = 1.0e-5,
) -> CostModel:
    """A cost model for strong-scaling benches at scaled batch sizes.

    The paper's strong-scaling batches (50M-400M tuples) give each
    worker seconds of compute, so adding workers visibly cuts latency
    until synchronization flattens the curve.  Scaled benches process
    10^3-tuple batches, whose real compute is microseconds — pure sync
    territory.  Raising the modeled seconds-per-virtual-instruction
    restores the paper's compute/sync ratio at bench batch sizes; every
    other constant keeps its default, so the sync and shuffle terms are
    untouched and the crossover point is the modeled quantity.
    """
    return CostModel(seconds_per_instruction=seconds_per_instruction)


@dataclass
class ScalingPoint:
    """One (workers, batch size) measurement of a scaling sweep."""

    query: str
    n_workers: int
    batch_size: int
    n_batches: int
    n_tuples: int
    median_latency_s: float
    throughput_tuples_per_s: float
    shuffled_bytes: int
    jobs: int
    stages: int


def _run_cluster(
    spec: QuerySpec,
    n_workers: int,
    batch_size: int,
    workload: str,
    sf: float,
    seed: int,
    max_batches: int | None,
    opt_level: int = 3,
    cost_model: CostModel | None = None,
) -> ScalingPoint:
    prepared = prepare_stream(
        spec, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches,
    )
    dprog = compile_distributed(
        spec.query,
        name=spec.name,
        key_hints=spec.key_hints,
        opt_level=opt_level,
        updatable=spec.updatable,
    )
    cluster = SimulatedCluster(
        dprog, n_workers=n_workers, cost_model=cost_model, seed=seed
    )
    _preload_static(cluster, prepared, dprog)

    for relation, batch in prepared.batches:
        cluster.on_batch(relation, batch)

    metrics = cluster.metrics
    return ScalingPoint(
        query=spec.name,
        n_workers=n_workers,
        batch_size=batch_size,
        n_batches=metrics.batches,
        n_tuples=prepared.n_tuples,
        median_latency_s=metrics.median_latency_s,
        throughput_tuples_per_s=metrics.throughput_tuples_per_s(
            prepared.n_tuples
        ),
        shuffled_bytes=metrics.shuffled_bytes,
        jobs=metrics.jobs,
        stages=metrics.stages,
    )


def _preload_static(cluster, prepared, dprog) -> None:
    """Load static dimension tables into the cluster's placed views.

    Kept as a shim: the logic moved into
    :meth:`~repro.distributed.cluster.SimulatedCluster.initialize`, the
    backend-interface method every engine shares.
    """
    cluster.initialize(prepared.fresh_static())


def _install_view(cluster, info, contents, tag) -> None:
    """Compatibility shim over
    :meth:`~repro.distributed.cluster.SimulatedCluster.install_view`."""
    cluster.install_view(info.name, info.cols, contents, tag)


def weak_scaling(
    spec: QuerySpec,
    workers: tuple[int, ...] = (2, 4, 8, 16, 32),
    tuples_per_worker: int = 100,
    workload: str = "tpch",
    sf: float = 0.002,
    seed: int = 42,
    max_batches: int | None = 4,
    cost_model: CostModel | None = None,
) -> list[ScalingPoint]:
    """Figure 9: each worker receives a fixed batch share, so the total
    batch grows with the worker count."""
    return [
        _run_cluster(
            spec, n, n * tuples_per_worker, workload, sf, seed, max_batches,
            cost_model=cost_model,
        )
        for n in workers
    ]


def strong_scaling(
    spec: QuerySpec,
    workers: tuple[int, ...] = (2, 4, 8, 16, 32),
    batch_sizes: tuple[int, ...] = (500, 1_000, 2_000, 4_000),
    workload: str = "tpch",
    sf: float = 0.002,
    seed: int = 42,
    max_batches: int | None = 3,
    cost_model: CostModel | None = None,
) -> dict[int, list[ScalingPoint]]:
    """Figures 10-11: constant batch sizes, varying worker counts.

    Returns ``{batch_size: [point per worker count]}`` — one latency
    series per batch size, as plotted in the paper.
    """
    return {
        bs: [
            _run_cluster(
                spec, n, bs, workload, sf, seed, max_batches,
                cost_model=cost_model,
            )
            for n in workers
        ]
        for bs in batch_sizes
    }


def reeval_scaling(
    spec: QuerySpec,
    workers: tuple[int, ...] = (2, 4, 8, 16, 32),
    batch_size: int = 4_000,
    workload: str = "tpch",
    sf: float = 0.002,
    seed: int = 42,
    max_batches: int | None = 3,
    cost_model: CostModel | None = None,
) -> list[ScalingPoint]:
    """The Spark SQL re-evaluation comparator of Figures 10a/10c/10d.

    Spark SQL recomputes the query over the full (distributed) base
    tables on every batch; we model it as a distributed program whose
    single trigger statement re-evaluates the whole query, so its
    per-batch compute grows with the accumulated database — exactly the
    cost structure the paper compares against.
    """
    from repro.baselines.distributed_reeval import (
        compile_distributed_reeval,
    )

    out: list[ScalingPoint] = []
    for n in workers:
        prepared = prepare_stream(
            spec, batch_size, workload=workload, sf=sf, seed=seed,
            max_batches=max_batches,
        )
        dprog = compile_distributed_reeval(
            spec.query, name=spec.name, key_hints=spec.key_hints,
            updatable=spec.updatable,
        )
        cluster = SimulatedCluster(
            dprog, n_workers=n, cost_model=cost_model, seed=seed
        )
        _preload_static(cluster, prepared, dprog)
        for relation, batch in prepared.batches:
            cluster.on_batch(relation, batch)
        metrics = cluster.metrics
        out.append(
            ScalingPoint(
                query=f"{spec.name}-sparksql",
                n_workers=n,
                batch_size=batch_size,
                n_batches=metrics.batches,
                n_tuples=prepared.n_tuples,
                median_latency_s=metrics.median_latency_s,
                throughput_tuples_per_s=metrics.throughput_tuples_per_s(
                    prepared.n_tuples
                ),
                shuffled_bytes=metrics.shuffled_bytes,
                jobs=metrics.jobs,
                stages=metrics.stages,
            )
        )
    return out


def optimization_ablation(
    spec: QuerySpec,
    workers: tuple[int, ...] = (4, 8, 16, 32),
    batch_size: int = 2_000,
    workload: str = "tpch",
    sf: float = 0.002,
    seed: int = 42,
    max_batches: int | None = 3,
) -> dict[str, list[ScalingPoint]]:
    """Figure 13: distributed Q3 latency at optimization levels O0-O3.

    * O0 — naive well-formed program (single transformer form only);
    * O1 — + transformer push/simplification rules (Figs. 3-4);
    * O2 — + block fusion (Appendix C.3);
    * O3 — + location-aware CSE and DCE.
    """
    labels = {0: "O0-naive", 1: "O1-simplify", 2: "O2-fusion", 3: "O3-cse-dce"}
    out: dict[str, list[ScalingPoint]] = {}
    for level, label in labels.items():
        out[label] = [
            _run_cluster(
                spec, n, batch_size, workload, sf, seed, max_batches,
                opt_level=level,
            )
            for n in workers
        ]
    return out


@dataclass
class QueryComplexity:
    """Table 3 row: jobs and stages to process one update batch."""

    query: str
    jobs: int
    stages: int
    per_trigger: dict[str, tuple[int, int]] = field(default_factory=dict)


def jobs_stages_table(
    specs: dict[str, QuerySpec],
) -> list[QueryComplexity]:
    """Table 3: per-query job/stage counts under the default
    partitioning heuristic.  The paper reports the counts for
    processing one batch touching every streamed relation; we report
    the sum across triggers plus the per-trigger breakdown."""
    from repro.distributed.planner import plan_jobs

    rows: list[QueryComplexity] = []
    for name in sorted(specs, key=_query_sort_key):
        spec = specs[name]
        dprog = compile_distributed(
            spec.query, name=spec.name, key_hints=spec.key_hints,
            updatable=spec.updatable,
        )
        per_trigger: dict[str, tuple[int, int]] = {}
        jobs = 0
        stages = 0
        for rel_name, trig in dprog.triggers.items():
            plan = plan_jobs(trig.blocks)
            per_trigger[rel_name] = (plan.n_jobs, plan.n_stages)
            jobs = max(jobs, plan.n_jobs)
            stages = max(stages, plan.n_stages)
        rows.append(QueryComplexity(name, jobs, stages, per_trigger))
    return rows


def _query_sort_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 0, name)
