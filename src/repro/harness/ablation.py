"""Design-choice ablations (DESIGN.md §8).

These go beyond the paper's figures: each runner isolates one of the
system's design decisions and measures the cost of turning it off.

* domain extraction (Section 3.2.2) — without it, nested-aggregate
  deltas recompute the whole assignment twice per batch;
* batch pre-aggregation (Section 3.3) — without it, triggers loop over
  the raw batch in every statement;
* storage specialization (Section 5.2) — without automatic indexes,
  slice operations degrade to full scans;
* compile-once pipelines — without lowering, every statement of every
  batch re-interprets the algebra AST (per-node dispatch, per-call
  schema derivation and join planning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import apply_batch_preaggregation, compile_query
from repro.exec import RecursiveIVMEngine, SpecializedIVMEngine
from repro.harness.setup import PreparedStream, prepare_stream
from repro.metrics import Counters
from repro.workloads import QuerySpec


@dataclass
class AblationResult:
    """One on/off comparison on a single query."""

    query: str
    knob: str
    on_virtual_instructions: int
    off_virtual_instructions: int
    on_elapsed_s: float
    off_elapsed_s: float

    @property
    def virtual_speedup(self) -> float:
        """How many times cheaper the enabled variant is (in virtual
        instructions) — deterministic across runs."""
        if self.on_virtual_instructions <= 0:
            return float("inf")
        return self.off_virtual_instructions / self.on_virtual_instructions

    @property
    def wall_speedup(self) -> float:
        if self.on_elapsed_s <= 0:
            return float("inf")
        return self.off_elapsed_s / self.on_elapsed_s


def _timed_run(engine, prepared: PreparedStream, counters: Counters):
    import time

    engine.initialize(prepared.fresh_static())
    counters.reset()
    start = time.perf_counter()
    for relation, batch in prepared.batches:
        engine.on_batch(relation, batch)
    elapsed = time.perf_counter() - start
    return counters.virtual_instructions(), elapsed, engine.snapshot()


def domain_extraction_ablation(
    spec: QuerySpec,
    batch_size: int = 100,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    warm_fraction: float = 0.9,
) -> AblationResult:
    """Compare maintenance with and without domain extraction.

    Only meaningful for queries with nested aggregates (e.g. TPC-H
    Q17/Q22); flat queries compile identically under both settings.
    Correctness is asserted: both variants must produce the same view.

    Runs warm by default (``warm_fraction``): domain extraction's
    advantage is |batch domain| vs |materialized state|, which only
    shows once the state is much larger than one batch.
    """
    prepared = prepare_stream(
        spec, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, warm_fraction=warm_fraction,
    )

    on_counters = Counters()
    program_on = compile_query(
        spec.query, spec.name, updatable=spec.updatable
    )
    program_on = apply_batch_preaggregation(program_on)
    engine_on = RecursiveIVMEngine(
        program_on, mode="batch", counters=on_counters
    )
    on_vi, on_s, on_result = _timed_run(engine_on, prepared, on_counters)

    off_counters = Counters()
    program_off = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=False
    )
    program_off = apply_batch_preaggregation(program_off)
    engine_off = RecursiveIVMEngine(
        program_off, mode="batch", counters=off_counters
    )
    off_vi, off_s, off_result = _timed_run(engine_off, prepared, off_counters)

    if on_result != off_result:
        raise AssertionError(
            f"{spec.name}: domain extraction changed the result"
        )
    return AblationResult(
        query=spec.name,
        knob="domain-extraction",
        on_virtual_instructions=on_vi,
        off_virtual_instructions=off_vi,
        on_elapsed_s=on_s,
        off_elapsed_s=off_s,
    )


def preaggregation_ablation(
    spec: QuerySpec,
    batch_size: int = 1_000,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
) -> AblationResult:
    """Compare batched maintenance with and without pre-aggregation.

    Mirrors the Section 3.3 analysis: pre-aggregation wins big when the
    batch projects onto a small domain (Q1, Q20, Q22), and only adds
    materialization overhead when the aggregated columns functionally
    depend on the delta's key (Q4, Q13).
    """
    prepared = prepare_stream(
        spec, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches,
    )

    base_program = compile_query(
        spec.query, spec.name, updatable=spec.updatable
    )

    on_counters = Counters()
    engine_on = RecursiveIVMEngine(
        apply_batch_preaggregation(base_program),
        mode="batch",
        counters=on_counters,
    )
    on_vi, on_s, on_result = _timed_run(engine_on, prepared, on_counters)

    off_counters = Counters()
    engine_off = RecursiveIVMEngine(
        base_program, mode="batch", counters=off_counters
    )
    off_vi, off_s, off_result = _timed_run(engine_off, prepared, off_counters)

    if on_result != off_result:
        raise AssertionError(
            f"{spec.name}: pre-aggregation changed the result"
        )
    return AblationResult(
        query=spec.name,
        knob="batch-preaggregation",
        on_virtual_instructions=on_vi,
        off_virtual_instructions=off_vi,
        on_elapsed_s=on_s,
        off_elapsed_s=off_s,
    )


def compilation_ablation(
    spec: QuerySpec,
    batch_size: int = 100,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    warm_fraction: float = 0.0,
) -> AblationResult:
    """Compare compile-once pipelines against the interpreted evaluator.

    Both variants run the identical maintenance program through
    :class:`RecursiveIVMEngine`; the knob toggles ``use_compiled``, so
    the measured difference is exactly the cost of re-interpreting the
    AST in the batch loop.  Virtual instructions count the same logical
    work on both paths (lowering may skip index builds the interpreter
    performs eagerly), so the interesting ratio here is wall time.
    Correctness is asserted: both variants must produce the same view.
    """
    prepared = prepare_stream(
        spec, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, warm_fraction=warm_fraction,
    )

    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    program = apply_batch_preaggregation(program)

    on_counters = Counters()
    engine_on = RecursiveIVMEngine(
        program, mode="batch", counters=on_counters, use_compiled=True
    )
    on_vi, on_s, on_result = _timed_run(engine_on, prepared, on_counters)

    off_counters = Counters()
    engine_off = RecursiveIVMEngine(
        program, mode="batch", counters=off_counters, use_compiled=False
    )
    off_vi, off_s, off_result = _timed_run(engine_off, prepared, off_counters)

    if on_result != off_result:
        raise AssertionError(
            f"{spec.name}: compile-once lowering changed the result"
        )
    return AblationResult(
        query=spec.name,
        knob="compiled-pipelines",
        on_virtual_instructions=on_vi,
        off_virtual_instructions=off_vi,
        on_elapsed_s=on_s,
        off_elapsed_s=off_s,
    )


def specialization_ablation(
    spec: QuerySpec,
    batch_size: int = 500,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
) -> AblationResult:
    """Compare pool-backed execution with and without index support.

    The OFF variant disables non-unique (slice) indexes, so every slice
    lowers to a full scan — the paper's argument for automatic index
    selection (Section 5.2.1).
    """
    prepared = prepare_stream(
        spec, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches,
    )

    program = compile_query(spec.query, spec.name, updatable=spec.updatable)
    program = apply_batch_preaggregation(program)

    on_counters = Counters()
    engine_on = SpecializedIVMEngine(
        program, mode="batch", counters=on_counters
    )
    on_vi, on_s, on_result = _timed_run(engine_on, prepared, on_counters)

    off_counters = Counters()
    engine_off = SpecializedIVMEngine(
        program, mode="batch", counters=off_counters, enable_indexes=False
    )
    off_vi, off_s, off_result = _timed_run(engine_off, prepared, off_counters)

    if on_result != off_result:
        raise AssertionError(
            f"{spec.name}: index specialization changed the result"
        )
    return AblationResult(
        query=spec.name,
        knob="index-specialization",
        on_virtual_instructions=on_vi,
        off_virtual_instructions=off_vi,
        on_elapsed_s=on_s,
        off_elapsed_s=off_s,
    )
