"""Shared experiment setup: streams, engines, and timed runs.

Every experiment follows the paper's protocol (Section 6): generate a
database, pre-load the static dimension tables, synthesize the update
stream by round-robin interleaving, chunk it into batches of the chosen
size *outside the measured window*, and then time only the per-batch
maintenance work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.eval import Database
from repro.exec import create_backend, is_registered
from repro.metrics import CacheSimulator, Counters
from repro.ring import GMR
from repro.workloads import QuerySpec, generate_workload, stream_batches

#: every maintenance strategy the evaluation compares.  ``rivm-*`` are
#: the paper's generated engines; ``reeval`` / ``civm`` substitute for
#: the PostgreSQL baselines (DESIGN.md §1).
STRATEGIES = (
    "rivm-single",
    "rivm-batch",
    "rivm-specialized",
    "reeval",
    "civm",
)


@dataclass
class PreparedStream:
    """A ready-to-run experiment input.

    ``static`` holds the pre-loaded dimension tables; ``batches`` is the
    chunked update stream (formed up front, as in the paper);
    ``n_tuples`` counts only streamed tuples — the throughput
    denominator.
    """

    spec: QuerySpec
    static: Database
    batches: list[tuple[str, GMR]]
    n_tuples: int
    batch_size: int

    def fresh_static(self) -> Database:
        """An independent copy of the static database (engines mutate
        their initialization input)."""
        return self.static.copy()


def prepare_stream(
    spec: QuerySpec,
    batch_size: int,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    warm_fraction: float = 0.0,
) -> PreparedStream:
    """Generate data and chunk the update stream for one experiment.

    ``warm_fraction`` moves that share of every *updatable* table into
    the static preload: engines then initialize from a populated store
    and the stream delivers only the remainder.  This reproduces the
    late-stream regime of the paper's long runs (large materialized
    state, small relative updates) without paying for the whole stream.
    """
    tables = generate_workload(workload, sf=sf, seed=seed)

    static = Database()
    streamed: dict[str, list[tuple]] = {}
    for name, rows in tables.items():
        if name not in spec.updatable:
            static.insert_rows(name, rows)
        elif warm_fraction > 0.0:
            split = int(len(rows) * warm_fraction)
            static.insert_rows(name, rows[:split])
            streamed[name] = rows[split:]
        else:
            streamed[name] = rows

    batches = []
    n_tuples = 0
    for relation, batch in stream_batches(
        streamed, batch_size, relations=spec.updatable
    ):
        batches.append((relation, batch))
        n_tuples += sum(abs(m) for m in batch.data.values())
        if max_batches is not None and len(batches) >= max_batches:
            break
    return PreparedStream(spec, static, batches, n_tuples, batch_size)


def make_engine(
    spec: QuerySpec,
    strategy: str,
    counters: Counters | None = None,
    cache_sim: CacheSimulator | None = None,
    use_compiled: bool = True,
    **backend_options,
):
    """Construct a maintenance engine for one strategy.

    A thin wrapper over the execution-backend registry
    (:func:`repro.exec.create_backend`): every strategy name is a
    registered backend (see ``repro.exec.registry`` for the catalog),
    so the CLI, harness, and benchmarks all select engines through one
    lookup.  ``use_compiled=False`` routes statements through the
    interpreted reference evaluator instead of compile-once pipelines.
    """
    if not is_registered(strategy):
        raise ValueError(f"unknown strategy {strategy!r}")
    return create_backend(
        strategy,
        spec,
        counters=counters,
        cache_sim=cache_sim,
        use_compiled=use_compiled,
        **backend_options,
    )


@dataclass
class RunOutcome:
    """One timed engine run over a prepared stream."""

    strategy: str
    elapsed_s: float
    n_tuples: int
    virtual_instructions: int
    result: GMR = field(repr=False, default_factory=GMR)

    @property
    def throughput(self) -> float:
        """Streamed tuples per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.n_tuples / self.elapsed_s

    @property
    def virtual_throughput(self) -> float:
        """Tuples per virtual instruction (deterministic counterpart of
        ``throughput`` — used by tests and for noise-free ratios)."""
        if self.virtual_instructions <= 0:
            return float("inf")
        return self.n_tuples / self.virtual_instructions


def run_engine(
    prepared: PreparedStream,
    strategy: str,
    cache_sim: CacheSimulator | None = None,
    use_compiled: bool = True,
    **backend_options,
) -> RunOutcome:
    """Time one engine over the prepared stream.

    The run is hosted in a one-view :class:`~repro.service.ViewService`
    session (``track_base=False``, no subscribers), so single-backend
    measurements exercise exactly the serving path that
    :func:`repro.harness.service.measure_service_throughput` scales to N
    views.  Initialization (loading static tables into the engine's
    views) is excluded from the measured window, matching the paper's
    "not counting loading of streams into memory" protocol.
    ``backend_options`` are forwarded to the backend factory
    (``n_workers=`` for the cluster and multiproc backends, etc.).
    """
    from repro.service import ViewService

    counters = Counters()
    # create_view copies the base for the engine, so the shared static
    # database can be handed over directly (track_base=False guarantees
    # the service never mutates it).
    service = ViewService(base=prepared.static, track_base=False)
    service.create_view(
        prepared.spec.name,
        prepared.spec,
        backend=strategy,
        counters=counters,
        cache_sim=cache_sim,
        use_compiled=use_compiled,
        **backend_options,
    )

    try:
        start = time.perf_counter()
        for relation, batch in prepared.batches:
            service.on_batch(relation, batch)
        # Async-ingesting backends only enqueued: the drain barrier (a
        # no-op for synchronous backends) keeps the measured window
        # end-to-end — enqueue-only timing would overstate throughput.
        service.drain()
        elapsed = time.perf_counter() - start

        outcome = RunOutcome(
            strategy=strategy,
            elapsed_s=elapsed,
            n_tuples=prepared.n_tuples,
            virtual_instructions=counters.virtual_instructions(),
            result=service.snapshot(prepared.spec.name),
        )
    finally:
        # Dropping the view closes an async backend's batcher thread —
        # also on the error path, or a failed run in a sweep would
        # leak pollers into every later measurement.
        try:
            service.drop_view(prepared.spec.name)
        except Exception:
            pass
    return outcome
