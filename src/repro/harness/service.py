"""Multi-view serving experiments.

The scenario no single-backend runner can express: one
:class:`~repro.service.ViewService` hosting N concurrent views (mixed
definitions, mixed backends) over one shared update stream.  The
runner prepares the stream once from the union of every view's
streamed relations, attaches a delta-counting subscriber per view, and
times only the serving loop — the multi-tenant analogue of
:func:`repro.harness.local.measure_throughput`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.eval import Database
from repro.query.schema import base_relations
from repro.ring import GMR
from repro.service import ViewService
from repro.workloads import as_query_spec, generate_workload, stream_batches


@dataclass
class ViewDef:
    """One view to host: name, definition, backend, factory options."""

    name: str
    source: object  # QuerySpec | Expr | SQL string
    backend: str = "rivm-batch"
    options: dict = field(default_factory=dict)


@dataclass
class ViewStats:
    """Per-view outcome of one service run."""

    name: str
    backend: str
    streamed: tuple[str, ...]
    batches_applied: int
    deltas_delivered: int
    snapshot_tuples: int
    #: none of the view's streamed relations exist in the generated
    #: workload — the view can never receive a batch (wrong --workload?)
    starved: bool = False


@dataclass
class ServiceResult:
    """One timed multi-view service run."""

    views: list[ViewStats]
    n_tuples: int  #: streamed tuples (the shared-stream denominator)
    routed_tuples: int  #: sum of tuples delivered across dependent views
    n_batches: int
    elapsed_s: float

    @property
    def throughput(self) -> float:
        """Shared-stream tuples per second (each tuple counted once)."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.n_tuples / self.elapsed_s

    @property
    def routed_throughput(self) -> float:
        """View-deliveries per second (a tuple routed to three views
        counts three times) — the service's aggregate maintenance rate."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.routed_tuples / self.elapsed_s


def coerce_view_defs(views) -> list[ViewDef]:
    """Normalize an iterable of :class:`ViewDef` / ``(name, source,
    backend?)`` tuples; rejects an empty view list."""
    defs = [
        v if isinstance(v, ViewDef) else ViewDef(v[0], v[1], *v[2:])
        for v in views
    ]
    if not defs:
        raise ValueError("the serving runners need at least one view")
    return defs


def create_views(
    service: ViewService,
    defs: list[ViewDef],
    specs,
    use_compiled: bool = True,
) -> None:
    """Create every prepared view on ``service`` (shared by the
    in-process and network runners, so option defaulting cannot
    diverge between the two sides of the comparison)."""
    for d in defs:
        options = dict(d.options)
        options.setdefault("use_compiled", use_compiled)
        service.create_view(d.name, specs[d.name], backend=d.backend, **options)


def prepare_service_run(
    defs: list[ViewDef],
    batch_size: int,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    catalog: dict[str, tuple[str, ...]] | None = None,
):
    """Shared setup of the multi-view runners (in-process and network).

    Resolves every view's spec, widens specs so any streamed relation a
    view references gets a trigger, splits the generated workload into
    static preload vs streamed batches, and returns
    ``(specs, static_db, batches, n_tuples, fed)`` where ``batches`` is
    a list of ``(relation, GMR, size)`` and ``fed`` is the set of
    streamed relations the workload actually generated rows for (for
    starvation warnings).
    """
    specs = {
        d.name: as_query_spec(d.source, name=d.name, catalog=catalog)
        for d in defs
    }
    streamed_union = frozenset().union(*(s.updatable for s in specs.values()))
    for name, spec in specs.items():
        widened = (base_relations(spec.query) & streamed_union) | spec.updatable
        if widened != spec.updatable:
            specs[name] = replace(spec, updatable=frozenset(widened))

    tables = generate_workload(workload, sf=sf, seed=seed)
    static = Database()
    streamed_rows: dict[str, list[tuple]] = {}
    for relation, rows in tables.items():
        if relation in streamed_union:
            streamed_rows[relation] = rows
        else:
            static.insert_rows(relation, rows)

    batches: list[tuple[str, GMR, int]] = []
    n_tuples = 0
    for relation, batch in stream_batches(
        streamed_rows, batch_size, relations=streamed_union
    ):
        size = sum(abs(m) for m in batch.data.values())
        batches.append((relation, batch, size))
        n_tuples += size
        if max_batches is not None and len(batches) >= max_batches:
            break
    fed = {rel for rel, rows in streamed_rows.items() if rows}
    return specs, static, batches, n_tuples, fed


def measure_service_throughput(
    views,
    batch_size: int,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    use_compiled: bool = True,
    catalog: dict[str, tuple[str, ...]] | None = None,
    subscribe: bool = True,
    sharing: bool = True,
) -> ServiceResult:
    """Serve N concurrent views over one shared update stream.

    ``views`` is an iterable of :class:`ViewDef` (or ``(name, source,
    backend)`` tuples).  The streamed relation set is the union of every
    view's ``updatable`` relations; each view's spec is widened so that
    any streamed relation it references gets a trigger (a relation that
    is static for one view but streamed by another would otherwise leave
    the first view stale).  Remaining relations are pre-loaded as static
    dimension tables shared by all views.

    With ``subscribe`` (default) every view gets a delta-counting push
    subscriber, so the measured window includes changefeed computation —
    the realistic serving cost.  Stream preparation and view creation
    happen outside the timed window.  ``sharing=False`` disables
    cross-view subplan sharing (every view runs its own full program) —
    the control arm of the sharing benchmark.
    """
    defs = coerce_view_defs(views)
    specs, static, batches, n_tuples, fed = prepare_service_run(
        defs, batch_size, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, catalog=catalog,
    )

    service = ViewService(
        catalog=catalog, base=static, track_base=False, sharing=sharing
    )
    create_views(service, defs, specs, use_compiled)
    if subscribe:
        for d in defs:
            service.subscribe(d.name, lambda event: None)

    try:
        routed_tuples = 0
        start = time.perf_counter()
        for relation, batch, size in batches:
            touched = service.on_batch(relation, batch)
            routed_tuples += len(touched) * size
        # Async-ingesting views only enqueued; the drain barrier (no-op
        # for synchronous views) keeps the measured window end-to-end.
        service.drain()
        elapsed = time.perf_counter() - start

        stats = [
            ViewStats(
                name=d.name,
                backend=d.backend,
                streamed=tuple(sorted(service.view(d.name).relations)),
                batches_applied=service.view(d.name).batches_applied,
                deltas_delivered=service.view(d.name).deltas_delivered,
                snapshot_tuples=len(service.snapshot(d.name)),
                starved=not (service.view(d.name).relations & fed),
            )
            for d in defs
        ]
    finally:
        # Dropping the views closes async backends' batcher threads —
        # also on the error path, so a failed run cannot leak pollers
        # into later measurements.
        for d in defs:
            try:
                service.drop_view(d.name)
            except Exception:
                pass
    return ServiceResult(
        views=stats,
        n_tuples=n_tuples,
        routed_tuples=routed_tuples,
        n_batches=len(batches),
        elapsed_s=elapsed,
    )
