"""Plain-text rendering of experiment results.

The benchmark targets print paper-style rows through these helpers so
that ``pytest benchmarks/ -s`` output can be compared against the
paper's tables/figures line by line (EXPERIMENTS.md collects the
comparisons).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    name: str,
    points: Iterable[tuple],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as ``name: x=…, y=…`` lines."""
    out = [f"{name}:"]
    for x, y in points:
        out.append(f"  {x_label}={_fmt(x)}  {y_label}={_fmt(y)}")
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def bench_environment() -> dict:
    """Machine/runtime metadata stamped into every ``BENCH_*.json``.

    Absolute throughputs from different machines are not comparable;
    recording where a number came from is what makes the accumulated
    perf trajectory across PRs interpretable (a regression on a 1-core
    CI runner is not a regression on an 8-core box).
    """
    import os
    import platform
    import sys

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable.rsplit("/", 1)[-1],
    }
