"""Single-node throughput experiments (paper Section 6.1).

Runners for:

* Figure 7 / Figure 12 — normalized throughput of batched recursive IVM
  across batch sizes, with single-tuple execution as the baseline;
* Figure 8 — strategy comparison (re-evaluation vs classical IVM vs
  recursive IVM) on one query across batch sizes;
* Table 1 — the full strategy x batch-size x query throughput matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.setup import prepare_stream, run_engine
from repro.workloads import QuerySpec

#: the batch sizes of the paper's single-node sweep
PAPER_BATCH_SIZES = (1, 10, 100, 1_000, 10_000, 100_000)


@dataclass
class LocalResult:
    """One (query, strategy, batch size) throughput measurement."""

    query: str
    strategy: str
    batch_size: int | None  # None = single-tuple specialized execution
    throughput: float
    virtual_throughput: float
    n_tuples: int
    elapsed_s: float

    @property
    def batch_label(self) -> str:
        return "Single" if self.batch_size is None else str(self.batch_size)


def measure_throughput(
    spec: QuerySpec,
    strategy: str,
    batch_size: int | None,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    max_batches: int | None = None,
    warm_fraction: float = 0.0,
    use_compiled: bool = True,
    **backend_options,
) -> LocalResult:
    """Measure one strategy at one batch size.

    ``batch_size=None`` requests the single-tuple specialized engine;
    the stream is still chunked (into size-100 delivery units) but each
    tuple fires its own trigger, matching Section 3.3.
    ``warm_fraction`` pre-loads that share of the updatable tables
    (the late-stream regime; see ``prepare_stream``).
    ``use_compiled=False`` selects the interpreted evaluator instead of
    compile-once pipelines (the lowering ablation).
    ``backend_options`` reach the backend factory unchanged
    (``n_workers=`` for the cluster/multiproc backends).
    """
    prepared = prepare_stream(
        spec, batch_size if batch_size is not None else 100,
        workload=workload, sf=sf, seed=seed,
        max_batches=max_batches, warm_fraction=warm_fraction,
    )
    outcome = run_engine(
        prepared, strategy, use_compiled=use_compiled, **backend_options
    )
    return LocalResult(
        query=spec.name,
        strategy=strategy,
        batch_size=batch_size,
        throughput=outcome.throughput,
        virtual_throughput=outcome.virtual_throughput,
        n_tuples=outcome.n_tuples,
        elapsed_s=outcome.elapsed_s,
    )


def batch_size_sweep(
    spec: QuerySpec,
    batch_sizes: tuple[int, ...] = PAPER_BATCH_SIZES,
    strategy: str = "rivm-batch",
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    include_single: bool = True,
    max_batches: int | None = None,
    warm_fraction: float = 0.0,
) -> list[LocalResult]:
    """Throughput of one strategy across batch sizes (one Fig. 7 bar
    group).  The single-tuple baseline is measured with the
    ``rivm-single`` engine when ``include_single``."""
    results: list[LocalResult] = []
    if include_single:
        results.append(
            measure_throughput(
                spec, "rivm-single", None, workload=workload, sf=sf,
                seed=seed, max_batches=max_batches,
                warm_fraction=warm_fraction,
            )
        )
    for bs in batch_sizes:
        results.append(
            measure_throughput(
                spec, strategy, bs, workload=workload, sf=sf, seed=seed,
                max_batches=max_batches, warm_fraction=warm_fraction,
            )
        )
    return results


def normalized_sweep(
    spec: QuerySpec,
    batch_sizes: tuple[int, ...] = PAPER_BATCH_SIZES,
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    use_virtual: bool = True,
    max_batches: int | None = None,
) -> dict[int, float]:
    """Figure 7 / Figure 12 data for one query: batched throughput
    normalized to the single-tuple baseline (baseline = 1.0).

    ``use_virtual`` normalizes by virtual instructions instead of wall
    time; virtual ratios are deterministic and noise-free, wall-clock
    ratios track them (both are exposed by ``batch_size_sweep``).
    """
    results = batch_size_sweep(
        spec, batch_sizes, workload=workload, sf=sf, seed=seed,
        max_batches=max_batches,
    )
    baseline = results[0]
    base = (
        baseline.virtual_throughput if use_virtual else baseline.throughput
    )
    out: dict[int, float] = {}
    for r in results[1:]:
        value = r.virtual_throughput if use_virtual else r.throughput
        out[r.batch_size] = value / base if base > 0 else float("inf")
    return out


def strategy_matrix(
    spec: QuerySpec,
    batch_sizes: tuple[int, ...] = PAPER_BATCH_SIZES,
    strategies: tuple[str, ...] = ("reeval", "civm", "rivm-batch"),
    workload: str = "tpch",
    sf: float = 0.0005,
    seed: int = 42,
    include_single: bool = True,
    max_batches: int | None = None,
    warm_fraction: float = 0.0,
) -> list[LocalResult]:
    """Figure 8 / one Table 1 row-group: every strategy at every batch
    size for one query; recursive IVM also gets the Single column.

    Strategy comparisons run warm by default in the Fig. 8 bench: the
    paper's re-evaluation/classical-IVM costs reflect base tables far
    larger than one batch, which a cold scaled stream never reaches.
    """
    results: list[LocalResult] = []
    if include_single:
        results.append(
            measure_throughput(
                spec, "rivm-single", None, workload=workload, sf=sf,
                seed=seed, max_batches=max_batches,
                warm_fraction=warm_fraction,
            )
        )
    for strategy in strategies:
        for bs in batch_sizes:
            results.append(
                measure_throughput(
                    spec, strategy, bs, workload=workload, sf=sf,
                    seed=seed, max_batches=max_batches,
                    warm_fraction=warm_fraction,
                )
            )
    return results
