"""Built-in execution-backend registrations.

One factory per maintenance strategy; each builds the compiled program
it needs and instantiates the engine.  Imports are deferred into the
factories so that registering the catalog never creates import cycles
(the cluster backend pulls in the whole distributed compiler).

Shared factory options (all optional):

* ``counters`` — a :class:`~repro.metrics.Counters` to accumulate into;
* ``cache_sim`` — a cache simulator (specialized backend only);
* ``use_compiled`` — run statements through compile-once closure
  pipelines (default) or the interpreted reference evaluator;
* ``use_domain`` — domain-restricted assignment deltas (``rivm-*``
  backends; default on, off reproduces the recompute-twice ablation).

Backend-specific options are documented per factory (``n_workers``,
``cost_model``, ``opt_level``, ``seed`` for ``cluster``; ``n_workers``,
``opt_level``, ``reply_timeout_s``, ``start_method``, ``data_plane``,
``restart_budget``, ``checkpoint_every`` for ``multiproc``).  ``async:<backend>`` names additionally accept the
ingestion-layer knobs (``policy``, ``max_batch``, ``max_delay_s``,
``queue_capacity``, ``admission``, ...; see
:data:`repro.ingest.ASYNC_OPTION_NAMES`) and forward the rest to the
inner backend's factory.
"""

from __future__ import annotations

from repro.exec.backend import register_backend


def _rivm_single(
    spec, *, counters=None, use_compiled=True, use_domain=True, **_unused
):
    from repro.compiler import compile_query
    from repro.exec.engine import RecursiveIVMEngine

    program = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=use_domain
    )
    return RecursiveIVMEngine(
        program, mode="single", counters=counters, use_compiled=use_compiled
    )


def _rivm_batch(
    spec, *, counters=None, use_compiled=True, use_domain=True, **_unused
):
    from repro.compiler import apply_batch_preaggregation, compile_query
    from repro.exec.engine import RecursiveIVMEngine

    program = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=use_domain
    )
    program = apply_batch_preaggregation(program)
    return RecursiveIVMEngine(
        program, mode="batch", counters=counters, use_compiled=use_compiled
    )


def _rivm_specialized(
    spec, *, counters=None, cache_sim=None, use_compiled=True,
    use_domain=True, **_unused
):
    from repro.compiler import apply_batch_preaggregation, compile_query
    from repro.exec.specialized import SpecializedIVMEngine

    program = compile_query(
        spec.query, spec.name, updatable=spec.updatable, use_domain=use_domain
    )
    program = apply_batch_preaggregation(program)
    return SpecializedIVMEngine(
        program,
        mode="batch",
        counters=counters,
        cache_sim=cache_sim,
        use_compiled=use_compiled,
    )


def _reeval(spec, *, counters=None, **_unused):
    from repro.baselines import ReevalEngine

    return ReevalEngine(spec.query, counters=counters)


def _civm(spec, *, counters=None, **_unused):
    from repro.baselines import ClassicalIVMEngine

    return ClassicalIVMEngine(spec.query, counters=counters)


def _cluster(
    spec,
    *,
    counters=None,
    n_workers: int = 4,
    cost_model=None,
    opt_level: int = 3,
    seed: int = 7,
    use_compiled: bool = True,
    **_unused,
):
    """The simulated synchronous cluster (``n_workers`` Spark-style
    workers; latency is modeled, results are exact)."""
    from repro.distributed import SimulatedCluster, compile_distributed

    dprog = compile_distributed(
        spec.query,
        name=spec.name,
        key_hints=spec.key_hints,
        updatable=spec.updatable,
        opt_level=opt_level,
    )
    return SimulatedCluster(
        dprog,
        n_workers=n_workers,
        cost_model=cost_model,
        seed=seed,
        use_compiled=use_compiled,
        counters=counters,
    )


def _multiproc(
    spec,
    *,
    counters=None,
    n_workers: int = 2,
    opt_level: int = 3,
    use_compiled: bool = True,
    reply_timeout_s: float = 120.0,
    start_method: str | None = None,
    data_plane: str = "shm",
    restart_budget: int = 3,
    checkpoint_every: int = 16,
    **_unused,
):
    """Real process-parallel execution: the coordinator partitions the
    database across ``n_workers`` OS processes, each running locally
    rebuilt compiled pipelines over its hash partition.  ``data_plane``
    selects how GMRs cross process boundaries (``"shm"`` shared-memory
    block descriptors, ``"pickle"`` whole pickled GMRs);
    ``restart_budget``/``checkpoint_every`` configure worker-death
    recovery (budget 0 = fail fast, no journaling)."""
    from repro.parallel import MultiprocBackend

    return MultiprocBackend(
        spec,
        n_workers=n_workers,
        opt_level=opt_level,
        use_compiled=use_compiled,
        counters=counters,
        reply_timeout_s=reply_timeout_s,
        start_method=start_method,
        data_plane=data_plane,
        restart_budget=restart_budget,
        checkpoint_every=checkpoint_every,
    )


def _async_rivm_batch(spec, **options):
    """``async:rivm-batch`` — registered explicitly so one wrapper
    configuration is part of the visible catalog (and of every
    registry-wide invariant test); all other ``async:<backend>`` names
    resolve dynamically in :func:`repro.exec.backend_info`."""
    from repro.ingest import make_async_factory

    return make_async_factory("rivm-batch")(spec, **options)


def register_builtin_backends() -> None:
    register_backend(
        "rivm-single", _rivm_single,
        "recursive IVM, one trigger per tuple (inlined parameters)",
    )
    register_backend(
        "rivm-batch", _rivm_batch,
        "recursive IVM with batch pre-aggregation",
    )
    register_backend(
        "rivm-specialized", _rivm_specialized,
        "batched recursive IVM over record pools with automatic indexes",
    )
    register_backend(
        "reeval", _reeval,
        "full re-evaluation per batch (PostgreSQL re-eval substitute)",
    )
    register_backend(
        "civm", _civm,
        "classical first-order IVM against full base tables",
    )
    register_backend(
        "cluster", _cluster,
        "simulated synchronous cluster (driver + n_workers workers)",
    )
    register_backend(
        "multiproc", _multiproc,
        "process-parallel cluster: n_workers OS processes over "
        "hash-partitioned databases",
    )
    register_backend(
        "async:rivm-batch", _async_rivm_batch,
        "async ingestion (bounded queue + batcher thread) over "
        "rivm-batch; any backend can be wrapped as async:<backend>",
    )


register_builtin_backends()
