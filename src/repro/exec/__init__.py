"""Local execution of compiled maintenance programs (paper Section 5).

:class:`RecursiveIVMEngine` runs a
:class:`~repro.compiler.TriggerProgram` in either *batch* mode (one
trigger invocation per update batch, over pre-aggregated columnar
batches) or *single-tuple* mode (one trigger invocation per tuple with
inlined tuple fields — the paper's specialized tuple-at-a-time path).

Every engine — including the baselines and the simulated cluster —
implements the :class:`ExecutionBackend` interface
(``initialize`` / ``on_batch`` / ``snapshot``) and registers itself by
name; :func:`create_backend` is the single engine-selection entry point
shared by the CLI, the harness, and the benchmarks.
"""

from repro.exec.backend import (
    ASYNC_PREFIX,
    BackendError,
    ExecutionBackend,
    available_backends,
    backend_info,
    create_backend,
    is_registered,
    register_backend,
    reject_nested_async,
)
from repro.exec.engine import RecursiveIVMEngine
from repro.exec.specialized import SpecializedIVMEngine

# Importing the registry module registers the built-in backends.
import repro.exec.registry  # noqa: F401  (side-effect import)

__all__ = [
    "ASYNC_PREFIX",
    "BackendError",
    "ExecutionBackend",
    "RecursiveIVMEngine",
    "SpecializedIVMEngine",
    "available_backends",
    "backend_info",
    "create_backend",
    "is_registered",
    "register_backend",
    "reject_nested_async",
]
