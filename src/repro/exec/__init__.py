"""Local execution of compiled maintenance programs (paper Section 5).

:class:`RecursiveIVMEngine` interprets a
:class:`~repro.compiler.TriggerProgram` in either *batch* mode (one
trigger invocation per update batch, over pre-aggregated columnar
batches) or *single-tuple* mode (one trigger invocation per tuple with
inlined tuple fields — the paper's specialized tuple-at-a-time path).
"""

from repro.exec.engine import RecursiveIVMEngine
from repro.exec.specialized import SpecializedIVMEngine

__all__ = ["RecursiveIVMEngine", "SpecializedIVMEngine"]
