"""Storage-specialized execution (paper Section 5).

:class:`SpecializedIVMEngine` runs a compiled program against
:class:`~repro.storage.RecordPool` views with automatically selected
indexes.  Relational terms lower to the three concrete operations of
§5.1 — ``foreach`` (scan), ``get`` (unique-index lookup), ``slice``
(non-unique-index scan) — and every record touch can feed a cache
simulator, which is how Table 2 is reproduced.

Statements execute through the same compile-once closure pipelines as
the recursive engine (pools expose the GMR read surface, so lowered
pipelines run against them unchanged); ``use_compiled=False`` selects
the interpreted reference evaluator.
"""

from __future__ import annotations

from repro.compiler.ir import TriggerProgram
from repro.compiler.plancache import compile_program
from repro.eval import CompiledEvaluator, Database, Evaluator
from repro.exec.backend import ExecutionBackend, NativeChangefeed
from repro.metrics import CacheSimulator, Counters
from repro.ring import GMR
from repro.storage import RecordPool, build_storage


class _PoolDatabase(Database):
    """A Database whose views are record pools.

    Pools satisfy the GMR read surface, so the evaluator and the
    statement interpreter work unchanged; writes go through
    ``add_inplace`` / ``replace_contents`` which maintain the pools'
    indexes (and emit the cache trace).
    """

    def __init__(self, pools: dict[str, RecordPool]):
        super().__init__()
        self.views.update(pools)

    def set_view(self, name, contents) -> None:
        pool = self.views.get(name)
        if isinstance(pool, RecordPool):
            pool.replace_contents(contents)
        else:
            self.views[name] = contents


class SpecializedIVMEngine(NativeChangefeed, ExecutionBackend):
    """Pool-backed engine with optional cache-trace collection."""

    def __init__(
        self,
        program: TriggerProgram,
        mode: str = "batch",
        counters: Counters | None = None,
        cache_sim: CacheSimulator | None = None,
        enable_indexes: bool = True,
        use_compiled: bool = True,
    ):
        if mode not in ("batch", "single"):
            raise ValueError(f"unknown mode {mode!r}")
        self.program = program
        self.mode = mode
        self.use_compiled = use_compiled
        self.counters = counters if counters is not None else Counters()
        self.cache_sim = cache_sim
        tracer = cache_sim.access_record if cache_sim is not None else None
        self.pools = build_storage(
            program, tracer=tracer, enable_indexes=enable_indexes
        )
        self.db = _PoolDatabase(self.pools)
        if use_compiled:
            self.plans = compile_program(program)
            self._evaluator = CompiledEvaluator(
                self.db, self.counters, plans=self.plans
            )
        else:
            self.plans = None
            self._evaluator = Evaluator(self.db, self.counters)
        self._init_changefeed()

    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        evaluator = Evaluator(base)
        top = self.program.top_view
        for info in self.program.views.values():
            contents = evaluator.evaluate(info.definition)
            if info.name == top:
                self._feed_replace(contents, GMR(self.pools[top].data))
            self.pools[info.name].replace_contents(contents)

    def on_batch(self, relation: str, batch: GMR) -> None:
        trigger = self.program.triggers.get(relation)
        if trigger is None:
            raise KeyError(f"no trigger for relation {relation!r}")
        if self.mode == "single":
            for t, m in batch.items():
                self._fire(trigger, relation, GMR.unsafe({t: m}))
        else:
            self._fire(trigger, relation, batch)

    def _fire(self, trigger, relation: str, batch: GMR) -> None:
        db = self.db
        counters = self.counters
        evaluate = self._evaluator.evaluate
        top = self.program.top_view
        counters.triggers_fired += 1
        db.set_delta(relation, batch)
        batch_names: list[str] = []
        for stmt in trigger.statements:
            counters.statements_executed += 1
            value = evaluate(stmt.expr)
            if stmt.scope == "batch":
                counters.batches_materialized += 1
                db.set_delta(stmt.target, value)
                batch_names.append(stmt.target)
            elif stmt.op == "+=":
                if stmt.target == top:
                    self._feed_merge(value)
                self.pools[stmt.target].add_inplace(value)
            else:
                if stmt.target == top:
                    self._feed_replace(value, GMR(self.pools[top].data))
                self.pools[stmt.target].replace_contents(value)
        db.deltas.pop(relation, None)
        for name in batch_names:
            db.deltas.pop(name, None)

    # ------------------------------------------------------------------
    def snapshot(self) -> GMR:
        return GMR(self.pools[self.program.top_view].data)

    def view(self, name: str) -> GMR:
        return GMR(self.pools[name].data)

    def cache_report(self) -> dict[str, int]:
        if self.cache_sim is None:
            return {}
        return self.cache_sim.report()
