"""The recursive IVM execution engine.

Two execution modes mirror the paper's Section 3.3 comparison:

* ``mode="batch"`` — one trigger invocation per update batch.  The
  program should have been passed through
  :func:`~repro.compiler.apply_batch_preaggregation`, so each trigger
  begins by materializing the filtered/projected batch.
* ``mode="single"`` — one trigger invocation per tuple.  The update's
  fields are bound directly into the evaluation environment (the
  equivalent of DBToaster inlining trigger parameters), no batch is
  materialized, and one-element loops disappear into point lookups.

By default statements execute through compile-once closure pipelines
(:mod:`repro.eval.compiled`): every statement is lowered exactly once
at engine construction, and the batch loop runs the lowered pipelines.
``use_compiled=False`` falls back to the interpreted reference
evaluator — the ablation toggle that isolates the lowering win.
"""

from __future__ import annotations

from repro.compiler.ir import TriggerProgram
from repro.compiler.plancache import compile_program
from repro.eval import CompiledEvaluator, Database, Evaluator
from repro.exec.backend import ExecutionBackend, NativeChangefeed
from repro.metrics import Counters
from repro.ring import GMR


class RecursiveIVMEngine(NativeChangefeed, ExecutionBackend):
    """Executes a compiled maintenance program over a stream of batches."""

    def __init__(
        self,
        program: TriggerProgram,
        mode: str = "batch",
        counters: Counters | None = None,
        use_compiled: bool = True,
    ):
        if mode not in ("batch", "single"):
            raise ValueError(f"unknown mode {mode!r}")
        self.program = program
        self.mode = mode
        self.use_compiled = use_compiled
        self.counters = counters if counters is not None else Counters()
        self.db = Database()
        if use_compiled:
            self.plans = compile_program(program)
            self._evaluator = CompiledEvaluator(
                self.db, self.counters, plans=self.plans
            )
        else:
            self.plans = None
            self._evaluator = Evaluator(self.db, self.counters)
        self._init_changefeed()

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, base: Database) -> None:
        """Populate every materialized view from a loaded database.

        Streams normally start empty; this exists for tests and for
        warm-starting from a snapshot.
        """
        evaluator = Evaluator(base)
        top = self.program.top_view
        for info in self.program.views.values():
            contents = evaluator.evaluate(info.definition)
            if info.name == top:
                self._feed_replace(contents, self.db.get_view(top))
            self.db.set_view(info.name, contents)

    # ------------------------------------------------------------------
    # Update processing
    # ------------------------------------------------------------------
    def on_batch(self, relation: str, batch: GMR) -> None:
        """Process one update batch for ``relation``."""
        trigger = self.program.triggers.get(relation)
        if trigger is None:
            raise KeyError(f"no trigger for relation {relation!r}")
        if self.mode == "single":
            for t, m in batch.items():
                self._fire(trigger, relation, GMR.unsafe({t: m}))
        else:
            self._fire(trigger, relation, batch)

    def _fire(self, trigger, relation: str, batch: GMR) -> None:
        db = self.db
        counters = self.counters
        evaluate = self._evaluator.evaluate
        top = self.program.top_view
        counters.triggers_fired += 1
        db.set_delta(relation, batch)
        batch_names: list[str] = []
        for stmt in trigger.statements:
            counters.statements_executed += 1
            value = evaluate(stmt.expr)
            if stmt.scope == "batch":
                counters.batches_materialized += 1
                db.set_delta(stmt.target, value)
                batch_names.append(stmt.target)
            elif stmt.op == "+=":
                if stmt.target == top:
                    self._feed_merge(value)
                db.get_view(stmt.target).add_inplace(value)
            else:  # ':=' re-evaluation
                if stmt.target == top:
                    self._feed_replace(value, db.get_view(top))
                db.set_view(stmt.target, value)
        db.deltas.pop(relation, None)
        for name in batch_names:
            db.deltas.pop(name, None)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def snapshot(self) -> GMR:
        """Current contents of the top-level materialized view."""
        return self.db.get_view(self.program.top_view)

    def view(self, name: str) -> GMR:
        return self.db.get_view(name)

    def memory_footprint(self) -> int:
        """Total number of tuples across all materialized views."""
        return sum(len(g) for g in self.db.views.values())
