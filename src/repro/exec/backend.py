"""The unified execution-backend interface and registry.

Every way of running a maintenance workload — the recursive IVM engine,
the storage-specialized engine, the classical-IVM and re-evaluation
baselines, the simulated cluster — implements the same three-method
surface:

* ``initialize(base)`` — populate materialized state from a loaded
  :class:`~repro.eval.Database` (static dimension tables, warm starts);
* ``on_batch(relation, batch)`` — process one update batch;
* ``snapshot()`` — the current contents of the top-level view.

Backends register themselves by name in a process-wide registry, so
engine selection is one lookup shared by the CLI (``--backend``), the
harness, the baselines, and the benchmarks; adding a backend touches no
caller.  See ARCHITECTURE.md for the how-to.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from typing import Callable

from repro.eval import Database
from repro.ring import GMR


class BackendError(RuntimeError):
    """An execution backend failed irrecoverably.

    Raised by backends whose execution substrate can fail independently
    of the maintenance logic — e.g. the process-parallel backend when a
    worker process dies mid-batch or stops answering.  Backends may
    absorb such failures internally first: the multiproc backend
    restarts a dead worker and replays its partition from the
    supervisor's journal, and raises this error only once its restart
    budget is exhausted (or immediately with ``restart_budget=0``, or
    on an in-band worker error that a restart would deterministically
    hit again).  Once raised, the backend is poisoned — it refuses
    further use rather than serve partial state.  Callers that host
    backends (the view service, the harness) can catch this to fail one
    view without taking down the session.
    """


class ExecutionBackend(abc.ABC):
    """Common surface of every maintenance execution backend."""

    @abc.abstractmethod
    def initialize(self, base: Database) -> None:
        """Populate materialized state from a loaded database."""

    @abc.abstractmethod
    def on_batch(self, relation: str, batch: GMR):
        """Process one update batch for ``relation``.

        Backends may return a backend-specific measurement (the cluster
        returns its modeled latency); callers that only maintain views
        ignore the return value.

        **Changefeed-as-input contract.**  ``relation`` need not name a
        base table: the view service's shared-subplan DAG feeds views
        from *other views' changefeeds* by streaming one view's
        :meth:`last_delta` in as another's update batch (the batch is
        then a delta GMR — deletions appear as negative multiplicities,
        exactly like base-table deletes).  Backends must therefore
        treat relation names as opaque stream identifiers declared by
        their compiled spec, never as a fixed base-schema vocabulary,
        and must stay correct under mixed-sign batches.  Every
        registered backend already satisfies this; it is what makes
        views-maintaining-views composition work on any engine.
        """

    @abc.abstractmethod
    def snapshot(self) -> GMR:
        """Current contents of the top-level materialized view."""

    def last_delta(self) -> GMR:
        """Change in :meth:`snapshot` since the previous call.

        This is the changefeed hook behind the view service's push
        subscriptions: callers invoke it once after each ``on_batch``
        and receive the net effect of everything processed since the
        last invocation.  The first call returns the full current
        snapshot (the delta from the empty view), so a fresh changefeed
        always accumulates to ``snapshot()``.

        The default implementation diffs defensive copies of
        ``snapshot()`` — correct for every backend, at O(|view|) per
        call.  Backends that track their own top-level delta may
        override with a native changefeed.
        """
        current = GMR(dict(self.snapshot().data))
        prev = getattr(self, "_changefeed_prev", None)
        self._changefeed_prev = current
        if prev is None:
            return GMR(dict(current.data))
        return current - prev

    def result(self) -> GMR:
        """Deprecated alias of :meth:`snapshot` (the engines' historical
        name).

        .. deprecated::
           Call :meth:`snapshot` instead; ``result()`` will be removed
           once external callers have migrated.
        """
        warnings.warn(
            "ExecutionBackend.result() is deprecated; call snapshot()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.snapshot()


class NativeChangefeed:
    """Mixin for engines that track their top-level delta natively.

    The recursive engines compute the top-level view's change inside
    their triggers anyway; this mixin accumulates it so
    :meth:`last_delta` costs O(|delta|) instead of the base class's
    snapshot diffing.  The engine calls :meth:`_feed_merge` when a
    trigger statement ``+=``s into the top view, and
    :meth:`_feed_replace` (with the view's *current* contents, before
    the write) when a statement ``:=``-re-evaluates it — the same
    convention covers warm ``initialize`` loads.
    """

    def _init_changefeed(self) -> None:
        self._delta_acc = GMR()

    def _feed_merge(self, value: GMR) -> None:
        self._delta_acc.add_inplace(value)

    def _feed_replace(self, value: GMR, current: GMR) -> None:
        self._delta_acc.add_inplace(value - current)

    def last_delta(self) -> GMR:
        """Native changefeed: the top-level delta the triggers already
        computed, returned in O(|delta|) — no snapshot diffing."""
        delta = self._delta_acc
        self._delta_acc = GMR()
        return delta


#: Factory: ``factory(spec, **options) -> ExecutionBackend``.  Factories
#: accept the shared option set (``counters``, ``cache_sim``,
#: ``use_compiled``) plus backend-specific keywords, and must tolerate
#: unused shared options.
BackendFactory = Callable[..., ExecutionBackend]


@dataclass(frozen=True)
class BackendInfo:
    name: str
    factory: BackendFactory
    description: str


_REGISTRY: dict[str, BackendInfo] = {}

#: prefix selecting the async ingestion wrapper: ``async:<backend>``
#: resolves for every registered backend (bounded ingest queue +
#: batcher thread in front of the inner backend's ``on_batch``)
ASYNC_PREFIX = "async:"


def reject_nested_async(name: str) -> None:
    """Raise ``ValueError`` for ``async:async:<b>`` (and deeper) names.

    The async wrapper already owns one bounded queue and one batcher
    thread per view; stacking a second wrapper would double both for no
    semantic gain (two FIFO queues compose to one) while hiding the
    extra thread from every drain/close path.  The rejection names the
    inner backend so the caller knows which single wrap they wanted.
    """
    if not name.startswith(ASYNC_PREFIX):
        return
    inner = name[len(ASYNC_PREFIX):]
    if inner.startswith(ASYNC_PREFIX):
        while inner.startswith(ASYNC_PREFIX):
            inner = inner[len(ASYNC_PREFIX):]
        raise ValueError(
            f"nested async wrapper {name!r}: {inner!r} is already "
            f"wrapped once by 'async:{inner}' (one bounded queue + "
            "batcher thread per view); double wrapping would stack a "
            f"second of each — use 'async:{inner}'"
        )


def register_backend(
    name: str, factory: BackendFactory, description: str = ""
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = BackendInfo(name, factory, description)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a backend.

    True for explicitly registered names and for ``async:<inner>``
    wrapper names whose inner backend is registered.  Nested wrappers
    (``async:async:<b>``) are never valid — resolving one raises the
    explanatory ``ValueError`` of :func:`reject_nested_async`, so this
    predicate returns ``False`` for them.
    """
    if name in _REGISTRY:
        return True
    if name.startswith(ASYNC_PREFIX):
        inner = name[len(ASYNC_PREFIX):]
        return not inner.startswith(ASYNC_PREFIX) and inner in _REGISTRY
    return False


def backend_info(name: str) -> BackendInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    reject_nested_async(name)
    if name.startswith(ASYNC_PREFIX):
        inner = name[len(ASYNC_PREFIX):]
        if inner in _REGISTRY:
            # Synthesized on demand so async:<x> works for any
            # registered backend, including ones added at runtime.
            from repro.ingest import make_async_factory

            return BackendInfo(
                name,
                make_async_factory(inner),
                f"async ingestion (bounded queue + batcher thread) "
                f"over {inner!r}",
            )
    known = ", ".join(sorted(_REGISTRY)) or "<none>"
    raise KeyError(
        f"unknown backend {name!r}; registered backends: {known} "
        "(each also available wrapped as 'async:<backend>')"
    ) from None


def create_backend(
    name: str,
    spec,
    *,
    catalog: dict[str, tuple[str, ...]] | None = None,
    view_name: str | None = None,
    **options,
) -> ExecutionBackend:
    """Instantiate a backend for a view definition.

    ``spec`` may be a :class:`~repro.workloads.QuerySpec`, a bare query
    :class:`~repro.query.Expr`, or a SQL string (which requires
    ``catalog``, mapping table names to column tuples); everything is
    coerced through :func:`repro.workloads.as_query_spec`, so SQL views
    and pre-built workload specs share one creation path.  ``options``
    are forwarded to the factory (``counters=``, ``cache_sim=``,
    ``use_compiled=``, and backend-specific knobs like ``n_workers=``).
    """
    from repro.workloads.spec import as_query_spec

    spec = as_query_spec(spec, name=view_name, catalog=catalog)
    return backend_info(name).factory(spec, **options)
