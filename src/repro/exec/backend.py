"""The unified execution-backend interface and registry.

Every way of running a maintenance workload — the recursive IVM engine,
the storage-specialized engine, the classical-IVM and re-evaluation
baselines, the simulated cluster — implements the same three-method
surface:

* ``initialize(base)`` — populate materialized state from a loaded
  :class:`~repro.eval.Database` (static dimension tables, warm starts);
* ``on_batch(relation, batch)`` — process one update batch;
* ``snapshot()`` — the current contents of the top-level view.

Backends register themselves by name in a process-wide registry, so
engine selection is one lookup shared by the CLI (``--backend``), the
harness, the baselines, and the benchmarks; adding a backend touches no
caller.  See ARCHITECTURE.md for the how-to.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.eval import Database
from repro.ring import GMR


class ExecutionBackend(abc.ABC):
    """Common surface of every maintenance execution backend."""

    @abc.abstractmethod
    def initialize(self, base: Database) -> None:
        """Populate materialized state from a loaded database."""

    @abc.abstractmethod
    def on_batch(self, relation: str, batch: GMR):
        """Process one update batch for ``relation``.

        Backends may return a backend-specific measurement (the cluster
        returns its modeled latency); callers that only maintain views
        ignore the return value.
        """

    @abc.abstractmethod
    def snapshot(self) -> GMR:
        """Current contents of the top-level materialized view."""

    def result(self) -> GMR:
        """Alias of :meth:`snapshot` (the engines' historical name)."""
        return self.snapshot()


#: Factory: ``factory(spec, **options) -> ExecutionBackend``.  Factories
#: accept the shared option set (``counters``, ``cache_sim``,
#: ``use_compiled``) plus backend-specific keywords, and must tolerate
#: unused shared options.
BackendFactory = Callable[..., ExecutionBackend]


@dataclass(frozen=True)
class BackendInfo:
    name: str
    factory: BackendFactory
    description: str


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str, factory: BackendFactory, description: str = ""
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = BackendInfo(name, factory, description)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_info(name: str) -> BackendInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None


def create_backend(name: str, spec, **options) -> ExecutionBackend:
    """Instantiate a backend for a workload query spec.

    ``spec`` is a :class:`~repro.workloads.QuerySpec`; ``options`` are
    forwarded to the factory (``counters=``, ``cache_sim=``,
    ``use_compiled=``, and backend-specific knobs like ``n_workers=``).
    """
    return backend_info(name).factory(spec, **options)
